"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (or an
ablation of a design choice DESIGN.md calls out).  Besides the
pytest-benchmark timing, each benchmark writes the rendered ASCII table /
chart to ``benchmarks/results/<experiment>.txt`` so the reproduced numbers
survive the run and can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Workload scale used by the dataset-level benchmarks.  "default" gives a few
#: tens of thousands of voxel updates per dataset (a couple of minutes for the
#: whole harness); "smoke" exists for quick checks.
BENCHMARK_SCALE = "default"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory that collects the rendered experiment outputs."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir: Path):
    """Persist a rendered experiment and echo it to stdout."""

    def _save(experiment_id: str, rendered: str) -> None:
        path = results_dir / f"{experiment_id}.txt"
        path.write_text(rendered + "\n", encoding="utf-8")
        print(f"\n{rendered}\n[saved to {path}]")

    return _save
