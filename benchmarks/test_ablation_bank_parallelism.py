"""Ablation: banked (parallel) vs serialised children access.

Section IV-B claims the 8-bank TreeMem organisation is what removes the node
prune/expand bottleneck, because a parent update / pruning check fetches all
eight children in one cycle.  This ablation re-runs the same workload with the
row access serialised over eight cycles (``row_read_cycles = 8``, i.e. a
single-bank memory) and shows the prune/expand share and the cycles per update
growing back towards the CPU profile.
"""

from repro.analysis.tables import render_table
from repro.core import OMUAccelerator, OMUConfig
from repro.core.config import TimingParams
from repro.datasets.catalog import dataset_by_name
from repro.datasets.generator import GenerationSpec, generate_scan_graph
from repro.octomap.counters import OperationKind

SPEC = GenerationSpec(num_scans=2, beams_azimuth=96, beams_elevation=3, max_range_m=12.0)


def _run(graph, descriptor, timing: TimingParams):
    config = OMUConfig(resolution_m=descriptor.resolution_m, timing=timing)
    accelerator = OMUAccelerator(config)
    total = accelerator.process_scan_graph(graph, max_range=SPEC.max_range_m)
    fractions = total.breakdown.fractions()
    return {
        "cycles_per_update": accelerator.map_cycles_per_update(),
        "prune_share": fractions[OperationKind.PRUNE_EXPAND]
        + fractions[OperationKind.UPDATE_PARENTS],
    }


def test_ablation_bank_parallelism(benchmark, save_result):
    descriptor = dataset_by_name("FR-079 corridor")
    graph = generate_scan_graph(descriptor, SPEC)

    results = {}

    def sweep():
        results["8 parallel banks (OMU)"] = _run(graph, descriptor, TimingParams())
        results["serialised children access"] = _run(
            graph, descriptor, TimingParams(row_read_cycles=8, row_write_cycles=8)
        )

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (name, data["cycles_per_update"], 100.0 * data["prune_share"])
        for name, data in results.items()
    ]
    rendered = render_table(
        "Ablation: parallel memory banks vs serialised children access (FR-079)",
        ("Memory organisation", "Cycles / voxel update", "Parent+prune share (%)"),
        rows,
    )
    save_result("ablation_bank_parallelism", rendered)

    banked = results["8 parallel banks (OMU)"]
    serial = results["serialised children access"]
    assert serial["cycles_per_update"] > 1.5 * banked["cycles_per_update"]
    assert serial["prune_share"] > banked["prune_share"]
