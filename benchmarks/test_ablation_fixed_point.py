"""Ablation: fixed-point word width vs map accuracy.

The paper states the 16-bit fixed-point probability field was chosen "to have
zero loss from the floating-point maps".  This ablation builds the same map
with 8-, 12-, 16- and 24-bit log-odds formats and measures the classification
agreement and the worst-case log-odds error against a double-precision
software map, confirming that 16 bits is where the loss vanishes.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core.fixedpoint import FixedPointFormat, QuantizedOccupancyParams
from repro.datasets.catalog import dataset_by_name
from repro.datasets.generator import GenerationSpec, generate_scan_graph
from repro.octomap.logodds import DEFAULT_PARAMS
from repro.octomap.octree import OccupancyOcTree

SPEC = GenerationSpec(num_scans=2, beams_azimuth=96, beams_elevation=3, max_range_m=12.0)

FORMATS = {
    "8-bit (Q4.3)": FixedPointFormat(total_bits=8, fraction_bits=3),
    "12-bit (Q5.6)": FixedPointFormat(total_bits=12, fraction_bits=6),
    "16-bit (Q5.10, OMU)": FixedPointFormat(total_bits=16, fraction_bits=10),
    "24-bit (Q6.17)": FixedPointFormat(total_bits=24, fraction_bits=17),
}


def _build(graph, max_range, params=None):
    tree = OccupancyOcTree(0.2, params=params) if params is not None else OccupancyOcTree(0.2)
    for scan in graph:
        tree.insert_point_cloud(scan.world_cloud(), scan.origin(), max_range=max_range)
    return tree


def test_ablation_fixed_point_width(benchmark, save_result):
    descriptor = dataset_by_name("FR-079 corridor")
    graph = generate_scan_graph(descriptor, SPEC)

    reference = _build(graph, SPEC.max_range_m)
    reference_grid = reference.occupancy_grid()

    rows = []

    def sweep():
        rows.clear()
        for label, fmt in FORMATS.items():
            quantized = QuantizedOccupancyParams(DEFAULT_PARAMS, fmt)
            tree = _build(graph, SPEC.max_range_m, params=quantized.as_float_params())
            grid = tree.occupancy_grid()
            worst_error = 0.0
            disagreements = 0
            for key, value in reference_grid.items():
                other = grid.get(key, 0.0)
                worst_error = max(worst_error, abs(other - value))
                if DEFAULT_PARAMS.is_occupied(value) != tree.params.is_occupied(other):
                    disagreements += 1
            rows.append(
                (
                    label,
                    fmt.scale,
                    worst_error,
                    100.0 * (1.0 - disagreements / len(reference_grid)),
                )
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rendered = render_table(
        "Ablation: fixed-point width vs float map accuracy (FR-079 corridor)",
        ("Format", "LSB value", "Worst |log-odds error|", "Classification agreement (%)"),
        rows,
        precision=3,
    )
    save_result("ablation_fixed_point", rendered)

    by_label = {row[0]: row for row in rows}
    omu_row = by_label["16-bit (Q5.10, OMU)"]
    assert omu_row[3] == pytest.approx(100.0)
    assert omu_row[2] < 0.05
    assert by_label["8-bit (Q4.3)"][2] > omu_row[2]
