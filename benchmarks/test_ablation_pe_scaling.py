"""Ablation: PE count scaling (1 / 2 / 4 / 8 PEs).

The paper fixes the PE count at 8 (one per first-level branch) "to maximise
voxel update throughput" and notes the design is scalable.  This ablation
sweeps the PE count on the FR-079 corridor workload and reports the effective
cycles per voxel update and the extrapolated FPS, showing where the
parallelism saturates.
"""

from repro.analysis.tables import render_table
from repro.core import OMUAccelerator, OMUConfig
from repro.datasets.catalog import dataset_by_name
from repro.datasets.generator import GenerationSpec, generate_scan_graph

SPEC = GenerationSpec(num_scans=2, beams_azimuth=96, beams_elevation=3, max_range_m=12.0)


def _run_with_pes(graph, descriptor, num_pes: int):
    config = OMUConfig(resolution_m=descriptor.resolution_m, num_pes=num_pes)
    accelerator = OMUAccelerator(config)
    accelerator.process_scan_graph(graph, max_range=SPEC.max_range_m)
    cycles_per_update = accelerator.map_cycles_per_update()
    latency = descriptor.voxel_updates_total * cycles_per_update / config.clock_hz
    return {
        "cycles_per_update": cycles_per_update,
        "parallel_speedup": accelerator.map_parallel_speedup(),
        "fps": descriptor.fps_from_latency(latency),
    }


def test_ablation_pe_scaling(benchmark, save_result):
    descriptor = dataset_by_name("FR-079 corridor")
    graph = generate_scan_graph(descriptor, SPEC)

    results = {}

    def sweep():
        for num_pes in (1, 2, 4, 8):
            results[num_pes] = _run_with_pes(graph, descriptor, num_pes)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (
            num_pes,
            results[num_pes]["cycles_per_update"],
            results[num_pes]["parallel_speedup"],
            results[num_pes]["fps"],
            results[num_pes]["fps"] > 30.0,
        )
        for num_pes in sorted(results)
    ]
    rendered = render_table(
        "Ablation: PE count scaling on FR-079 corridor",
        ("PEs", "Cycles / voxel update", "Parallel speedup", "Extrapolated FPS", "Real-time"),
        rows,
    )
    save_result("ablation_pe_scaling", rendered)

    assert results[8]["cycles_per_update"] < results[2]["cycles_per_update"] < results[1]["cycles_per_update"]
    assert results[8]["fps"] > 30.0
    assert results[1]["fps"] < results[8]["fps"]
