"""Ablation: memory footprint with and without prune-address reuse.

Section IV-C argues the prune address manager keeps SRAM utilisation high by
recycling freed children-block rows.  This ablation processes the same scene
twice (the second pass saturates voxels and triggers pruning) and compares the
rows actually live against the fresh-row high-water mark -- the space a design
without reuse would have consumed.
"""

from repro.analysis.tables import render_table
from repro.core import OMUAccelerator, OMUConfig
from repro.datasets.catalog import dataset_by_name
from repro.datasets.generator import GenerationSpec, generate_scan_graph

SPEC = GenerationSpec(num_scans=3, beams_azimuth=96, beams_elevation=3, max_range_m=12.0)


def test_ablation_prune_address_reuse(benchmark, save_result):
    descriptor = dataset_by_name("FR-079 corridor")
    graph = generate_scan_graph(descriptor, SPEC)
    config = OMUConfig(resolution_m=descriptor.resolution_m)

    def run():
        accelerator = OMUAccelerator(config)
        for _ in range(3):
            accelerator.process_scan_graph(graph, max_range=SPEC.max_range_m)
        return accelerator

    accelerator = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    total_live = 0
    total_touched = 0
    total_reused = 0
    total_allocations = 0
    for pe in accelerator.pes:
        allocator = pe.allocator
        rows.append(
            (
                f"PE {pe.pe_id}",
                allocator.rows_in_use,
                allocator.rows_touched,
                allocator.reused_allocations,
                allocator.reuse_fraction(),
            )
        )
        total_live += allocator.rows_in_use
        total_touched += allocator.rows_touched
        total_reused += allocator.reused_allocations
        total_allocations += allocator.allocations
    rows.append(
        (
            "Total",
            total_live,
            total_touched,
            total_reused,
            total_reused / total_allocations if total_allocations else 0.0,
        )
    )
    rendered = render_table(
        "Ablation: prune-address reuse (3 passes over the corridor scene)",
        ("PE", "Rows live", "Fresh rows touched (no-reuse footprint)", "Reused allocations", "Reuse fraction"),
        rows,
    )
    save_result("ablation_prune_manager", rendered)

    assert total_reused > 0, "repeated passes must recycle pruned rows"
    assert total_live <= total_touched
