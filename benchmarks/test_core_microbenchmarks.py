"""Microbenchmarks of the core accelerator datapaths (not tied to a figure).

These track the Python model's own performance (voxel updates per second,
queries per second, ray-casting throughput) so regressions in the simulator
are visible independent of the paper-facing experiments.
"""

import math

import numpy as np

from repro.core import OMUAccelerator, OMUConfig
from repro.octomap import OccupancyOcTree, PointCloud


def _ring_cloud(points: int = 360) -> PointCloud:
    return PointCloud(
        [
            (4.0 * math.cos(azimuth), 4.0 * math.sin(azimuth), 0.3 * math.sin(3 * azimuth))
            for azimuth in np.linspace(-math.pi, math.pi, points, endpoint=False)
        ]
    )


def test_accelerator_scan_processing_throughput(benchmark):
    cloud = _ring_cloud()

    def process():
        accelerator = OMUAccelerator(OMUConfig(resolution_m=0.2))
        return accelerator.process_scan(cloud, (0.0, 0.0, 0.0)).voxel_updates

    updates = benchmark(process)
    assert updates > 500


def test_software_octomap_insertion_throughput(benchmark):
    cloud = _ring_cloud()

    def insert():
        tree = OccupancyOcTree(0.2)
        tree.insert_point_cloud(cloud, (0.0, 0.0, 0.0))
        return tree.size()

    size = benchmark(insert)
    assert size > 500


def test_voxel_query_throughput(benchmark):
    accelerator = OMUAccelerator(OMUConfig(resolution_m=0.2))
    accelerator.process_scan(_ring_cloud(), (0.0, 0.0, 0.0))
    probe_points = [(x * 0.37, y * 0.53, 0.0) for x in range(-5, 6) for y in range(-5, 6)]

    def query_all():
        return sum(1 for point in probe_points if accelerator.classify(*point) != "unknown")

    known = benchmark(query_all)
    assert known > 20
