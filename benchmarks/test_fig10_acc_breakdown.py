"""Bench: regenerate Fig. 10 (runtime breakdown, i9 CPU vs OMU accelerator)."""

from repro.analysis.experiments import figure10_accelerator_breakdown
from benchmarks.conftest import BENCHMARK_SCALE


def test_fig10_accelerator_breakdown(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: figure10_accelerator_breakdown(scale=BENCHMARK_SCALE), rounds=1, iterations=1
    )
    save_result(result.experiment_id, result.rendered)
    for row in result.rows:
        backend, prune_share = str(row[1]), row[5]
        if backend == "OMU":
            # Paper: prune/expand drops below ~20 % on the accelerator.
            assert prune_share < 25.0
        else:
            assert prune_share > 40.0
