"""Bench: regenerate Fig. 3 (CPU runtime breakdown of the OctoMap pipeline)."""

from repro.analysis.experiments import figure3_cpu_breakdown
from benchmarks.conftest import BENCHMARK_SCALE


def test_fig3_cpu_breakdown(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: figure3_cpu_breakdown(scale=BENCHMARK_SCALE), rounds=1, iterations=1
    )
    save_result(result.experiment_id, result.rendered)
    for row in result.rows:
        ray, leaf, parents, prune = row[1], row[2], row[3], row[4]
        # Paper Fig. 3: node prune/expand dominates; ray casting is negligible.
        assert prune == max(ray, leaf, parents, prune)
        assert prune > 40.0
        assert ray < 10.0
