"""Bench: the Fig. 5 packed data structure (64-bit entry pack/unpack throughput).

Fig. 5 of the paper defines the 64-bit TreeMem entry (32-bit children pointer,
16 bits of 2-bit child status tags, 16-bit fixed-point log-odds).  This
benchmark measures the Python model's pack/unpack throughput and regenerates
the figure's two-voxel, depth-3 worked example as a table showing where each
node lands (bank, row) and what its packed word looks like.
"""

from repro.analysis.tables import render_table
from repro.core.config import OMUConfig
from repro.core.pe import ProcessingElement
from repro.core.treemem import ChildStatus, TreeMemEntry
from repro.octomap.keys import KeyConverter


def _pack_unpack_many(count: int = 2000) -> int:
    checksum = 0
    for index in range(count):
        entry = TreeMemEntry(
            pointer=index & 0xFFFFFFFF,
            probability_raw=(index % 4096) - 2048,
        )
        entry.set_tag(index % 8, ChildStatus.OCCUPIED)
        word = entry.pack()
        checksum ^= word
        TreeMemEntry.unpack(word)
    return checksum


def test_fig5_entry_pack_unpack(benchmark, save_result):
    benchmark(_pack_unpack_many)

    # Regenerate the worked example: two voxels inserted into a depth-3 tree.
    config = OMUConfig(resolution_m=0.2, tree_depth=3)
    converter = KeyConverter(0.2, 3)
    pe_store = {pe_id: ProcessingElement(pe_id, config) for pe_id in range(8)}
    voxels = [(0.3, 0.1, 0.1), (-0.3, 0.5, 0.1)]
    rows = []
    for x, y, z in voxels:
        key = converter.coord_to_key(x, y, z)
        branch = key.child_index(0, 3)
        pe_store[branch].update_voxel(key, occupied=True)
    for pe_id, pe in sorted(pe_store.items()):
        for node in pe.export_nodes():
            entry_kind = "leaf" if node.is_leaf else "inner"
            rows.append((pe_id, "/".join(map(str, node.path)), entry_kind, node.probability_raw))
    rendered = render_table(
        "Fig. 5 worked example: two voxel updates in a depth-3 tree",
        ("PE (branch)", "path from root", "node kind", "probability (raw Q5.10)"),
        rows,
    )
    save_result("figure5", rendered)
    assert len(rows) >= 6, "two depth-3 paths produce at least six stored nodes"
