"""Bench: the Fig. 6 prune address manager (pruned-pointer reuse).

Measures the allocate/free throughput of the stack-based manager and
regenerates a small table showing that reuse keeps the fresh-row high-water
mark flat while the map is repeatedly pruned and re-expanded.
"""

from repro.analysis.tables import render_table
from repro.core.prune_manager import PruneAddressManager


def _churn(manager: PruneAddressManager, iterations: int = 2000) -> None:
    live = []
    for index in range(iterations):
        if index % 3 != 2:
            live.append(manager.allocate_row())
        elif live:
            manager.free_row(live.pop())


def test_fig6_prune_address_manager(benchmark, save_result):
    benchmark.pedantic(
        lambda: _churn(PruneAddressManager(num_rows=4096)), rounds=3, iterations=1
    )

    manager = PruneAddressManager(num_rows=4096)
    _churn(manager, 3000)
    rendered = render_table(
        "Fig. 6: dynamic prune address manager behaviour (3000 allocate/free operations)",
        ("Metric", "Value"),
        [
            ("Allocations served", manager.allocations),
            ("Served from the prune stack", manager.reused_allocations),
            ("Reuse fraction", manager.reuse_fraction()),
            ("Fresh rows ever touched (high-water mark)", manager.rows_touched),
            ("Rows currently live", manager.rows_in_use),
            ("Peak stack depth", manager.peak_stack_depth),
        ],
    )
    save_result("figure6", rendered)
    assert manager.reused_allocations > 0
    assert manager.rows_touched < manager.allocations
