"""Bench: regenerate Fig. 8 (12 nm layout area of the 8-PE accelerator)."""

import pytest

from repro.analysis.experiments import figure8_area


def test_fig8_area(benchmark, save_result):
    result = benchmark(figure8_area)
    save_result(result.experiment_id, result.rendered)
    totals = {str(row[0]): row[1] for row in result.rows}
    assert totals["Total"] == pytest.approx(2.5, rel=0.05)
