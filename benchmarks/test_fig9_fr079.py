"""Bench: regenerate Fig. 9 (FR-079 latency and throughput bar charts)."""

from repro.analysis.experiments import figure9_fr079
from benchmarks.conftest import BENCHMARK_SCALE


def test_fig9_fr079(benchmark, save_result):
    result = benchmark.pedantic(lambda: figure9_fr079(scale=BENCHMARK_SCALE), rounds=1, iterations=1)
    save_result(result.experiment_id, result.rendered)
    latency = {str(row[0]): row[1] for row in result.rows}
    fps = {str(row[0]): row[2] for row in result.rows}
    assert latency["OMU accelerator"] < latency["Intel i9 CPU"] < latency["Arm A57 CPU"]
    assert fps["OMU accelerator"] > 30.0 > fps["Intel i9 CPU"] > fps["Arm A57 CPU"]
