"""Bench: regenerate the Section VI-C power budget (250.8 mW, 91 % SRAM)."""

import pytest

from repro.analysis.experiments import power_budget


def test_power_budget(benchmark, save_result):
    result = benchmark(power_budget)
    save_result(result.experiment_id, result.rendered)
    rows = {str(row[0]): row[1] for row in result.rows}
    assert rows["Total power (mW)"] == pytest.approx(250.8, rel=0.05)
    assert rows["SRAM share (%)"] == pytest.approx(91.0, abs=3.0)
