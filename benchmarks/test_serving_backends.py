"""Bench: serving-layer execution backends, backend x shard-count wall clock.

Besides the rendered table, this benchmark writes the machine-readable
``BENCH_serving.json`` into ``benchmarks/results/`` so CI can archive the
per-PR throughput trajectory of the serving layer.

No relative-performance assertion is made here: whether the process backend
beats inline depends on the runner's core count (the JSON records it), and a
single-core container would make such an assert flaky.  The equivalence
facts -- identical update counts across every backend -- are asserted.
"""

from dataclasses import replace

from repro.analysis.service import (
    DEFAULT_BENCH_CLIENTS,
    backend_scaling_experiment,
    write_benchmark_json,
)

# Half the default client scan count: keeps the whole sweep (9 configs) to
# tens of seconds inside the tier-1 harness.  The CI benchmark job runs the
# full default workload via `python -m repro.analysis.service` on top.
BENCH_CLIENTS = tuple(replace(client, num_scans=3) for client in DEFAULT_BENCH_CLIENTS)


def test_backend_scaling_sweep(benchmark, save_result, results_dir):
    result = benchmark.pedantic(
        lambda: backend_scaling_experiment(BENCH_CLIENTS, shard_counts=(1, 2, 4)),
        rounds=1,
        iterations=1,
    )
    save_result(result.experiment_id, result.rendered + "\n\n" + result.notes)
    write_benchmark_json(result, results_dir / "BENCH_serving.json")

    assert {row[0] for row in result.rows} == {"inline", "thread", "process"}
    # Same workload -> same dispatched updates on every backend and shard
    # count (the serving equivalence property, visible in the bench too).
    assert len({row[3] for row in result.rows}) == 1
    assert all(row[4] > 0 for row in result.rows)
