"""Bench: serving-layer execution backends, backend x shard-count wall clock.

Besides the rendered table, this benchmark writes the machine-readable
``BENCH_serving.json`` into ``benchmarks/results/`` so CI can archive the
per-PR throughput trajectory of the serving layer.

No relative-performance assertion is made here: whether the process backend
beats inline depends on the runner's core count (the JSON records it), and a
single-core container would make such an assert flaky.  The equivalence
facts -- identical update counts across every backend -- are asserted.
"""

from dataclasses import replace

from repro.analysis.service import (
    DEFAULT_BENCH_CLIENTS,
    backend_scaling_experiment,
    write_benchmark_json,
)

# Half the default client scan count: keeps the whole sweep (blocking +
# pipelined rows) to tens of seconds inside the tier-1 harness.  The CI
# benchmark job runs the full default workload via
# `python -m repro.analysis.service` on top.
BENCH_CLIENTS = tuple(replace(client, num_scans=3) for client in DEFAULT_BENCH_CLIENTS)

# backend_scaling_experiment's batch size; the bench clients all write one
# session, so a row sees front-end/apply overlap iff its per-session scan
# count exceeds this (more than one flushed batch).
BATCH_SIZE = 4


def test_backend_scaling_sweep(benchmark, save_result, results_dir):
    result = benchmark.pedantic(
        lambda: backend_scaling_experiment(
            BENCH_CLIENTS, shard_counts=(1, 2, 4), batch_size=BATCH_SIZE
        ),
        rounds=1,
        iterations=1,
    )
    save_result(result.experiment_id, result.rendered + "\n\n" + result.notes)
    write_benchmark_json(result, results_dir / "BENCH_serving.json")

    records = result.records()
    assert {r["Backend"] for r in records} == {"inline", "thread", "process", "socket"}
    assert {r["Mode"] for r in records} == {"blocking", "pipelined"}
    # Same workload -> same dispatched updates on every backend, shard count
    # and ingestion mode (the serving equivalence property, visible in the
    # bench too).
    assert len({r["Updates"] for r in records}) == 1
    assert all(r["Ingest wall (s)"] > 0 for r in records)
    # Pipelined rows hide front-end work behind in-flight applies (whether
    # that buys wall clock depends on the runner's cores; the overlap ratio
    # itself is core-count independent once a session flushes more than one
    # batch -- all bench clients share one session, so that is per-row scans
    # above the batch size).
    pipelined_multibatch = [
        r for r in records if r["Mode"] == "pipelined" and r["Scans"] > BATCH_SIZE
    ]
    assert pipelined_multibatch, "bench workload no longer produces multi-batch sessions"
    assert all(r["Overlap (%)"] > 0.0 for r in pipelined_multibatch)
