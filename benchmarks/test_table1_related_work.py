"""Bench: regenerate Table I (qualitative comparison of mapping accelerators)."""

from repro.analysis.experiments import table1_related_work


def test_table1_related_work(benchmark, save_result):
    result = benchmark(table1_related_work)
    save_result(result.experiment_id, result.rendered)
    omu_row = [row for row in result.rows if "OMU" in str(row[0])][0]
    assert omu_row[1:] == (True, True, True)
