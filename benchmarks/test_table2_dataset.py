"""Bench: regenerate Table II (dataset details and i9 baseline latency/FPS)."""

import pytest

from repro.analysis.experiments import table2_dataset_details
from benchmarks.conftest import BENCHMARK_SCALE


def test_table2_dataset_details(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: table2_dataset_details(scale=BENCHMARK_SCALE), rounds=1, iterations=1
    )
    save_result(result.experiment_id, result.rendered)
    for row in result.rows:
        model_latency, paper_latency = row[5], row[6]
        assert model_latency == pytest.approx(paper_latency, rel=0.1)
        model_fps, paper_fps = row[7], row[8]
        assert model_fps == pytest.approx(paper_fps, rel=0.1)
