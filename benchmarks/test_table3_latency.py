"""Bench: regenerate Table III (latency and speed-ups over the i9 and A57)."""

from repro.analysis.experiments import table3_latency
from benchmarks.conftest import BENCHMARK_SCALE


def test_table3_latency(benchmark, save_result):
    result = benchmark.pedantic(lambda: table3_latency(scale=BENCHMARK_SCALE), rounds=1, iterations=1)
    save_result(result.experiment_id, result.rendered)
    for row in result.rows:
        speedup_i9, paper_i9 = row[5], row[6]
        speedup_a57, paper_a57 = row[7], row[8]
        # The shape must hold: order-of-10x over the i9, tens-of-x over the A57.
        assert 0.5 * paper_i9 < speedup_i9 < 2.0 * paper_i9
        assert 0.5 * paper_a57 < speedup_a57 < 2.0 * paper_a57
