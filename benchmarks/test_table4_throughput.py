"""Bench: regenerate Table IV (throughput in FPS; the 30 FPS real-time bar)."""

import pytest

from repro.analysis.experiments import table4_throughput
from benchmarks.conftest import BENCHMARK_SCALE


def test_table4_throughput(benchmark, save_result):
    result = benchmark.pedantic(lambda: table4_throughput(scale=BENCHMARK_SCALE), rounds=1, iterations=1)
    save_result(result.experiment_id, result.rendered)
    for row in result.rows:
        i9_fps, a57_fps, omu_fps = row[1], row[2], row[3]
        assert i9_fps == pytest.approx(5.0, abs=1.0)
        assert a57_fps == pytest.approx(1.0, abs=0.3)
        assert omu_fps > 30.0, "OMU must clear the real-time requirement"
        assert row[7] is True
