"""Bench: regenerate Table V (energy and the energy benefit over the A57)."""

from repro.analysis.experiments import table5_energy
from benchmarks.conftest import BENCHMARK_SCALE


def test_table5_energy(benchmark, save_result):
    result = benchmark.pedantic(lambda: table5_energy(scale=BENCHMARK_SCALE), rounds=1, iterations=1)
    save_result(result.experiment_id, result.rendered)
    for row in result.rows:
        benefit, paper_benefit = row[5], row[6]
        assert 0.5 * paper_benefit < benefit < 2.0 * paper_benefit
        assert benefit > 100.0
