"""Concurrent clients against the asyncio admission front end.

Three clients stream scans into one shared map session through
:class:`repro.serving.AsyncMapService`.  Admission is a bounded per-session
queue: every ``await service.submit(...)`` returns as soon as the request is
queued (microseconds), while background flusher tasks drive the ray-casting
front end and the shard applies off the event loop.  When the queue fills,
submitters are backpressured -- the wait is metered into the admission
stats -- instead of the queue growing without bound.

The script ends by verifying the async-ingested map is equivalent to
sequential software insertion of the same scans in dispatch order, and by
printing the service stats (including the async admission table).

Run with:  python examples/async_service_demo.py [--backend inline|thread|process]
"""

from __future__ import annotations

import argparse
import asyncio
import time

from repro.core.verification import compare_trees
from repro.datasets import ClientSpec, generate_interleaved_stream
from repro.octomap import OccupancyOcTree
from repro.serving import AsyncMapService, BACKEND_NAMES, ScanRequest, SessionConfig


async def run_demo(backend: str) -> None:
    clients = tuple(
        ClientSpec(
            client_id=f"drone-{index}",
            session_id="shared-map",
            scene="corridor",
            num_scans=3,
            max_range_m=15.0,
        )
        for index in range(3)
    )
    stream = generate_interleaved_stream(clients, seed=7)
    per_client = {}
    for event in stream:
        per_client.setdefault(event.client_id, []).append(event)
    print(f"{len(stream)} scans from {len(clients)} clients -> one shared session")

    config = SessionConfig(
        num_shards=2, batch_size=2, backend=backend, admission_queue_limit=4
    )
    async with AsyncMapService(default_config=config) as service:
        # Create the session before submitting: with the process backend the
        # shard workers fork before any executor thread exists.
        service.get_or_create_session("shared-map")

        submitted = {}  # request id -> stream event, recorded at admission

        async def run_client(client_id, events):
            for event in events:
                started = time.perf_counter()
                receipt = await service.submit(
                    ScanRequest.from_scan_node(
                        event.session_id,
                        event.scan,
                        max_range=event.max_range_m,
                        client_id=event.client_id,
                    )
                )
                submitted[receipt.request_id] = event
                waited_ms = 1e3 * (time.perf_counter() - started)
                print(
                    f"  {client_id}: admitted #{receipt.request_id} in "
                    f"{waited_ms:.2f} ms (queue depth {receipt.queue_depth})"
                )
                await asyncio.sleep(0)  # let the other clients interleave

        # All clients submit concurrently; the flusher ingests meanwhile.
        await asyncio.gather(
            *(run_client(cid, events) for cid, events in per_client.items())
        )
        reports = await service.flush("shared-map")
        print(f"Drained into {len(reports)} final batches")

        # Collision queries are coroutines too.
        ray = await service.raycast("shared-map", (0.0, 0.0, 0.2), (1.0, 0.0, 0.0), 12.0)
        hit = f"hit at {ray.hit_point}" if ray.hit else "no hit"
        print(f"  forward collision ray -> {hit} ({ray.voxels_traversed} voxels)")

        # Async multi-client ingestion must equal sequential insertion of the
        # same scans in the dispatch order the batch reports recorded.
        session = service.manager.get_session("shared-map")
        accel = session.config.accelerator
        reference = OccupancyOcTree(
            accel.resolution_m,
            tree_depth=accel.tree_depth,
            params=accel.quantized_params().as_float_params(),
        )
        dispatched = [
            rid for report in session.pipeline.reports for rid in report.request_ids
        ]
        for request_id in dispatched:
            event = submitted[request_id]
            reference.insert_point_cloud(
                event.scan.world_cloud(), event.scan.origin(), max_range=event.max_range_m
            )
        reference.prune()
        tolerance = accel.fixed_point.scale / 2.0
        report = compare_trees(reference, session.export_octree(), tolerance)
        print(f"  equivalence vs sequential insertion: {report.summary()}")

        print()
        print(service.render_stats())


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="inline",
        help="shard execution backend (default inline)",
    )
    args = parser.parse_args(argv)
    asyncio.run(run_demo(args.backend))


if __name__ == "__main__":
    main()
