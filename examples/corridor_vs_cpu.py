"""Reproduce the paper's headline comparison on the FR-079 corridor (Fig. 9).

Runs the scaled corridor workload on the OMU model, measures its effective
cycles per voxel update, extrapolates to the full-size dataset and prints the
latency / throughput / energy comparison against the calibrated Intel i9 and
ARM Cortex-A57 baselines -- the same quantities as the paper's Fig. 9 and
Tables III-V, with the paper's numbers alongside.

Run with:  python examples/corridor_vs_cpu.py
"""

from __future__ import annotations

from repro.analysis import evaluate_dataset, render_bar_chart, render_table


def main() -> None:
    evaluation = evaluate_dataset("FR-079 corridor", scale="default")
    descriptor = evaluation.descriptor
    paper = descriptor.paper

    rows = [
        ("Arm A57 CPU", evaluation.a57_latency_s, evaluation.a57_fps, evaluation.a57_energy_j),
        ("Intel i9 CPU", evaluation.i9_latency_s, evaluation.i9_fps, None),
        ("OMU accelerator", evaluation.omu_latency_s, evaluation.omu_fps, evaluation.omu_energy_j),
        ("OMU (paper)", paper.omu_latency_s, paper.omu_fps, paper.omu_energy_j),
    ]
    print(
        render_table(
            f"{descriptor.name}: full-dataset latency, throughput and energy",
            ("Platform", "Latency (s)", "Throughput (FPS)", "Energy (J)"),
            rows,
        )
    )
    print()
    print(
        render_bar_chart(
            "Latency (s) -- lower is better",
            {str(row[0]): float(row[1]) for row in rows},
            unit=" s",
        )
    )
    print()
    print(
        render_bar_chart(
            "Throughput (FPS) -- the real-time bar is 30 FPS",
            {str(row[0]): float(row[2]) for row in rows},
            unit=" FPS",
        )
    )
    print()
    print(
        f"Speedup over the i9:  {evaluation.i9_latency_s / evaluation.omu_latency_s:5.1f}x "
        f"(paper: {paper.speedup_over_i9:.1f}x)"
    )
    print(
        f"Speedup over the A57: {evaluation.a57_latency_s / evaluation.omu_latency_s:5.1f}x "
        f"(paper: {paper.speedup_over_a57:.1f}x)"
    )
    print(
        f"Energy benefit over the A57: {evaluation.a57_energy_j / evaluation.omu_energy_j:5.0f}x "
        f"(paper: {paper.energy_benefit:.0f}x)"
    )


if __name__ == "__main__":
    main()
