"""Indoor mapping from a depth camera (Kinect-style) instead of a LiDAR.

The paper's introduction cites the Microsoft Kinect's 9.2 million points per
second as the data-rate challenge for real-time mapping.  This example drives
the pipeline with the :class:`repro.datasets.DepthCamera` model: a sequence of
depth frames of the corridor scene is integrated on the accelerator, and the
script reports the frame rate the modelled accelerator would sustain for this
sensor, compared against the calibrated CPU baselines.

Run with:  python examples/depth_camera_mapping.py
"""

from __future__ import annotations

from repro.baselines import A57_COST_MODEL, I9_COST_MODEL
from repro.core import OMUAccelerator, OMUConfig
from repro.datasets import DepthCamera, corridor_scene, trajectory_for_scene
from repro.octomap.pointcloud import ScanGraph, ScanNode


def main() -> None:
    scene = corridor_scene()
    camera = DepthCamera(width=160, height=120, stride=4, max_range_m=8.0)
    poses = trajectory_for_scene("corridor", num_scans=4)

    graph = ScanGraph(name="corridor depth frames")
    for scan_id, pose in enumerate(poses):
        cloud = camera.scan(scene, pose)
        graph.add_scan(ScanNode(cloud, pose, scan_id=scan_id))
    print(f"Captured {len(graph)} depth frames, {graph.total_points()} points")

    config = OMUConfig(resolution_m=0.1)  # indoor mapping at 10 cm voxels
    accelerator = OMUAccelerator(config)
    accelerator.process_scan_graph(graph, max_range=camera.max_range_m)

    updates = accelerator.map_timing.voxel_updates
    updates_per_frame = updates / len(graph)
    cycles_per_update = accelerator.map_cycles_per_update()
    seconds_per_frame = updates_per_frame * cycles_per_update / config.clock_hz
    print(f"Voxel updates per frame: {updates_per_frame:.0f}")
    print(f"OMU cycles per voxel update: {cycles_per_update:.1f}")
    print(f"OMU sustainable frame rate: {1.0 / seconds_per_frame:.1f} FPS")

    for name, model in (("Intel i9", I9_COST_MODEL), ("ARM Cortex-A57", A57_COST_MODEL)):
        cpu_seconds_per_frame = updates_per_frame * model.ns_per_voxel_update * 1e-9
        print(f"{name} sustainable frame rate: {1.0 / cpu_seconds_per_frame:.1f} FPS")

    tree = accelerator.export_octree()
    occupied = sum(1 for _ in tree.iter_occupied())
    free = sum(1 for _ in tree.iter_free())
    print(f"Finished map: {occupied} occupied leaves, {free} free leaves")

    print("Sample queries against the finished map (camera looks along +x):")
    # Ahead of the second camera pose: the corridor air is observed free, while
    # space far above the ceiling opening stays unknown.
    pose_x = poses[1].translation[0]
    for point in ((pose_x + 2.0, 0.0, -0.4), (pose_x + 3.5, 0.0, -1.25), (pose_x, 0.0, 5.0)):
        print(f"  ({point[0]:6.2f}, {point[1]:5.2f}, {point[2]:5.2f}): {accelerator.classify(*point)}")


if __name__ == "__main__":
    main()
