"""Collision checking for a micro aerial vehicle using the OMU query service.

The paper motivates OMU with autonomous machines (MAVs, mobile robots) that
must query the 3D map continuously for collision detection and motion
planning.  This example maps the campus scene with a simulated LiDAR, then
checks two candidate flight paths against the map through the accelerator's
voxel-query unit: one path flies through open space, the other would clip a
building.

Run with:  python examples/drone_collision_check.py
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.core import OMUAccelerator, OMUConfig
from repro.datasets import GenerationSpec, dataset_by_name, generate_scan_graph

Waypoint = Tuple[float, float, float]


def sample_path(start: Waypoint, end: Waypoint, spacing_m: float) -> List[Waypoint]:
    """Sample a straight flight segment every ``spacing_m`` metres."""
    length = math.dist(start, end)
    steps = max(2, int(length / spacing_m) + 1)
    return [
        tuple(start[axis] + (end[axis] - start[axis]) * step / (steps - 1) for axis in range(3))
        for step in range(steps)
    ]


def sample_arc(radius: float, start_deg: float, end_deg: float, altitude: float, spacing_m: float) -> List[Waypoint]:
    """Sample an arc of the mapping trajectory (the drone retraces its loop)."""
    arc_length = abs(math.radians(end_deg - start_deg)) * radius
    steps = max(2, int(arc_length / spacing_m) + 1)
    waypoints = []
    for step in range(steps):
        angle = math.radians(start_deg + (end_deg - start_deg) * step / (steps - 1))
        waypoints.append((radius * math.cos(angle), radius * math.sin(angle), altitude))
    return waypoints


def check_path(
    accelerator: OMUAccelerator,
    path: Sequence[Waypoint],
    robot_radius_m: float = 0.2,
) -> Tuple[bool, int, int]:
    """Return (collision_free, occupied_hits, unknown_cells) along a path.

    Each waypoint is checked as a small volume (the drone's bounding sphere,
    one voxel in every direction for the default radius), exactly how a
    planner would query the map.  Unknown cells are counted separately: a
    conservative planner treats them as obstacles, which is why OctoMap's
    explicit unknown-space representation matters (Section II of the paper).
    """
    resolution = accelerator.config.resolution_m
    offsets = [-robot_radius_m, 0.0, robot_radius_m]
    occupied = 0
    unknown = 0
    for waypoint in path:
        for dx in offsets:
            for dy in offsets:
                for dz in offsets:
                    if math.sqrt(dx * dx + dy * dy + dz * dz) > robot_radius_m + 0.5 * resolution:
                        continue
                    status = accelerator.classify(waypoint[0] + dx, waypoint[1] + dy, waypoint[2] + dz)
                    if status == "occupied":
                        occupied += 1
                    elif status == "unknown":
                        unknown += 1
    return occupied == 0, occupied, unknown


def main() -> None:
    descriptor = dataset_by_name("Freiburg campus")
    spec = GenerationSpec(num_scans=6, beams_azimuth=120, beams_elevation=5, max_range_m=18.0)
    graph = generate_scan_graph(descriptor, spec)

    # Mapping this much of the campus at 0.2 m needs more on-chip storage than
    # the paper's 256 kB per PE (a known limitation of a fixed-capacity
    # TreeMem; see EXPERIMENTS.md), so this example doubles the bank size.
    accelerator = OMUAccelerator(
        OMUConfig(resolution_m=descriptor.resolution_m, bank_kilobytes=64)
    )
    accelerator.process_scan_graph(graph, max_range=spec.max_range_m)
    print(
        f"Mapped the campus scene: {accelerator.map_timing.voxel_updates} voxel updates, "
        f"{accelerator.statistics().nodes_stored} nodes stored"
    )

    # Path A retraces a quarter of the mapped survey loop (well-observed free
    # space); path B leaves the loop and heads straight into the central
    # building south of the origin.
    # (the arc segment is chosen away from the tree rows at y = +14 / -16 m)
    path_a = sample_arc(radius=18.0, start_deg=-55.0, end_deg=40.0, altitude=0.0, spacing_m=0.2)
    path_b = sample_path((18.0, 0.0, 0.0), (-1.0, -7.0, 0.1), spacing_m=0.2)

    for name, path in (("A (along the mapped loop)", path_a), ("B (into the central building)", path_b)):
        collision_free, occupied, unknown = check_path(accelerator, path)
        verdict = "SAFE" if collision_free else "COLLISION"
        print(
            f"Path {name}: {verdict} -- {len(path)} cells checked, "
            f"{occupied} occupied, {unknown} unknown (a conservative planner "
            "also avoids unknown cells)"
        )

    queries = accelerator.query_unit
    print(
        f"Query service: {queries.queries_served} queries, "
        f"{queries.average_cycles_per_query():.1f} cycles each "
        f"({queries.average_cycles_per_query() / accelerator.config.clock_hz * 1e9:.1f} ns at 1 GHz)"
    )


if __name__ == "__main__":
    main()
