"""The network API end to end: server, chunked upload, export job.

Starts :class:`repro.serving.http.HttpMapServer` on an ephemeral loopback
port over one :class:`repro.serving.AsyncMapService`, then drives it purely
through :class:`repro.serving.http.MapServiceClient` -- exactly what a
remote caller would do:

1. create a session (with a config override, to show the knob),
2. push a corridor scan batch through the *resumable chunked upload*
   protocol (the batch is deliberately larger than one request body),
3. flush, run point / bbox / raycast queries over the wire,
4. start a map-export *job*, poll it to ``done``, download the serialized
   octree artifact and verify it deserializes to the live map.

Run with:  python examples/http_service_demo.py [--backend inline|thread|process]
"""

from __future__ import annotations

import argparse
import asyncio
import json

from repro.core.verification import compare_trees
from repro.datasets import ClientSpec, generate_interleaved_stream
from repro.octomap.serialization import deserialize_tree
from repro.serving import AsyncMapService, BACKEND_NAMES, SessionConfig
from repro.serving.http import HttpMapServer, MapServiceClient


async def run_demo(backend: str) -> None:
    clients = tuple(
        ClientSpec(
            client_id=f"drone-{index}",
            session_id="warehouse",
            scene="corridor",
            num_scans=3,
            max_range_m=15.0,
        )
        for index in range(2)
    )
    scans = [
        {
            "points": event.scan.world_cloud().points.tolist(),
            "origin": list(event.scan.origin()),
            "max_range": 15.0,
            "client_id": event.client_id,
        }
        for event in generate_interleaved_stream(clients, seed=7)
    ]

    config = SessionConfig(num_shards=2, batch_size=2, backend=backend)
    service = AsyncMapService(default_config=config)
    # A small body limit makes the upload path load-bearing: the scan batch
    # below could not arrive as one POST.
    async with HttpMapServer(service, port=0, max_body_bytes=8 * 1024) as server:
        host, port = server.address
        client = MapServiceClient(host, port)
        print(f"serving http://{host}:{port}  (backend={backend})")
        print("healthz:", await client.healthz())

        created = await client.create_session(
            "warehouse", {"scheduler_policy": "priority"}
        )
        print("session:", created)

        blob_bytes = len(json.dumps({"scans": scans}).encode())
        print(
            f"uploading {len(scans)} scans ({blob_bytes} bytes) in 4 KiB chunks "
            f"(single-body limit is {8 * 1024} bytes)"
        )
        commit = await client.upload_scans("warehouse", scans, chunk_bytes=4 * 1024)
        print(f"upload committed: {commit['submitted']} scans admitted")

        reports = await client.flush("warehouse")
        print(
            f"flushed {sum(r['scans'] for r in reports)} scans in "
            f"{len(reports)} batches, "
            f"{sum(r['voxel_updates'] for r in reports)} voxel updates"
        )

        point = await client.query("warehouse", 1.0, 0.0, 0.5)
        print("point query:", point)
        box = await client.query_bbox("warehouse", (-2.0, -2.0, 0.0), (2.0, 2.0, 1.0))
        print("bbox sweep:", box)
        ray = await client.raycast("warehouse", (0.0, 0.0, 0.5), (1.0, 0.0, 0.0), 12.0)
        print("raycast:", ray)

        started = await client.start_export("warehouse")
        record = await client.wait_job(started["job_id"])
        print(f"export job {record['job_id']}: {' -> '.join(record['history'])}")
        artifact = await client.job_result(record["job_id"])
        tree = deserialize_tree(artifact)
        live = service.manager.get_session("warehouse").export_octree()
        diff = compare_trees(tree, live, 1e-9)
        assert diff.equivalent, diff.summary()
        print(
            f"artifact: {len(artifact)} bytes, {tree.num_leaf_nodes()} leaf nodes, "
            "equivalent to the live map"
        )
    await service.close(drain=True)
    print(service.render_stats())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backend", choices=BACKEND_NAMES, default="inline")
    args = parser.parse_args()
    asyncio.run(run_demo(args.backend))


if __name__ == "__main__":
    main()
