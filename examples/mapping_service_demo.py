"""Two concurrent map sessions served by the occupancy-mapping service layer.

A drone with a spinning LiDAR maps the corridor scene while a rover with a
depth camera maps the campus scene.  Their scans arrive interleaved at one
:class:`repro.serving.MapSessionManager`; each session shards its map over a
pool of accelerator workers, batches the incoming scans, and answers
collision queries through the generation-stamped query cache.  The script
ends by printing the per-session service statistics and showing that the
stitched session maps match direct sequential insertion.

The shard execution backend is selectable: ``--backend process`` runs every
shard's accelerator in its own worker process (the maps are identical --
that is the whole point of the backend abstraction).

Run with:  python examples/mapping_service_demo.py [--backend inline|thread|process] [--pipeline]
"""

from __future__ import annotations

import argparse

from repro.core.verification import compare_trees
from repro.datasets import ClientSpec, generate_interleaved_stream
from repro.octomap import OccupancyOcTree
from repro.serving import BACKEND_NAMES, MapSessionManager, ScanRequest, SessionConfig


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="inline",
        help="shard execution backend (default inline)",
    )
    parser.add_argument(
        "--pipeline",
        action="store_true",
        help="double-buffered ingestion (ray-cast batch N+1 while batch N applies)",
    )
    args = parser.parse_args(argv)
    # 1. Two clients, two sessions: LiDAR corridor + depth-camera campus.
    clients = (
        ClientSpec(
            client_id="drone",
            session_id="corridor-map",
            scene="corridor",
            sensor="lidar",
            num_scans=3,
            max_range_m=15.0,
            priority=1,
        ),
        ClientSpec(
            client_id="rover",
            session_id="campus-map",
            scene="campus",
            sensor="depth_camera",
            num_scans=3,
            max_range_m=8.0,
        ),
    )
    stream = generate_interleaved_stream(clients, seed=42)
    print(f"Interleaved stream: {len(stream)} scans from {len(clients)} clients")

    # 2. One service instance; every session shards over 4 workers on the
    #    chosen execution backend and coalesces scans into batches of 2
    #    under the priority scheduler.
    manager = MapSessionManager(
        SessionConfig(
            num_shards=4,
            batch_size=2,
            scheduler_policy="priority",
            backend=args.backend,
            pipelined=args.pipeline,
        )
    )
    for event in stream:
        receipt = manager.submit(
            ScanRequest.from_scan_node(
                event.session_id,
                event.scan,
                max_range=event.max_range_m,
                priority=event.priority,
                client_id=event.client_id,
            )
        )
        print(
            f"  accepted #{receipt.request_id} from {event.client_id:5s} "
            f"-> {event.session_id} ({receipt.num_points} points, queue {receipt.queue_depth})"
        )
    reports = manager.flush_all()
    print(f"Dispatched {len(reports)} batches across {len(manager)} sessions")

    # 3. Collision queries: the second round of each pattern hits the cache.
    corridor_path = [(x * 0.5, 0.0, 0.2) for x in range(-6, 7)]
    campus_path = [(10.0 + x * 0.5, 2.0, 0.2) for x in range(-4, 5)]
    for _ in range(2):
        blocked = sum(1 for r in manager.query_batch("corridor-map", corridor_path) if r.occupied)
        print(f"  corridor-map: {blocked}/{len(corridor_path)} path voxels occupied")
        blocked = sum(1 for r in manager.query_batch("campus-map", campus_path) if r.occupied)
        print(f"  campus-map:   {blocked}/{len(campus_path)} path voxels occupied")
    ray = manager.raycast("corridor-map", (4.9, 0.0, 0.1), (0.0, 1.0, 0.0), 10.0)
    where = f"at {tuple(round(c, 2) for c in ray.hit_point)}" if ray.hit else "nowhere"
    print(f"  corridor-map: sideways ray collides {where} ({ray.voxels_traversed} voxels walked)")

    # 4. The service must not change the maps: each stitched session map is
    #    bit-identical to sequential software insertion of its own scans.
    for session_id in manager.session_ids():
        session = manager.get_session(session_id)
        quantized = session.config.accelerator.quantized_params()
        reference = OccupancyOcTree(
            session.config.accelerator.resolution_m,
            tree_depth=session.config.accelerator.tree_depth,
            params=quantized.as_float_params(),
        )
        for event in stream:
            if event.session_id == session_id:
                reference.insert_point_cloud(
                    event.scan.world_cloud(), event.scan.origin(), max_range=event.max_range_m
                )
        reference.prune()
        tolerance = session.config.accelerator.fixed_point.scale / 2.0
        report = compare_trees(reference, session.export_octree(), tolerance)
        print(f"  {session_id}: {report.summary()}")

    # 5. The service dashboard, then release the worker pool.
    print()
    print(manager.render_stats())
    manager.shutdown()


if __name__ == "__main__":
    main()
