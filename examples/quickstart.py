"""Quickstart: build a small 3D occupancy map on the OMU accelerator model.

The script generates a handful of synthetic LiDAR scans of the corridor
scene, integrates them on the accelerator, queries the finished map and
verifies that the accelerator's map is bit-identical to the software OctoMap
golden model.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import OMUAccelerator, OMUConfig
from repro.core.verification import verify_against_software
from repro.datasets import GenerationSpec, dataset_by_name, generate_scan_graph


def main() -> None:
    # 1. A scaled synthetic stand-in for the FR-079 corridor dataset.
    descriptor = dataset_by_name("FR-079 corridor")
    spec = GenerationSpec(num_scans=3, beams_azimuth=120, beams_elevation=4, max_range_m=15.0)
    graph = generate_scan_graph(descriptor, spec)
    print(f"Generated {len(graph)} scans, {graph.total_points()} points total")

    # 2. Integrate every scan on the accelerator (ray casting + parallel PEs).
    accelerator = OMUAccelerator(OMUConfig(resolution_m=descriptor.resolution_m))
    accelerator.process_scan_graph(graph, max_range=spec.max_range_m)
    print(f"Voxel updates processed: {accelerator.map_timing.voxel_updates}")
    print(f"Effective cycles per voxel update: {accelerator.map_cycles_per_update():.1f}")
    print(f"PE-array parallel speedup: {accelerator.map_parallel_speedup():.2f}x")

    # 3. Query the map (this is the service collision detection would use).
    for point in ((1.0, 0.0, 0.0), (0.0, 1.4, 0.3), (8.0, 8.0, 8.0)):
        result = accelerator.query(*point)
        probability = "-" if result.probability is None else f"{result.probability:.2f}"
        print(f"  voxel at {point}: {result.status:9s} (p={probability}, {result.cycles} cycles)")

    # 4. The accelerator must agree exactly with the software OctoMap library.
    report = verify_against_software(accelerator, graph, max_range=spec.max_range_m)
    print(report.summary())

    # 5. Memory statistics: pruning keeps the on-chip footprint small.
    stats = accelerator.statistics()
    print(
        f"Nodes stored: {stats.nodes_stored} "
        f"({100.0 * stats.memory_utilization:.1f}% of the 2 MB TreeMem), "
        f"prune-row reuse: {100.0 * stats.prune_reuse_fraction:.1f}%"
    )


if __name__ == "__main__":
    main()
