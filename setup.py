"""Package metadata and the ``repro-serve`` console entry point.

Install in editable mode for development::

    pip install -e .

Afterwards ``repro-serve`` drives a small multi-session demo of the
occupancy-mapping service layer (see :mod:`repro.serving.cli`).
"""

from setuptools import find_packages, setup

setup(
    name="omu-repro",
    version="1.3.0",
    description=(
        "Reproduction of 'OMU: A Probabilistic 3D Occupancy Mapping "
        "Accelerator for Real-time OctoMap at the Edge' (DATE 2022), grown "
        "into a multi-session occupancy-mapping service layer with "
        "pluggable shard execution backends (including socket-transport "
        "workers with live failover) and an asyncio admission front end"
    ),
    long_description=(
        "A from-scratch Python reproduction of the OMU occupancy-mapping "
        "accelerator (DATE 2022): the software OctoMap substrate, the "
        "cycle-approximate accelerator model, calibrated CPU baselines, "
        "energy/area models, the paper's tables and figures, and a "
        "multi-session mapping service layer (`repro.serving`) with sharded "
        "ingestion over pluggable execution backends (inline, thread pool, "
        "one process per shard, socket-transport workers with snapshots and "
        "live failover) and a cached query engine on top."
    ),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=[
        "numpy>=1.21",
    ],
    extras_require={
        # Everything CI's tier-1 + benchmark jobs need beyond install_requires.
        # pytest-asyncio is a convenience for asyncio-native test authoring;
        # the bundled async suite also runs without it (plain asyncio.run).
        "test": ["pytest", "hypothesis", "pytest-benchmark", "pytest-asyncio"],
        # CI's coverage job layers pytest-cov on top of the test extra.
        "cov": ["pytest-cov"],
        "lint": ["ruff"],
    },
    entry_points={
        "console_scripts": [
            "repro-serve=repro.serving.cli:main",
            "repro-serve-worker=repro.serving.remote.worker:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Topic :: System :: Hardware",
    ],
)
