"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
only so that legacy (non-PEP-517) editable installs work on machines without
the ``wheel`` package, e.g. ``pip install -e . --no-use-pep517``.
"""

from setuptools import setup

setup()
