"""OMU reproduction: probabilistic 3D occupancy mapping acceleration.

A from-scratch Python reproduction of *"OMU: A Probabilistic 3D Occupancy
Mapping Accelerator for Real-time OctoMap at the Edge"* (DATE 2022).  The
package is organised by subsystem:

* :mod:`repro.octomap` -- the software OctoMap substrate (octree, log-odds
  occupancy, ray casting, scan insertion) used both as the functional golden
  model and as the CPU baseline workload.
* :mod:`repro.core` -- the OMU accelerator model (PE array, banked TreeMem,
  prune address manager, voxel scheduler, query unit) at functional +
  cycle-approximate fidelity.
* :mod:`repro.datasets` -- synthetic stand-ins for the OctoMap 3D scan
  datasets, matched to the paper's Table II statistics.
* :mod:`repro.baselines` -- calibrated Intel i9 / ARM Cortex-A57 cost models
  and the instrumented software baseline runner.
* :mod:`repro.energy` -- 12 nm power / energy / area models.
* :mod:`repro.analysis` -- one experiment driver per paper table and figure,
  plus the service-level load experiments.
* :mod:`repro.serving` -- the multi-session occupancy-mapping *service*
  layer: named map sessions sharded over pools of accelerator workers,
  batched ingestion with pluggable scheduling (FIFO / priority / deadline),
  a generation-stamped cached query engine, and per-session service
  statistics.  This is the layer a fleet of robots (or a cloud mapping API)
  would talk to; the ``repro-serve`` console script demos it.

Quickstart (single map, the paper's workload)::

    from repro import OMUAccelerator, OMUConfig
    from repro.datasets import generate_named_graph

    descriptor, graph = generate_named_graph("FR-079 corridor", num_scans=3)
    accelerator = OMUAccelerator(OMUConfig(resolution_m=0.2))
    timing = accelerator.process_scan_graph(graph)
    print(timing.cycles_per_update(), accelerator.classify(1.0, 0.0, 1.2))

Quickstart (multi-session service)::

    from repro.serving import MapSessionManager, ScanRequest, SessionConfig

    manager = MapSessionManager(SessionConfig(num_shards=4))
    manager.ingest(ScanRequest.from_scan_node("warehouse", scan))
    print(manager.query("warehouse", 1.0, 0.0, 0.5).status)
    print(manager.render_stats())
"""

from repro.core import OMUAccelerator, OMUConfig
from repro.octomap import OccupancyOcTree, PointCloud, Pose6D, ScanGraph, ScanNode

__version__ = "1.2.0"

__all__ = [
    "OMUAccelerator",
    "OMUConfig",
    "OccupancyOcTree",
    "PointCloud",
    "Pose6D",
    "ScanGraph",
    "ScanNode",
    "__version__",
]
