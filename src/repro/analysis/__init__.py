"""Experiment drivers, metrics and table/figure rendering."""

from repro.analysis.experiments import (
    SCALES,
    DatasetEvaluation,
    ExperimentResult,
    clear_evaluation_cache,
    evaluate_dataset,
    figure3_cpu_breakdown,
    figure8_area,
    figure9_fr079,
    figure10_accelerator_breakdown,
    power_budget,
    table1_related_work,
    table2_dataset_details,
    table3_latency,
    table4_throughput,
    table5_energy,
)
from repro.analysis.metrics import (
    breakdown_as_percentages,
    energy_benefit,
    normalise_breakdown,
    relative_error,
    speedup,
)
from repro.analysis.service import (
    DEFAULT_SERVICE_CLIENTS,
    run_service_workload,
    service_scaling_experiment,
)
from repro.analysis.tables import format_quantity, render_bar_chart, render_table

__all__ = [
    "DEFAULT_SERVICE_CLIENTS",
    "SCALES",
    "DatasetEvaluation",
    "ExperimentResult",
    "breakdown_as_percentages",
    "clear_evaluation_cache",
    "energy_benefit",
    "evaluate_dataset",
    "figure3_cpu_breakdown",
    "figure8_area",
    "figure9_fr079",
    "figure10_accelerator_breakdown",
    "format_quantity",
    "normalise_breakdown",
    "power_budget",
    "relative_error",
    "render_bar_chart",
    "render_table",
    "run_service_workload",
    "service_scaling_experiment",
    "speedup",
    "table1_related_work",
    "table2_dataset_details",
    "table3_latency",
    "table4_throughput",
    "table5_energy",
]
