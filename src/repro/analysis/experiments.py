"""Experiment drivers: one function per table / figure of the paper.

Each driver returns structured data plus a rendered ASCII table or bar chart,
so the benchmark harness, the examples and EXPERIMENTS.md all quote the same
numbers.  The heavy lifting -- running the OMU cycle simulator and the
instrumented software baseline on scaled synthetic versions of the three
datasets -- is done once per (dataset, scale) pair by
:func:`evaluate_dataset` and cached for the rest of the process.

Extrapolation methodology (see DESIGN.md section 2): the scaled run measures
*intensities* (accelerator cycles per voxel update, CPU stage split per
operation counts); the full-size numbers of Tables III-V are those
intensities applied to the Table II catalog's total voxel-update counts --
the same construction the paper uses to turn dataset latency into
equivalent-frame FPS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.analysis.metrics import energy_benefit, normalise_breakdown, speedup
from repro.analysis.tables import render_bar_chart, render_table
from repro.baselines.cpu_model import A57_COST_MODEL, I9_COST_MODEL
from repro.baselines.sw_runner import SoftwareRunResult, run_software_octomap
from repro.core.accelerator import OMUAccelerator
from repro.core.config import DEFAULT_CONFIG, OMUConfig
from repro.datasets.catalog import ALL_DATASETS, DatasetDescriptor, dataset_by_name
from repro.datasets.generator import GenerationSpec, generate_scan_graph
from repro.energy.area_model import AreaModel
from repro.energy.power_model import PowerModel, PowerReport
from repro.octomap.counters import OperationKind
from repro.octomap.pointcloud import ScanGraph

__all__ = [
    "SCALES",
    "DatasetEvaluation",
    "ExperimentResult",
    "evaluate_dataset",
    "clear_evaluation_cache",
    "table1_related_work",
    "table2_dataset_details",
    "table3_latency",
    "table4_throughput",
    "table5_energy",
    "figure3_cpu_breakdown",
    "figure9_fr079",
    "figure10_accelerator_breakdown",
    "figure8_area",
    "power_budget",
]


SCALES: Mapping[str, Mapping[str, GenerationSpec]] = {
    # Tiny workloads for unit / integration tests (seconds in total).
    "smoke": {
        "corridor": GenerationSpec(num_scans=2, beams_azimuth=72, beams_elevation=3, max_range_m=12.0),
        "campus": GenerationSpec(num_scans=2, beams_azimuth=60, beams_elevation=3, max_range_m=15.0),
        "college": GenerationSpec(num_scans=3, beams_azimuth=48, beams_elevation=2, max_range_m=15.0),
    },
    # Default benchmark scale: a few tens of thousands of voxel updates per
    # dataset, enough for stable cycle-per-update and breakdown estimates
    # while the scaled map still fits the paper's 256 kB-per-PE TreeMem.
    "default": {
        "corridor": GenerationSpec(num_scans=4, beams_azimuth=144, beams_elevation=4, max_range_m=15.0),
        "campus": GenerationSpec(num_scans=4, beams_azimuth=96, beams_elevation=3, max_range_m=15.0),
        "college": GenerationSpec(num_scans=6, beams_azimuth=80, beams_elevation=3, max_range_m=15.0),
    },
}
"""Named workload scales for the scaled synthetic datasets."""


@dataclass
class DatasetEvaluation:
    """Everything measured for one dataset at one scale.

    Attributes:
        descriptor: the Table II catalog entry.
        graph_statistics: scan/point statistics of the scaled synthetic graph.
        scaled_voxel_updates: leaf updates performed in the scaled run.
        omu_cycles_per_update: effective accelerator cycles per voxel update
            (critical path over the whole scaled run divided by updates).
        omu_parallel_speedup: PE-array work / critical-path ratio achieved.
        omu_breakdown: accelerator runtime share per pipeline stage (Fig. 10).
        omu_latency_s / omu_fps: extrapolated to the full-size dataset.
        omu_power: power report at the run's measured activity.
        omu_energy_j: full-size energy (power x extrapolated latency).
        cpu_breakdown: software-baseline runtime share per stage, derived from
            the instrumented run's operation counters (Fig. 3).
        i9_latency_s / a57_latency_s (+fps/energy): calibrated CPU estimates.
        equivalence_ok: whether the accelerator map matched the software map.
    """

    descriptor: DatasetDescriptor
    graph_statistics: Mapping[str, object]
    scaled_voxel_updates: int
    omu_cycles_per_update: float
    omu_parallel_speedup: float
    omu_breakdown: Mapping[OperationKind, float]
    omu_latency_s: float
    omu_fps: float
    omu_power: PowerReport
    omu_energy_j: float
    cpu_breakdown: Mapping[OperationKind, float]
    i9_latency_s: float
    i9_fps: float
    a57_latency_s: float
    a57_fps: float
    a57_energy_j: float
    equivalence_ok: Optional[bool] = None
    memory_utilization: float = 0.0
    prune_reuse_fraction: float = 0.0


@dataclass
class ExperimentResult:
    """A reproduced table or figure: identifier, rows and rendered text."""

    experiment_id: str
    title: str
    headers: Tuple[str, ...]
    rows: List[Tuple[object, ...]] = field(default_factory=list)
    rendered: str = ""
    notes: str = ""

    def records(self) -> List[Dict[str, object]]:
        """The rows as self-describing header -> value mappings, so consumers
        (the benchmark JSON, CI tooling, tests) can read each measurement's
        fields by name instead of by column position."""
        return [dict(zip(self.headers, row)) for row in self.rows]

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.rendered


_EVALUATION_CACHE: Dict[Tuple[str, str, int], DatasetEvaluation] = {}


def clear_evaluation_cache() -> None:
    """Drop all cached dataset evaluations (used by tests)."""
    _EVALUATION_CACHE.clear()


def _spec_for(descriptor: DatasetDescriptor, scale: str) -> GenerationSpec:
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; valid scales: {sorted(SCALES)}")
    return SCALES[scale][descriptor.scene]


def evaluate_dataset(
    name: str,
    scale: str = "default",
    config: OMUConfig = DEFAULT_CONFIG,
    check_equivalence: bool = False,
) -> DatasetEvaluation:
    """Run the scaled workload of one dataset on the OMU model and baselines.

    Results are cached per ``(dataset, scale, num_pes)`` for the lifetime of
    the process, because several tables reuse the same evaluation.
    """
    descriptor = dataset_by_name(name)
    cache_key = (descriptor.name, scale, config.num_pes)
    if cache_key in _EVALUATION_CACHE and not check_equivalence:
        return _EVALUATION_CACHE[cache_key]

    spec = _spec_for(descriptor, scale)
    graph = generate_scan_graph(descriptor, spec)
    evaluation = _evaluate_graph(descriptor, graph, spec, config, check_equivalence)
    _EVALUATION_CACHE[cache_key] = evaluation
    return evaluation


def _evaluate_graph(
    descriptor: DatasetDescriptor,
    graph: ScanGraph,
    spec: GenerationSpec,
    config: OMUConfig,
    check_equivalence: bool,
) -> DatasetEvaluation:
    # Use the dataset's evaluation resolution on the accelerator.
    if abs(config.resolution_m - descriptor.resolution_m) > 1e-12:
        config = config.with_resolution(descriptor.resolution_m)

    # --- accelerator run -------------------------------------------------
    accelerator = OMUAccelerator(config)
    timing = accelerator.process_scan_graph(graph, max_range=spec.max_range_m)
    statistics = accelerator.statistics()
    cycles_per_update = accelerator.map_cycles_per_update()
    omu_latency = descriptor.voxel_updates_total * cycles_per_update / config.clock_hz
    power_model = PowerModel(config)
    omu_power = power_model.power_from_statistics(statistics)
    omu_energy = power_model.energy_joules(omu_power, omu_latency)

    # --- software baseline run (for the CPU breakdown) -------------------
    software: SoftwareRunResult = run_software_octomap(
        graph, descriptor.resolution_m, max_range=spec.max_range_m
    )
    cpu_breakdown = I9_COST_MODEL.breakdown_from_counters(software.counters)

    # --- CPU cost-model estimates (full-size datasets) --------------------
    i9 = I9_COST_MODEL.estimate(descriptor, breakdown=cpu_breakdown)
    a57 = A57_COST_MODEL.estimate(descriptor, breakdown=cpu_breakdown)

    equivalence_ok: Optional[bool] = None
    if check_equivalence:
        from repro.core.verification import verify_against_software

        equivalence_ok = verify_against_software(accelerator, graph, max_range=spec.max_range_m).equivalent

    return DatasetEvaluation(
        descriptor=descriptor,
        graph_statistics=graph.statistics(),
        scaled_voxel_updates=timing.voxel_updates,
        omu_cycles_per_update=cycles_per_update,
        omu_parallel_speedup=accelerator.map_parallel_speedup(),
        omu_breakdown=normalise_breakdown(timing.breakdown.fractions()),
        omu_latency_s=omu_latency,
        omu_fps=descriptor.fps_from_latency(omu_latency),
        omu_power=omu_power,
        omu_energy_j=omu_energy,
        cpu_breakdown=cpu_breakdown,
        i9_latency_s=i9.latency_s,
        i9_fps=i9.fps,
        a57_latency_s=a57.latency_s,
        a57_fps=a57.fps,
        a57_energy_j=a57.energy_j if a57.energy_j is not None else 0.0,
        equivalence_ok=equivalence_ok,
        memory_utilization=statistics.memory_utilization,
        prune_reuse_fraction=statistics.prune_reuse_fraction,
    )


def _evaluate_all(scale: str, config: OMUConfig) -> List[DatasetEvaluation]:
    return [evaluate_dataset(descriptor.name, scale=scale, config=config) for descriptor in ALL_DATASETS]


# ---------------------------------------------------------------------------
# Table I -- qualitative comparison of mapping accelerators
# ---------------------------------------------------------------------------
def table1_related_work() -> ExperimentResult:
    """Reproduce Table I (feature comparison of mapping accelerators)."""
    headers = ("Accelerator", "Dense map", "Probabilistic", "Real-time")
    rows = [
        ("Dadu-P (DAC'18)", True, False, False),
        ("Dadu-CD (DAC'20)", True, False, False),
        ("Navion (VLSI'18)", False, False, True),
        ("CNN-SLAM (ISSCC'19)", False, False, True),
        ("This work (OMU)", True, True, True),
    ]
    result = ExperimentResult(
        experiment_id="table1",
        title="Table I: comparison of mapping accelerators",
        headers=headers,
        rows=[tuple(row) for row in rows],
    )
    result.rendered = render_table(result.title, headers, rows)
    result.notes = (
        "Qualitative feature matrix transcribed from the paper's related-work "
        "analysis; OMU is the only dense, probabilistic and real-time design."
    )
    return result


# ---------------------------------------------------------------------------
# Table II -- dataset details and i9 baseline
# ---------------------------------------------------------------------------
def table2_dataset_details(scale: str = "default", config: OMUConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """Reproduce Table II (dataset statistics and i9 CPU latency/throughput)."""
    headers = (
        "Dataset",
        "Scans",
        "Avg points/scan",
        "Point cloud (x1e6)",
        "Voxel updates (x1e6)",
        "i9 latency (s) [model]",
        "i9 latency (s) [paper]",
        "i9 FPS [model]",
        "i9 FPS [paper]",
    )
    rows: List[Tuple[object, ...]] = []
    for descriptor in ALL_DATASETS:
        evaluation = evaluate_dataset(descriptor.name, scale=scale, config=config)
        rows.append(
            (
                descriptor.name,
                descriptor.scan_number,
                descriptor.average_points_per_scan,
                descriptor.point_cloud_total / 1e6,
                descriptor.voxel_updates_total / 1e6,
                evaluation.i9_latency_s,
                descriptor.paper.i9_latency_s,
                evaluation.i9_fps,
                descriptor.paper.i9_fps,
            )
        )
    result = ExperimentResult(
        experiment_id="table2",
        title="Table II: OctoMap 3D scan dataset details (0.2 m resolution)",
        headers=headers,
        rows=rows,
    )
    result.rendered = render_table(result.title, headers, rows)
    result.notes = (
        "Dataset statistics come from the catalog (they define the synthetic "
        "workloads); the i9 columns compare the calibrated cost model against "
        "the paper's measurements."
    )
    return result


# ---------------------------------------------------------------------------
# Tables III / IV / V -- latency, throughput, energy
# ---------------------------------------------------------------------------
def table3_latency(scale: str = "default", config: OMUConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """Reproduce Table III (latency in seconds and speed-ups)."""
    headers = (
        "Dataset",
        "i9 (s)",
        "A57 (s)",
        "OMU (s)",
        "OMU (s) [paper]",
        "Speedup over i9",
        "Speedup i9 [paper]",
        "Speedup over A57",
        "Speedup A57 [paper]",
    )
    rows: List[Tuple[object, ...]] = []
    for descriptor in ALL_DATASETS:
        evaluation = evaluate_dataset(descriptor.name, scale=scale, config=config)
        rows.append(
            (
                descriptor.name,
                evaluation.i9_latency_s,
                evaluation.a57_latency_s,
                evaluation.omu_latency_s,
                descriptor.paper.omu_latency_s,
                speedup(evaluation.i9_latency_s, evaluation.omu_latency_s),
                descriptor.paper.speedup_over_i9,
                speedup(evaluation.a57_latency_s, evaluation.omu_latency_s),
                descriptor.paper.speedup_over_a57,
            )
        )
    result = ExperimentResult(
        experiment_id="table3",
        title="Table III: latency performance (s) comparison",
        headers=headers,
        rows=rows,
    )
    result.rendered = render_table(result.title, headers, rows)
    return result


def table4_throughput(scale: str = "default", config: OMUConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """Reproduce Table IV (throughput in equivalent frames per second)."""
    headers = (
        "Dataset",
        "i9 FPS",
        "A57 FPS",
        "OMU FPS",
        "i9 FPS [paper]",
        "A57 FPS [paper]",
        "OMU FPS [paper]",
        "OMU real-time (>30 FPS)",
    )
    rows: List[Tuple[object, ...]] = []
    for descriptor in ALL_DATASETS:
        evaluation = evaluate_dataset(descriptor.name, scale=scale, config=config)
        rows.append(
            (
                descriptor.name,
                evaluation.i9_fps,
                evaluation.a57_fps,
                evaluation.omu_fps,
                descriptor.paper.i9_fps,
                descriptor.paper.a57_fps,
                descriptor.paper.omu_fps,
                evaluation.omu_fps > 30.0,
            )
        )
    result = ExperimentResult(
        experiment_id="table4",
        title="Table IV: throughput performance (FPS) comparison",
        headers=headers,
        rows=rows,
    )
    result.rendered = render_table(result.title, headers, rows)
    return result


def table5_energy(scale: str = "default", config: OMUConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """Reproduce Table V (energy in joules and the energy benefit)."""
    headers = (
        "Dataset",
        "A57 energy (J)",
        "OMU energy (J)",
        "A57 (J) [paper]",
        "OMU (J) [paper]",
        "Energy benefit",
        "Energy benefit [paper]",
    )
    rows: List[Tuple[object, ...]] = []
    for descriptor in ALL_DATASETS:
        evaluation = evaluate_dataset(descriptor.name, scale=scale, config=config)
        rows.append(
            (
                descriptor.name,
                evaluation.a57_energy_j,
                evaluation.omu_energy_j,
                descriptor.paper.a57_energy_j,
                descriptor.paper.omu_energy_j,
                energy_benefit(evaluation.a57_energy_j, evaluation.omu_energy_j),
                descriptor.paper.energy_benefit,
            )
        )
    result = ExperimentResult(
        experiment_id="table5",
        title="Table V: energy consumption (J) comparison (A57 vs OMU)",
        headers=headers,
        rows=rows,
    )
    result.rendered = render_table(result.title, headers, rows)
    return result


# ---------------------------------------------------------------------------
# Fig. 3 / Fig. 10 -- runtime breakdowns
# ---------------------------------------------------------------------------
_STAGE_LABELS = {
    OperationKind.RAY_CASTING: "Ray casting",
    OperationKind.UPDATE_LEAF: "Update leaf",
    OperationKind.UPDATE_PARENTS: "Update parents",
    OperationKind.PRUNE_EXPAND: "Node prune/expand",
}


def figure3_cpu_breakdown(scale: str = "default", config: OMUConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """Reproduce Fig. 3 (CPU runtime breakdown per dataset)."""
    headers = ("Dataset",) + tuple(_STAGE_LABELS[stage] + " (%)" for stage in OperationKind.ordered()) + (
        "Prune/expand (%) [paper]",
    )
    rows: List[Tuple[object, ...]] = []
    charts: List[str] = []
    for descriptor in ALL_DATASETS:
        evaluation = evaluate_dataset(descriptor.name, scale=scale, config=config)
        percentages = {stage: 100.0 * value for stage, value in evaluation.cpu_breakdown.items()}
        rows.append(
            (descriptor.name,)
            + tuple(percentages[stage] for stage in OperationKind.ordered())
            + (100.0 * descriptor.paper.cpu_breakdown[3],)
        )
        charts.append(
            render_bar_chart(
                f"Fig. 3 ({descriptor.name}): CPU runtime breakdown (%)",
                {_STAGE_LABELS[stage]: percentages[stage] for stage in OperationKind.ordered()},
                unit="%",
            )
        )
    result = ExperimentResult(
        experiment_id="figure3",
        title="Fig. 3: runtime breakdown of the software OctoMap baseline",
        headers=headers,
        rows=rows,
    )
    result.rendered = render_table(result.title, headers, rows) + "\n\n" + "\n\n".join(charts)
    result.notes = (
        "The split is derived from operation counters measured on the scaled "
        "synthetic workloads; the paper's key observation -- node prune/expand "
        "dominates the CPU runtime -- must hold."
    )
    return result


def figure10_accelerator_breakdown(scale: str = "default", config: OMUConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """Reproduce Fig. 10 (runtime breakdown: i9 CPU vs OMU accelerator)."""
    headers = ("Dataset", "Backend") + tuple(
        _STAGE_LABELS[stage] + " (%)" for stage in OperationKind.ordered()
    )
    rows: List[Tuple[object, ...]] = []
    for descriptor in ALL_DATASETS:
        evaluation = evaluate_dataset(descriptor.name, scale=scale, config=config)
        cpu = {stage: 100.0 * value for stage, value in evaluation.cpu_breakdown.items()}
        omu = {stage: 100.0 * value for stage, value in evaluation.omu_breakdown.items()}
        rows.append(
            (descriptor.name, "i9 CPU") + tuple(cpu[stage] for stage in OperationKind.ordered())
        )
        rows.append(
            (descriptor.name, "OMU") + tuple(omu[stage] for stage in OperationKind.ordered())
        )
    result = ExperimentResult(
        experiment_id="figure10",
        title="Fig. 10: runtime breakdown on the i9 CPU vs the OMU accelerator",
        headers=headers,
        rows=rows,
    )
    result.rendered = render_table(result.title, headers, rows)
    result.notes = (
        "On the accelerator the prune/expand share must drop below ~20 % "
        "because all eight children are fetched in one banked access."
    )
    return result


# ---------------------------------------------------------------------------
# Fig. 9 -- FR-079 latency / throughput bars
# ---------------------------------------------------------------------------
def figure9_fr079(scale: str = "default", config: OMUConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """Reproduce Fig. 9 (FR-079 corridor latency and throughput bars)."""
    evaluation = evaluate_dataset("FR-079 corridor", scale=scale, config=config)
    descriptor = evaluation.descriptor
    headers = ("Platform", "Latency (s)", "Throughput (FPS)", "Latency [paper]", "FPS [paper]")
    rows = [
        ("Arm A57 CPU", evaluation.a57_latency_s, evaluation.a57_fps, descriptor.paper.a57_latency_s, descriptor.paper.a57_fps),
        ("Intel i9 CPU", evaluation.i9_latency_s, evaluation.i9_fps, descriptor.paper.i9_latency_s, descriptor.paper.i9_fps),
        ("OMU accelerator", evaluation.omu_latency_s, evaluation.omu_fps, descriptor.paper.omu_latency_s, descriptor.paper.omu_fps),
    ]
    latency_chart = render_bar_chart(
        "Fig. 9(a): FR-079 corridor latency (s)",
        {str(row[0]): float(row[1]) for row in rows},
        unit=" s",
    )
    throughput_chart = render_bar_chart(
        "Fig. 9(b): FR-079 corridor throughput (FPS); real-time = 30 FPS",
        {str(row[0]): float(row[2]) for row in rows},
        unit=" FPS",
    )
    result = ExperimentResult(
        experiment_id="figure9",
        title="Fig. 9: latency and throughput on FR-079 corridor",
        headers=headers,
        rows=[tuple(row) for row in rows],
    )
    result.rendered = "\n\n".join(
        [render_table(result.title, headers, rows), latency_chart, throughput_chart]
    )
    return result


# ---------------------------------------------------------------------------
# Fig. 8 -- area, and the Section VI-C power budget
# ---------------------------------------------------------------------------
def figure8_area(config: OMUConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """Reproduce Fig. 8 (layout area of the 8-PE accelerator in 12 nm)."""
    model = AreaModel(config)
    report = model.report()
    width, height = model.layout_mm()
    headers = ("Component", "Area (mm^2)")
    rows = [
        ("PE SRAM (8 x 256 kB)", report.sram_mm2),
        ("PE logic", report.pe_logic_mm2),
        ("Front end (ray casting, scheduler, query, AXI)", report.frontend_mm2),
        ("Total", report.total_mm2),
        ("Paper total", 2.5),
    ]
    result = ExperimentResult(
        experiment_id="figure8",
        title=f"Fig. 8: OMU layout area ({width} mm x {height} mm outline, 12 nm)",
        headers=headers,
        rows=[tuple(row) for row in rows],
    )
    result.rendered = render_table(result.title, headers, rows, precision=3)
    return result


def power_budget(config: OMUConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """Reproduce the Section VI-C power numbers (250.8 mW, 91 % SRAM)."""
    model = PowerModel(config)
    report = model.nominal_power()
    headers = ("Quantity", "Model", "Paper")
    rows = [
        ("Total power (mW)", report.total_w * 1e3, 250.8),
        ("SRAM share (%)", report.sram_fraction * 100.0, 91.0),
        ("Clock (GHz)", config.clock_hz / 1e9, 1.0),
        ("Supply (V)", config.voltage_v, 0.8),
    ]
    result = ExperimentResult(
        experiment_id="power",
        title="Section VI-C: accelerator power at the nominal mapping activity",
        headers=headers,
        rows=[tuple(row) for row in rows],
    )
    result.rendered = render_table(result.title, headers, rows, precision=1)
    return result
