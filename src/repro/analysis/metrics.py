"""Derived metrics shared by the experiment drivers.

Small, well-named helpers for the quantities the paper reports: speed-ups,
equivalent-frame throughput, energy benefit and breakdown normalisation.
Keeping them in one place means every table computes "the same FPS" the same
way.
"""

from __future__ import annotations

from typing import Mapping

from repro.octomap.counters import OperationKind

__all__ = [
    "speedup",
    "energy_benefit",
    "normalise_breakdown",
    "breakdown_as_percentages",
    "relative_error",
]


def speedup(baseline_latency_s: float, accelerated_latency_s: float) -> float:
    """Baseline latency divided by accelerated latency (``>1`` is faster).

    Raises:
        ValueError: if either latency is not positive.
    """
    if baseline_latency_s <= 0 or accelerated_latency_s <= 0:
        raise ValueError("latencies must be positive")
    return baseline_latency_s / accelerated_latency_s


def energy_benefit(baseline_energy_j: float, accelerated_energy_j: float) -> float:
    """Baseline energy divided by accelerated energy (Table V's metric)."""
    if baseline_energy_j <= 0 or accelerated_energy_j <= 0:
        raise ValueError("energies must be positive")
    return baseline_energy_j / accelerated_energy_j


def normalise_breakdown(breakdown: Mapping[OperationKind, float]) -> Mapping[OperationKind, float]:
    """Rescale a per-stage breakdown so the stages sum to 1.0.

    Missing stages are treated as zero; an all-zero breakdown stays all-zero.
    """
    total = sum(breakdown.get(stage, 0.0) for stage in OperationKind.ordered())
    if total == 0:
        return {stage: 0.0 for stage in OperationKind.ordered()}
    return {stage: breakdown.get(stage, 0.0) / total for stage in OperationKind.ordered()}


def breakdown_as_percentages(breakdown: Mapping[OperationKind, float]) -> Mapping[OperationKind, float]:
    """Normalised breakdown expressed in percent (what Figs. 3 and 10 plot)."""
    return {stage: 100.0 * value for stage, value in normalise_breakdown(breakdown).items()}


def relative_error(measured: float, reference: float) -> float:
    """Relative deviation of a measured value from the paper's reference.

    Raises:
        ValueError: if the reference is zero.
    """
    if reference == 0:
        raise ValueError("reference value must be non-zero")
    return (measured - reference) / reference
