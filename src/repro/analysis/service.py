"""Service-level experiments: the serving layer under multi-client load.

The paper's tables characterise one accelerator on one dataset; this driver
characterises the *service* built on top of it: several sessions ingesting an
interleaved multi-client stream, swept over scheduler policies, shard counts,
the pluggable execution backends, and -- since ingestion gained a
double-buffered mode -- over blocking vs pipelined fan-out.  Reported per
configuration:

* dispatched voxel updates and the overlapping-ray de-dup saving,
* modelled hardware ingestion latency (slowest-shard critical path summed
  over batches) and the resulting update throughput,
* host-side wall-clock ingest throughput, backend fan-out share and
  front-end overlap ratio (the quantities the process backend and the
  pipelined double-buffered mode exist to improve),
* query-cache hit rate after a fixed warm-up + repeat query pattern.

Like every other driver it returns an :class:`ExperimentResult` whose
``rendered`` field is a ready-to-print ASCII table;
:func:`write_benchmark_json` additionally emits the machine-readable
``BENCH_serving.json`` that CI archives per PR, and ``python -m
repro.analysis.service`` runs the whole sweep from the command line.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.experiments import ExperimentResult
from repro.analysis.tables import render_table
from repro.datasets.streams import (
    ClientSpec,
    generate_client_scans,
    generate_interleaved_stream,
    poisson_arrival_times,
)

# NOTE: repro.serving is imported lazily inside the drivers.  The serving
# stats layer renders through repro.analysis.tables, so a module-level import
# here would close an import cycle through the two packages' __init__ files.

__all__ = [
    "DEFAULT_BENCH_CLIENTS",
    "DEFAULT_SERVICE_CLIENTS",
    "backend_scaling_experiment",
    "frontend_scaling_experiment",
    "frontend_vectorized_experiment",
    "http_frontend_experiment",
    "kill_recovery_experiment",
    "main",
    "metrics_overhead_experiment",
    "run_async_service_workload",
    "run_service_workload",
    "service_scaling_experiment",
    "session_scaling_experiment",
    "write_benchmark_json",
]


DEFAULT_SERVICE_CLIENTS: Tuple[ClientSpec, ...] = (
    ClientSpec(client_id="drone-a", session_id="corridor-map", scene="corridor", num_scans=2, priority=2),
    ClientSpec(client_id="drone-b", session_id="corridor-map", scene="corridor", num_scans=2, priority=1),
    ClientSpec(client_id="rover", session_id="campus-map", scene="campus", num_scans=2, priority=0),
)
"""A small three-client / two-session workload used by the default sweep."""


DEFAULT_BENCH_CLIENTS: Tuple[ClientSpec, ...] = (
    ClientSpec(client_id="drone-a", session_id="corridor-map", scene="corridor", num_scans=6, priority=2),
    ClientSpec(client_id="drone-b", session_id="corridor-map", scene="corridor", num_scans=6, priority=1),
)
"""The backend benchmark's default workload: one session, enough scans that
per-shard apply work dominates fan-out overhead (what the process backend is
built for)."""


_QUERY_PATTERN: Tuple[Tuple[float, float, float], ...] = (
    (1.0, 0.0, 0.0),
    (0.0, 1.2, 0.2),
    (2.0, -0.8, 0.4),
    (-1.5, 0.5, 0.0),
)


def run_service_workload(
    clients: Sequence[ClientSpec] = DEFAULT_SERVICE_CLIENTS,
    scheduler_policy: str = "fifo",
    num_shards: int = 2,
    batch_size: int = 4,
    resolution_m: float = 0.2,
    seed: int = 0,
    query_rounds: int = 3,
    backend: str = "inline",
    pipelined: bool = False,
    metrics=None,
    scalar_frontend: bool = False,
):
    """Drive one configuration and return the manager (stats inside).

    Callers that pick a pool ``backend`` own the worker processes/threads;
    call ``manager.shutdown()`` (or use the manager as a context manager)
    once done with the returned object.  ``metrics`` (a
    :class:`~repro.serving.metrics.MetricsStore`, possibly with
    ``enabled=False``) replaces the manager's default store -- the knob the
    instrumentation-overhead experiment sweeps.
    """
    from repro.serving.manager import MapSessionManager
    from repro.serving.session import SessionConfig
    from repro.serving.types import ScanRequest

    config = SessionConfig(
        num_shards=num_shards,
        scheduler_policy=scheduler_policy,
        batch_size=batch_size,
        backend=backend,
        pipelined=pipelined,
        scalar_frontend=scalar_frontend,
    ).with_resolution(resolution_m)
    manager = MapSessionManager(default_config=config, metrics=metrics)
    try:
        for event in generate_interleaved_stream(clients, seed=seed):
            manager.submit(
                ScanRequest.from_scan_node(
                    event.session_id,
                    event.scan,
                    max_range=event.max_range_m,
                    priority=event.priority,
                    client_id=event.client_id,
                )
            )
        manager.flush_all()
        for _ in range(query_rounds):
            for session_id in manager.session_ids():
                for point in _QUERY_PATTERN:
                    manager.query(session_id, *point)
    except BaseException:
        # The caller only owns the worker pool once the manager is returned;
        # a failure while driving the workload must not leak shard processes.
        manager.shutdown()
        raise
    return manager


def run_async_service_workload(
    clients: Sequence[ClientSpec] = DEFAULT_SERVICE_CLIENTS,
    num_shards: int = 2,
    batch_size: int = 4,
    resolution_m: float = 0.2,
    seed: int = 0,
    backend: str = "inline",
    pipelined: bool = False,
    queue_limit: int = 8,
    query_rounds: int = 0,
):
    """Drive one configuration through the asyncio admission front end.

    Every client becomes its own submitter coroutine; the service's flusher
    tasks ingest concurrently off the event loop.  Returns ``(manager,
    admit_latencies)`` where ``admit_latencies`` holds every submit's
    admission latency in seconds (the time :meth:`AsyncMapService.submit`
    held the caller -- including any backpressure wait on a full admission
    queue).  The service is closed before returning, so the manager's
    execution backends are already released; its stats remain readable.
    """
    import asyncio

    from repro.serving.aio import AsyncMapService, submit_interleaved_stream
    from repro.serving.manager import MapSessionManager
    from repro.serving.session import SessionConfig

    config = SessionConfig(
        num_shards=num_shards,
        batch_size=batch_size,
        backend=backend,
        pipelined=pipelined,
    ).with_resolution(resolution_m)
    manager = MapSessionManager(default_config=config)
    events = generate_interleaved_stream(clients, seed=seed)
    admit_latencies: List[float] = []

    async def drive() -> None:
        async with AsyncMapService(manager, queue_limit=queue_limit) as service:
            # Eager creation: process-backend workers fork before executor
            # threads exist (see the repro.serving.aio module docstring).
            for event in events:
                service.get_or_create_session(event.session_id)
            await submit_interleaved_stream(
                service,
                events,
                on_receipt=lambda event, receipt, seconds: admit_latencies.append(seconds),
            )
            await service.flush_all()
            for _ in range(query_rounds):
                for session_id in manager.session_ids():
                    for point in _QUERY_PATTERN:
                        await service.query(session_id, *point)

    asyncio.run(drive())
    return manager, admit_latencies


def frontend_scaling_experiment(
    client_counts: Sequence[int] = (1, 2, 4),
    scans_per_client: int = 2,
    backend: str = "inline",
    num_shards: int = 2,
    batch_size: int = 2,
    seed: int = 0,
    queue_limit: int = 4,
) -> ExperimentResult:
    """Sweep the admission front end (sync vs async) over client counts.

    The dimension the asyncio front end exists for: all clients write *one*
    session, so admission contention is maximal.  Both front ends coalesce
    identical batches.  The synchronous rows drive the blocking front door
    (submit per arrival, flush on the caller at every batch boundary: the
    submitter that trips the boundary is held for the whole ray cast plus
    shard apply); the async rows run one submitter coroutine per client
    against the bounded admission queue with background flusher ingestion.
    "Admit" latency is the time a client was held per request -- the sync
    front end's spikes to a full batch ingest at every boundary (see "Max
    admit"), the async front end's collapses to queue admission (plus
    metered backpressure waits once the queue fills, which the
    waits/rejects columns report).
    """
    import time

    from repro.serving.manager import MapSessionManager
    from repro.serving.session import SessionConfig
    from repro.serving.types import ScanRequest

    headers = (
        "Front end",
        "Clients",
        "Scans",
        "Updates",
        "Mean admit (ms)",
        "Max admit (ms)",
        "Waits",
        "Wait (s)",
        "Rejects",
        "Ingest wall (s)",
        "Updates/s (wall)",
    )
    rows: List[Tuple[object, ...]] = []
    for count in client_counts:
        clients = tuple(
            ClientSpec(
                client_id=f"client-{index}",
                session_id="bench-map",
                scene="corridor",
                num_scans=scans_per_client,
            )
            for index in range(count)
        )

        # --- synchronous front door: admission blocks at batch bounds ---
        # Drive the sync path the way a deployed front door batches: submit
        # per arrival, flush whenever batch_size requests are pending.  The
        # client whose submit trips the batch boundary absorbs the whole
        # flush (ray cast + shard apply) in its admit latency -- the exact
        # head-of-line blocking the async front end exists to remove; the
        # other submits stay queue-only, so the comparison batches apples
        # to apples.
        config = SessionConfig(
            num_shards=num_shards, batch_size=batch_size, backend=backend
        ).with_resolution(0.2)
        manager = MapSessionManager(default_config=config)
        sync_latencies: List[float] = []
        try:
            for event in generate_interleaved_stream(clients, seed=seed):
                request = ScanRequest.from_scan_node(
                    event.session_id,
                    event.scan,
                    max_range=event.max_range_m,
                    client_id=event.client_id,
                )
                started = time.perf_counter()
                manager.submit(request)
                if manager.pending_requests() >= batch_size:
                    manager.flush(request.session_id)
                sync_latencies.append(time.perf_counter() - started)
            manager.flush_all()  # residual tail, not charged to any client
        finally:
            manager.shutdown()
        rows.append(_frontend_row("sync", count, manager, sync_latencies))

        # --- asyncio front end: admission == queueing -------------------
        async_manager, async_latencies = run_async_service_workload(
            clients,
            num_shards=num_shards,
            batch_size=batch_size,
            seed=seed,
            backend=backend,
            queue_limit=queue_limit,
        )
        rows.append(_frontend_row("async", count, async_manager, async_latencies))

    result = ExperimentResult(
        experiment_id="frontend_scaling",
        title="Serving layer: admission front end (sync vs async) x client count",
        headers=headers,
        rows=rows,
    )
    result.rendered = render_table(result.title, headers, rows)
    result.notes = (
        "All clients write one session.  'Admit' is the per-request latency "
        "the front end held the client.  Both front ends coalesce the same "
        f"batch size ({batch_size}): "
        "the sync front door flushes on the caller whenever batch_size "
        "requests are pending, so the submitter that trips the boundary "
        "absorbs the whole ray cast + shard apply -- head-of-line blocking "
        "visible in 'Max admit'; the asyncio front end admits into a "
        f"bounded per-session queue (depth {queue_limit} here) and ingests "
        "on background flusher tasks, so admission stays flat as clients "
        "are added and backpressure is explicit (waits / rejects) instead "
        "of unbounded queue growth."
    )
    return result


def _frontend_row(
    frontend: str, client_count: int, manager, latencies: Sequence[float]
) -> Tuple[object, ...]:
    """One row of the front-end sweep from a driven manager's stats."""
    stats = list(manager.service_stats)
    updates = manager.service_stats.total_voxel_updates()
    wall = sum(block.ingest_wall_seconds for block in stats)
    return (
        frontend,
        client_count,
        sum(block.scans_ingested for block in stats),
        updates,
        1e3 * (sum(latencies) / len(latencies) if latencies else 0.0),
        1e3 * max(latencies, default=0.0),
        sum(block.admission_waits for block in stats),
        sum(block.admission_wait_seconds for block in stats),
        sum(block.queue_rejects for block in stats),
        wall,
        updates / wall if wall > 0 else 0.0,
    )


def http_frontend_experiment(
    client_counts: Sequence[int] = (1, 2),
    scans_per_client: int = 2,
    num_shards: int = 2,
    batch_size: int = 2,
    seed: int = 0,
    queue_limit: int = 8,
) -> ExperimentResult:
    """Price the network hop: in-process async admission vs HTTP-over-localhost.

    Same workload, same :class:`~repro.serving.aio.AsyncMapService`
    underneath -- the only difference per row pair is whether a submit is an
    awaited coroutine call or a full HTTP request (connection, JSON codec,
    framing, loopback round trip) against :class:`~repro.serving.http.
    server.HttpMapServer`.  The gap between the two "Mean admit" columns is
    therefore the per-request cost of the REST front end, the number a
    deployment weighs against the isolation it buys.  The HTTP client opens
    one connection per request on purpose: that is the honest worst case,
    and what the correctness tests drive.
    """
    import asyncio
    import time

    from repro.serving.aio import AsyncMapService
    from repro.serving.http.client import MapServiceClient
    from repro.serving.http.server import HttpMapServer
    from repro.serving.session import SessionConfig

    headers = (
        "Transport",
        "Clients",
        "Scans",
        "Updates",
        "Mean admit (ms)",
        "p99-ish admit (ms)",
        "Max admit (ms)",
        "Submit wall (s)",
    )
    rows: List[Tuple[object, ...]] = []
    for count in client_counts:
        clients = tuple(
            ClientSpec(
                client_id=f"client-{index}",
                session_id="bench-map",
                scene="corridor",
                num_scans=scans_per_client,
            )
            for index in range(count)
        )

        # --- in-process asyncio front end (no network) -------------------
        manager, latencies = run_async_service_workload(
            clients,
            num_shards=num_shards,
            batch_size=batch_size,
            seed=seed,
            queue_limit=queue_limit,
        )
        rows.append(
            _http_row("in-process", count, manager, latencies, sum(latencies))
        )

        # --- the same submits as HTTP requests over localhost -------------
        config = SessionConfig(
            num_shards=num_shards, batch_size=batch_size
        ).with_resolution(0.2)
        events = generate_interleaved_stream(clients, seed=seed)
        http_latencies: List[float] = []

        async def drive(config=config, events=events, latencies=http_latencies):
            async with AsyncMapService(default_config=config) as service:
                async with HttpMapServer(service, port=0) as server:
                    client = MapServiceClient(*server.address)
                    await client.create_session("bench-map")

                    per_client: dict = {}
                    for event in events:
                        per_client.setdefault(event.client_id, []).append(event)

                    async def run_client(client_events):
                        for event in client_events:
                            cloud = event.scan.world_cloud()
                            origin = event.scan.origin()
                            started = time.perf_counter()
                            await client.submit_scan(
                                "bench-map",
                                cloud.points.tolist(),
                                [float(origin[0]), float(origin[1]), float(origin[2])],
                                max_range=event.max_range_m,
                                client_id=event.client_id,
                            )
                            latencies.append(time.perf_counter() - started)
                            await asyncio.sleep(0)

                    await asyncio.gather(
                        *(run_client(ev) for ev in per_client.values())
                    )
                    await client.flush("bench-map")
                return service.manager

        http_manager = asyncio.run(drive())
        rows.append(
            _http_row("http", count, http_manager, http_latencies, sum(http_latencies))
        )

    result = ExperimentResult(
        experiment_id="http_frontend",
        title="Serving layer: admission latency, in-process async vs HTTP (localhost)",
        headers=headers,
        rows=rows,
    )
    result.rendered = render_table(result.title, headers, rows)
    result.notes = (
        "Identical workload and service; the HTTP rows add one REST request "
        "per submit (new connection, JSON encode/decode, HTTP framing, "
        "loopback TCP).  The admit-latency gap is the per-request price of "
        "the network front end; ingestion itself is unchanged (same batches, "
        "same update streams), so the Updates columns match row pairs."
    )
    return result


def _http_row(
    transport: str,
    client_count: int,
    manager,
    latencies: Sequence[float],
    submit_wall: float,
) -> Tuple[object, ...]:
    """One row of the HTTP-vs-in-process sweep."""
    stats = list(manager.service_stats)
    ordered = sorted(latencies)
    # Small samples: take the latency at the 99th-percentile rank (>= p99).
    p99ish = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))] if ordered else 0.0
    return (
        transport,
        client_count,
        sum(block.scans_ingested for block in stats),
        manager.service_stats.total_voxel_updates(),
        1e3 * (sum(latencies) / len(latencies) if latencies else 0.0),
        1e3 * p99ish,
        1e3 * max(latencies, default=0.0),
        submit_wall,
    )


def service_scaling_experiment(
    clients: Sequence[ClientSpec] = DEFAULT_SERVICE_CLIENTS,
    scheduler_policies: Sequence[str] = ("fifo", "priority", "deadline"),
    shard_counts: Sequence[int] = (1, 2, 4),
    batch_size: int = 4,
    seed: int = 0,
    clock_hz: Optional[float] = None,
) -> ExperimentResult:
    """Sweep scheduler policy x shard count over one multi-client workload."""
    headers = (
        "Scheduler",
        "Shards",
        "Sessions",
        "Scans",
        "Updates",
        "Dedup (%)",
        "Modelled ingest (ms)",
        "Updates/s (x1e6)",
        "Cache hit rate (%)",
    )
    rows: List[Tuple[object, ...]] = []
    for policy in scheduler_policies:
        for num_shards in shard_counts:
            manager = run_service_workload(
                clients,
                scheduler_policy=policy,
                num_shards=num_shards,
                batch_size=batch_size,
                seed=seed,
            )
            stats = list(manager.service_stats)
            frequency = clock_hz
            if frequency is None:
                first_session = manager.get_session(manager.session_ids()[0])
                frequency = first_session.config.accelerator.clock_hz
            ingest_cycles = sum(block.modelled_ingest_cycles for block in stats)
            updates = manager.service_stats.total_voxel_updates()
            ingest_seconds = ingest_cycles / frequency
            visits = sum(block.ray_voxels_visited for block in stats)
            removed = sum(block.duplicates_removed for block in stats)
            rows.append(
                (
                    policy,
                    num_shards,
                    len(manager.service_stats),
                    sum(block.scans_ingested for block in stats),
                    updates,
                    100.0 * removed / visits if visits else 0.0,
                    1e3 * ingest_seconds,
                    (updates / ingest_seconds) / 1e6 if ingest_seconds > 0 else 0.0,
                    100.0 * manager.service_stats.overall_hit_rate(),
                )
            )
    result = ExperimentResult(
        experiment_id="service_scaling",
        title="Serving layer: scheduler x shard-count sweep (multi-client stream)",
        headers=headers,
        rows=rows,
    )
    result.rendered = render_table(result.title, headers, rows)
    result.notes = (
        "Modelled ingest time is the sum over batches of the slowest shard's "
        "critical path: more shards shorten it until the spatial skew of the "
        "workload caps the achievable parallelism, exactly like the PE-count "
        "ablation inside one accelerator."
    )
    return result


def backend_scaling_experiment(
    clients: Sequence[ClientSpec] = DEFAULT_BENCH_CLIENTS,
    backends: Sequence[str] = ("inline", "thread", "process", "socket"),
    shard_counts: Sequence[int] = (1, 2, 4),
    batch_size: int = 4,
    seed: int = 0,
    modes: Sequence[bool] = (False, True),
) -> ExperimentResult:
    """Sweep execution backend x shard count x ingestion mode (wall clock).

    This is the experiment the pluggable backends and the pipelined
    (double-buffered) ingestion exist for: the modelled hardware cycles are
    identical across backends and modes (same update streams, same
    accelerators), so the interesting columns are host wall-clock throughput
    and how much of the serial ray-casting front end the pipelined mode
    hides behind in-flight applies.  On a multi-core host the pipelined
    process backend overtakes blocking fan-out from ~2 shards (front end and
    apply run on different cores); on a single core the overlap buys nothing
    -- the overlap column still reports the exposure, and ``cpu_count``
    travels with the JSON so CI trends are comparable.
    """
    headers = (
        "Backend",
        "Mode",
        "Shards",
        "Scans",
        "Updates",
        "Ingest wall (s)",
        "Fan-out (s)",
        "Overlap (%)",
        "Updates/s (wall)",
        "Speedup vs inline",
        "Pipeline gain",
        "Utilization (%)",
    )
    measurements: List[dict] = []
    for backend in backends:
        for num_shards in shard_counts:
            for pipelined in modes:
                manager = run_service_workload(
                    clients,
                    num_shards=num_shards,
                    batch_size=batch_size,
                    seed=seed,
                    query_rounds=0,
                    backend=backend,
                    pipelined=pipelined,
                )
                try:
                    stats = list(manager.service_stats)
                    # Sustained ingest only: the per-batch wall clock the
                    # pipeline measured (front end + fan-out), *not* worker
                    # spawn or scan synthesis -- charging per-row setup to the
                    # pool backends would bias the speedup column against
                    # exactly the backends this sweep exists to compare.
                    measurements.append(
                        {
                            "backend": backend,
                            "pipelined": pipelined,
                            "shards": num_shards,
                            "scans": sum(block.scans_ingested for block in stats),
                            "updates": manager.service_stats.total_voxel_updates(),
                            "wall": sum(block.ingest_wall_seconds for block in stats),
                            "fanout": sum(block.fanout_wall_seconds for block in stats),
                            "overlap": (
                                sum(block.overlap_ratio for block in stats) / len(stats)
                                if stats
                                else 0.0
                            ),
                            "utilization": (
                                sum(block.shard_utilization for block in stats) / len(stats)
                                if stats
                                else 0.0
                            ),
                        }
                    )
                finally:
                    manager.shutdown()
    # Baselines are derived after the whole sweep so they are found no matter
    # where (or whether) "inline" / blocking mode appear in the arguments.
    inline_wall = {
        m["shards"]: m["wall"]
        for m in measurements
        if m["backend"] == "inline" and not m["pipelined"]
    }
    blocking_wall = {
        (m["backend"], m["shards"]): m["wall"]
        for m in measurements
        if not m["pipelined"]
    }
    rows: List[Tuple[object, ...]] = []
    for m in measurements:
        baseline = inline_wall.get(m["shards"])
        speedup: object = "n/a"
        if baseline is not None and m["wall"] > 0:
            speedup = baseline / m["wall"]
        blocking = blocking_wall.get((m["backend"], m["shards"]))
        pipeline_gain: object = "n/a"
        if blocking is not None and m["wall"] > 0:
            pipeline_gain = blocking / m["wall"]
        rows.append(
            (
                m["backend"],
                "pipelined" if m["pipelined"] else "blocking",
                m["shards"],
                m["scans"],
                m["updates"],
                m["wall"],
                m["fanout"],
                100.0 * m["overlap"],
                m["updates"] / m["wall"] if m["wall"] > 0 else 0.0,
                speedup,
                pipeline_gain,
                100.0 * m["utilization"],
            )
        )
    result = ExperimentResult(
        experiment_id="backend_scaling",
        title="Serving layer: backend x shard-count x ingestion-mode sweep (wall clock)",
        headers=headers,
        rows=rows,
    )
    result.rendered = render_table(result.title, headers, rows)
    result.notes = (
        "Ingest wall is the pipeline's per-batch wall clock summed over the "
        "run: the shared ray-casting front end (serial, identical across "
        "backends) plus the backend fan-out, excluding worker start-up and "
        "scan synthesis.  'Pipeline gain' compares each row against the same "
        "backend/shard count with blocking fan-out; the pipelined win grows "
        "with per-shard apply work and with available cores "
        f"(this run: {os.cpu_count() or 1}; on a single core the overlap "
        "column reports exposure without a wall-clock win)."
    )
    return result


def metrics_overhead_experiment(
    clients: Sequence[ClientSpec] = DEFAULT_BENCH_CLIENTS,
    num_shards: int = 2,
    batch_size: int = 4,
    seed: int = 0,
    repeats: int = 3,
) -> ExperimentResult:
    """Price the metrics pipeline: ingest throughput with instrumentation on vs off.

    Same workload, same inline backend, the only difference between the row
    pair is whether the manager's :class:`~repro.serving.metrics.MetricsStore`
    is enabled (per-request records, histogram observes, windowed rollups) or
    disabled (hooks short-circuit before taking a timestamp).  Each mode runs
    ``repeats`` times and keeps the best wall clock, so scheduler noise does
    not masquerade as instrumentation cost.  The budget the metrics pipeline
    was designed to (fixed-bucket histograms, no raw-sample sorting on the
    hot path) is <3% ingest overhead; the overhead column makes the claim
    checkable per CI run.
    """
    from repro.serving.metrics import MetricsStore

    headers = (
        "Metrics",
        "Scans",
        "Updates",
        "Records",
        "Ingest wall (s)",
        "Updates/s (wall)",
        "Overhead (%)",
    )
    measurements: dict = {}
    for enabled in (False, True):
        best = None
        for _ in range(max(1, repeats)):
            manager = run_service_workload(
                clients,
                num_shards=num_shards,
                batch_size=batch_size,
                seed=seed,
                query_rounds=0,
                metrics=MetricsStore(enabled=enabled),
            )
            try:
                stats = list(manager.service_stats)
                sample = {
                    "scans": sum(block.scans_ingested for block in stats),
                    "updates": manager.service_stats.total_voxel_updates(),
                    "wall": sum(block.ingest_wall_seconds for block in stats),
                    "records": manager.metrics.total_requests(),
                }
            finally:
                manager.shutdown()
            if best is None or sample["wall"] < best["wall"]:
                best = sample
        measurements[enabled] = best
    baseline = measurements[False]["wall"]
    rows: List[Tuple[object, ...]] = []
    for enabled in (False, True):
        m = measurements[enabled]
        overhead: object = "n/a"
        if enabled and baseline > 0:
            overhead = 100.0 * (m["wall"] - baseline) / baseline
        rows.append(
            (
                "on" if enabled else "off",
                m["scans"],
                m["updates"],
                m["records"],
                m["wall"],
                m["updates"] / m["wall"] if m["wall"] > 0 else 0.0,
                overhead,
            )
        )
    result = ExperimentResult(
        experiment_id="metrics_overhead",
        title="Serving layer: metrics-pipeline instrumentation overhead (ingest)",
        headers=headers,
        rows=rows,
    )
    result.rendered = render_table(result.title, headers, rows)
    result.notes = (
        "Identical workload (inline backend, best of "
        f"{max(1, repeats)} runs per mode); the 'on' row pays per-request "
        "record construction, fixed-bucket histogram observes and windowed "
        "rollup upkeep, the 'off' row short-circuits every hook before "
        "taking a timestamp.  Design budget: <3% ingest-throughput overhead."
    )
    return result


def frontend_vectorized_experiment(
    clients: Sequence[ClientSpec] = DEFAULT_BENCH_CLIENTS,
    num_shards: int = 2,
    batch_size: int = 4,
    seed: int = 0,
    repeats: int = 3,
) -> ExperimentResult:
    """Price the ray-casting front end: scalar reference vs batched numpy.

    Same workload, same inline backend; the only difference between the row
    pair is ``SessionConfig.scalar_frontend`` -- the per-ray Python DDA vs
    the array traversal of :mod:`repro.octomap.raycast_vec`.  Both produce
    identical update streams (pinned by the equivalence property suite), so
    the Updates columns match and the front-end wall gap is purely the
    traversal kernel.  Each mode runs ``repeats`` times keeping the best
    front-end wall clock; the "Speedup vs scalar" cell of the vectorized row
    is the *front-end wall* ratio (scalar frontend seconds / vectorized
    frontend seconds) -- the figure CI gates on (``--frontend-gate``, >= 2x
    required, ~10x expected), so a silent fallback to the scalar path cannot
    land green.  End-to-end ingest wall is reported alongside for context:
    on the inline backend the modelled accelerator apply dominates it, so
    the end-to-end ratio understates the front-end win by design.
    """
    headers = (
        "Front end",
        "Scans",
        "Updates",
        "Frontend wall (s)",
        "Ingest wall (s)",
        "Frontend share (%)",
        "Updates/s (wall)",
        "Speedup vs scalar",
    )
    measurements: dict = {}
    for scalar in (True, False):
        best = None
        for _ in range(max(1, repeats)):
            manager = run_service_workload(
                clients,
                num_shards=num_shards,
                batch_size=batch_size,
                seed=seed,
                query_rounds=0,
                scalar_frontend=scalar,
            )
            try:
                stats = list(manager.service_stats)
                sample = {
                    "scans": sum(block.scans_ingested for block in stats),
                    "updates": manager.service_stats.total_voxel_updates(),
                    "wall": sum(block.ingest_wall_seconds for block in stats),
                    "frontend": sum(block.frontend_wall_seconds for block in stats),
                }
            finally:
                manager.shutdown()
            if best is None or sample["frontend"] < best["frontend"]:
                best = sample
        measurements[scalar] = best
    baseline = measurements[True]["frontend"]
    rows: List[Tuple[object, ...]] = []
    for scalar in (True, False):
        m = measurements[scalar]
        speedup: object = 1.0 if scalar else "n/a"
        if not scalar and m["frontend"] > 0:
            speedup = baseline / m["frontend"]
        rows.append(
            (
                "scalar" if scalar else "vectorized",
                m["scans"],
                m["updates"],
                m["frontend"],
                m["wall"],
                100.0 * m["frontend"] / m["wall"] if m["wall"] > 0 else 0.0,
                m["updates"] / m["wall"] if m["wall"] > 0 else 0.0,
                speedup,
            )
        )
    result = ExperimentResult(
        experiment_id="frontend_vectorized",
        title="Serving layer: ingestion front end, scalar reference vs vectorized",
        headers=headers,
        rows=rows,
    )
    result.rendered = render_table(result.title, headers, rows)
    result.notes = (
        "Identical workload (inline backend, best of "
        f"{max(1, repeats)} runs per mode) and identical update streams; the "
        "scalar row steps every ray one voxel at a time in Python, the "
        "vectorized row traverses all rays of a flush through one batched "
        "numpy DDA and de-duplicates with np.unique.  'Speedup vs scalar' is "
        "the front-end wall ratio (the traversal kernel itself); end-to-end "
        "ingest wall is shown for context but is dominated by the modelled "
        "accelerator apply on the inline backend.  CI fails the perf-gate "
        "job when the front-end speedup drops below the --frontend-gate "
        "floor (2x), guarding against a silent fallback to the scalar path."
    )
    return result


def kill_recovery_experiment(
    num_shards: int = 2,
    num_rounds: int = 12,
    updates_per_batch: int = 48,
    kill_round: int = 8,
    snapshot_cadences: Sequence[int] = (1, 4, 8),
    seed: int = 0,
) -> ExperimentResult:
    """Price a worker kill on the socket backend: detection to recovered.

    Drives a fixed per-shard update stream, abruptly kills the worker
    serving shard 0 at a fixed round, and lets the backend's live failover
    (snapshot rehydration + replay-tail replay + in-flight re-send) carry
    the session through.  The sweep dimension is the snapshot cadence: the
    replay tail -- and with it the recovery stall -- is bounded by how many
    batches can accumulate between snapshots, so the "Recovery wall" column
    falls as the cadence tightens while "Snapshots" (the steady-state cost)
    rises.  Every row also re-checks the headline invariant: the recovered
    map must be leaf-for-leaf identical to a fault-free inline run.
    """
    import numpy as np

    from repro.core.address_gen import AddressGenerator
    from repro.core.config import DEFAULT_CONFIG
    from repro.core.verification import compare_trees
    from repro.octomap.merge import merge_trees
    from repro.serving import ShardUpdateBatch, make_backend

    config = DEFAULT_CONFIG.with_resolution(0.2)
    converter = AddressGenerator(
        config.resolution_m, config.tree_depth, config.num_pes
    ).converter
    rng = np.random.default_rng(seed)
    rounds = []
    for _ in range(num_rounds):
        batches = []
        for shard in range(num_shards):
            coords = rng.uniform(
                (-5.0, -5.0, -2.0), (5.0, 5.0, 2.0), size=(updates_per_batch, 3)
            )
            occupied = rng.integers(0, 2, size=len(coords))
            entries = []
            for (x, y, z), flag in zip(coords, occupied):
                key = converter.coord_to_key(x, y, z)
                entries.append((key.x, key.y, key.z, bool(flag)))
            batches.append(ShardUpdateBatch(shard_id=shard, entries=tuple(entries)))
        rounds.append(batches)

    reference_backend = make_backend("inline", config, num_shards)
    try:
        for batches in rounds:
            reference_backend.apply_shard_batches(batches)
        reference = merge_trees(reference_backend.export_all())
    finally:
        reference_backend.close()

    headers = (
        "Snapshot cadence",
        "Rounds",
        "Kill at round",
        "Snapshots",
        "Restored generation",
        "Replayed batches",
        "Replayed updates",
        "Recovery wall (ms)",
        "Map equivalent",
    )
    rows: List[Tuple[object, ...]] = []
    for cadence in snapshot_cadences:
        backend = make_backend(
            "socket", config, num_shards, snapshot_every_batches=cadence
        )
        try:
            for index, batches in enumerate(rounds):
                if index == kill_round:
                    endpoint = str(backend.registry.endpoint_for(0))
                    for handle in backend.owned_workers:
                        if handle.endpoint == endpoint:
                            handle.kill()
                backend.apply_shard_batches(batches)
            merged = merge_trees(backend.export_all())
            comparison = compare_trees(reference, merged, 0.0)
            recovery = backend.recoveries[0]
            rows.append(
                (
                    cadence,
                    num_rounds,
                    kill_round,
                    backend.failover_stats()["snapshots_taken"],
                    recovery.restored_generation,
                    recovery.replayed_batches,
                    recovery.replayed_updates,
                    1e3 * recovery.wall_seconds,
                    "yes" if comparison.equivalent else "NO",
                )
            )
        finally:
            backend.close()

    result = ExperimentResult(
        experiment_id="kill_recovery",
        title="Serving layer: socket-backend worker kill, recovery latency x snapshot cadence",
        headers=headers,
        rows=rows,
    )
    result.rendered = render_table(result.title, headers, rows)
    result.notes = (
        "One worker is killed abruptly (no drain) while serving shard 0; the "
        "socket backend re-homes the shard onto a standby, rehydrates the "
        "last snapshot, replays the un-snapshotted batch tail and re-sends "
        "the in-flight slice.  'Recovery wall' is kill-detection to "
        "recovered; the replay tail (and therefore the stall) is bounded by "
        "the snapshot cadence, which is the knob this sweep turns.  Every "
        "row re-verifies leaf-for-leaf equivalence against a fault-free "
        "inline run."
    )
    return result


def _rank_percentile(values: Sequence[float], quantile: float) -> float:
    """Latency at the given percentile rank (>= the true percentile)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(quantile * len(ordered)))]


def session_scaling_experiment(
    session_counts: Sequence[int] = (25, 100, 200),
    fleet_workers: int = 4,
    backend: str = "thread",
    scans_per_session: int = 2,
    arrival_rate_per_s: float = 200.0,
    num_shards: int = 2,
    batch_size: int = 4,
    resolution_m: float = 0.25,
    seed: int = 0,
    queue_limit: int = 64,
    beams_azimuth: int = 32,
    beams_elevation: int = 2,
) -> ExperimentResult:
    """Open-loop session-count sweep over one shared backend fleet.

    The multi-tenant question the fleet exists to answer: how many
    *sessions* can W workers serve before admission latency degrades?  Each
    session count N runs the same recipe:

    * every tenant leases its shards from one ``fleet_workers``-slot
      :class:`~repro.serving.fleet.BackendPool` (no per-session workers);
    * arrivals follow an *open-loop* Poisson schedule at
      ``arrival_rate_per_s`` total -- each request fires at its scheduled
      wall-clock offset whether or not the service kept up, so queueing
      delay shows up in the latency columns instead of silently slowing the
      workload down (the coordinated-omission trap of closed-loop drivers);
    * admission latency is measured from the *scheduled* arrival to
      admission-queue acceptance, so it includes both backpressure waits and
      any event-loop lag behind the schedule;
    * ingest latency is the service-side per-flush wall clock (one batched
      pop -> coalesce -> shard-apply cycle), pooled over every session.

    All tenants replay the same prototype scan sequence (generated once),
    which keeps a 200-session sweep cheap without changing what is being
    measured -- fleet contention, not scan content.
    """
    import asyncio
    import threading
    import time

    from repro.serving.aio import AsyncMapService
    from repro.serving.manager import MapSessionManager
    from repro.serving.session import SessionConfig
    from repro.serving.types import ScanRequest

    # A deliberately light scan (few beams, short range): the sweep measures
    # fleet contention under tenant count, not per-scan ingest heft, and the
    # light scan is what lets a 200-session row finish in CI time.
    prototype = ClientSpec(
        client_id="prototype",
        session_id="prototype",
        scene="corridor",
        num_scans=scans_per_session,
        max_range_m=10.0,
    )
    scans = generate_client_scans(
        prototype,
        seed=seed,
        beams_azimuth=beams_azimuth,
        beams_elevation=beams_elevation,
    )

    headers = (
        "Sessions",
        "Fleet workers",
        "Peak threads",
        "Scans",
        "Offered (scans/s)",
        "Sustained (scans/s)",
        "Admit p50 (ms)",
        "Admit p99 (ms)",
        "Ingest p50 (ms)",
        "Ingest p99 (ms)",
    )
    rows: List[Tuple[object, ...]] = []
    for count in session_counts:
        config = SessionConfig(
            num_shards=num_shards,
            batch_size=batch_size,
            backend=backend,
            fleet_workers=fleet_workers,
        ).with_resolution(resolution_m)
        manager = MapSessionManager(default_config=config)
        session_ids = [f"tenant-{index:04d}" for index in range(count)]
        # Round-robin: scan 0 for every tenant, then scan 1, ... -- each
        # tenant's own scans keep their order under the sorted schedule.
        requests = [
            ScanRequest.from_scan_node(
                session_id,
                scan,
                max_range=prototype.max_range_m,
                client_id=session_id,
            )
            for scan in scans
            for session_id in session_ids
        ]
        arrivals = poisson_arrival_times(
            len(requests), arrival_rate_per_s, seed=seed + count
        )
        admit_latencies: List[float] = []
        peak_threads = threading.active_count()

        async def drive(manager=manager, session_ids=session_ids,
                        requests=requests, arrivals=arrivals,
                        admit_latencies=admit_latencies) -> Tuple[float, int]:
            async with AsyncMapService(manager, queue_limit=queue_limit) as service:
                for session_id in session_ids:
                    service.get_or_create_session(session_id)
                start = time.perf_counter()

                async def fire(request, arrival_s: float) -> None:
                    delay = start + arrival_s - time.perf_counter()
                    if delay > 0.0:
                        await asyncio.sleep(delay)
                    await service.submit(request)
                    admit_latencies.append(time.perf_counter() - (start + arrival_s))

                tasks = [
                    asyncio.ensure_future(fire(request, float(arrival)))
                    for request, arrival in zip(requests, arrivals)
                ]
                await asyncio.gather(*tasks)
                threads = threading.active_count()
                await service.flush_all()
                return time.perf_counter() - start, threads

        try:
            wall, threads = asyncio.run(drive())
            peak_threads = max(peak_threads, threads)
            stats = list(manager.service_stats)
            total_scans = sum(block.scans_ingested for block in stats)
            batch_walls = [
                report.wall_seconds
                for session_id in session_ids
                for report in manager.get_session(session_id).pipeline.reports
            ]
        finally:
            manager.shutdown()
        rows.append(
            (
                count,
                fleet_workers,
                peak_threads,
                total_scans,
                arrival_rate_per_s,
                total_scans / wall if wall > 0.0 else 0.0,
                1e3 * _rank_percentile(admit_latencies, 0.50),
                1e3 * _rank_percentile(admit_latencies, 0.99),
                1e3 * _rank_percentile(batch_walls, 0.50),
                1e3 * _rank_percentile(batch_walls, 0.99),
            )
        )

    result = ExperimentResult(
        experiment_id="session_scaling",
        title=(
            f"Serving layer: open-loop session-count sweep on one shared "
            f"{backend} fleet ({fleet_workers} workers)"
        ),
        headers=headers,
        rows=rows,
    )
    result.rendered = render_table(result.title, headers, rows)
    result.notes = (
        "Open-loop Poisson arrivals: every request fires at its scheduled "
        "wall-clock offset regardless of service progress, so admission "
        "latency (scheduled arrival -> queue acceptance) absorbs both "
        "backpressure and schedule lag instead of hiding them "
        "(coordinated omission).  Ingest latency is the per-flush wall "
        "clock pooled over all sessions.  'Peak threads' stays O(fleet "
        "workers) as sessions grow: tenants lease slots from one "
        "BackendPool instead of owning workers."
    )
    return result


def write_benchmark_json(
    result: ExperimentResult, path, extra_results: Sequence[ExperimentResult] = ()
) -> Path:
    """Persist experiments as machine-readable JSON (CI's per-PR artifact).

    The primary ``result`` keeps the established top-level schema (id /
    headers / rows / records / notes); ``extra_results`` travel under an
    ``"experiments"`` list that also includes the primary, so downstream
    tooling can either keep reading the old fields or iterate the list.
    """
    path = Path(path)

    def as_payload(experiment: ExperimentResult) -> dict:
        return {
            "experiment_id": experiment.experiment_id,
            "title": experiment.title,
            "headers": list(experiment.headers),
            "rows": [list(row) for row in experiment.rows],
            # One self-describing record per row: header -> value, so
            # downstream tooling can read each measurement's backend /
            # pipeline / front-end flags without relying on column positions.
            "records": experiment.records(),
            "notes": experiment.notes,
        }

    payload = as_payload(result)
    payload["environment"] = {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
    }
    if extra_results:
        payload["experiments"] = [as_payload(result)] + [
            as_payload(extra) for extra in extra_results
        ]
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.analysis.service``: run the sweeps, emit the JSON."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.service",
        description="Serving-layer sweeps: scheduler x shards and backend x shards.",
    )
    parser.add_argument(
        "--out",
        default="benchmarks/results/BENCH_serving.json",
        help=(
            "path of the machine-readable result (default "
            "benchmarks/results/BENCH_serving.json; gitignored -- CI uploads "
            "it as a workflow artifact)"
        ),
    )
    parser.add_argument(
        "--backends",
        nargs="+",
        default=["inline", "thread", "process", "socket"],
        help="execution backends to sweep (default: all four)",
    )
    parser.add_argument(
        "--shards",
        nargs="+",
        type=int,
        default=[1, 2, 4],
        help="shard counts to sweep (default: 1 2 4)",
    )
    parser.add_argument(
        "--scans",
        type=int,
        default=6,
        help="scans per benchmark client (default 6)",
    )
    parser.add_argument(
        "--pipeline",
        choices=["both", "off", "on"],
        default="both",
        help=(
            "ingestion-mode dimension of the sweep: 'both' compares blocking "
            "and pipelined (double-buffered) fan-out, 'off'/'on' pin one mode"
        ),
    )
    parser.add_argument(
        "--skip-metrics-sweep",
        action="store_true",
        help="skip the metrics-instrumentation overhead comparison",
    )
    parser.add_argument(
        "--skip-scheduler-sweep",
        action="store_true",
        help="only run the backend sweep (faster)",
    )
    parser.add_argument(
        "--skip-frontend-sweep",
        action="store_true",
        help="skip the sync-vs-async admission front-end sweep",
    )
    parser.add_argument(
        "--skip-http-sweep",
        action="store_true",
        help="skip the in-process-vs-HTTP admission-latency sweep",
    )
    parser.add_argument(
        "--skip-failover-sweep",
        action="store_true",
        help="skip the socket-backend kill-recovery latency sweep",
    )
    parser.add_argument(
        "--skip-session-sweep",
        action="store_true",
        help="skip the open-loop session-count sweep on the shared fleet",
    )
    parser.add_argument(
        "--session-counts",
        nargs="+",
        type=int,
        default=[25, 100, 200],
        help="session counts of the fleet sweep (default: 25 100 200)",
    )
    parser.add_argument(
        "--fleet-workers",
        type=int,
        default=4,
        help="fleet slot count W shared by every session in the sweep (default 4)",
    )
    parser.add_argument(
        "--session-gate",
        type=float,
        default=0.0,
        metavar="P99_MS",
        help=(
            "fail (exit 1) if admission p99 in any session-sweep row exceeds "
            "P99_MS milliseconds (0 disables; CI gates the 200-session row)"
        ),
    )
    parser.add_argument(
        "--clients",
        nargs="+",
        type=int,
        default=[1, 2, 4],
        help="concurrent-client counts of the front-end sweep (default: 1 2 4)",
    )
    parser.add_argument(
        "--frontend-gate",
        type=float,
        default=0.0,
        metavar="FACTOR",
        help=(
            "fail (exit 1) unless the vectorized front end's wall clock beats "
            "the scalar front end's by at least FACTOR x in the "
            "frontend_vectorized row (0 disables; CI gates at 2.0)"
        ),
    )
    args = parser.parse_args(argv)

    from dataclasses import replace

    clients = tuple(
        replace(client, num_scans=args.scans) for client in DEFAULT_BENCH_CLIENTS
    )
    modes = {"both": (False, True), "off": (False,), "on": (True,)}[args.pipeline]
    backend_result = backend_scaling_experiment(
        clients,
        backends=tuple(args.backends),
        shard_counts=tuple(args.shards),
        modes=modes,
    )
    print(backend_result.rendered)
    print(backend_result.notes)
    extra_results = []
    if not args.skip_frontend_sweep:
        frontend_result = frontend_scaling_experiment(
            client_counts=tuple(args.clients), scans_per_client=max(1, args.scans // 3)
        )
        extra_results.append(frontend_result)
        print()
        print(frontend_result.rendered)
        print(frontend_result.notes)
    if not args.skip_http_sweep:
        http_result = http_frontend_experiment(
            client_counts=(1, 2), scans_per_client=max(1, args.scans // 3)
        )
        extra_results.append(http_result)
        print()
        print(http_result.rendered)
        print(http_result.notes)
    if not args.skip_failover_sweep:
        failover_result = kill_recovery_experiment()
        extra_results.append(failover_result)
        print()
        print(failover_result.rendered)
        print(failover_result.notes)
    session_result = None
    if not args.skip_session_sweep:
        session_result = session_scaling_experiment(
            session_counts=tuple(args.session_counts),
            fleet_workers=args.fleet_workers,
        )
        extra_results.append(session_result)
        print()
        print(session_result.rendered)
        print(session_result.notes)
    if not args.skip_metrics_sweep:
        metrics_result = metrics_overhead_experiment(clients)
        extra_results.append(metrics_result)
        print()
        print(metrics_result.rendered)
        print(metrics_result.notes)
    # Always measured (it is the row CI's perf gate reads): scalar reference
    # front end vs the vectorized default, same workload, same streams.
    vectorized_result = frontend_vectorized_experiment(clients)
    extra_results.append(vectorized_result)
    print()
    print(vectorized_result.rendered)
    print(vectorized_result.notes)
    if not args.skip_scheduler_sweep:
        scheduler_result = service_scaling_experiment()
        print()
        print(scheduler_result.rendered)
    out = write_benchmark_json(backend_result, args.out, extra_results=extra_results)
    print(f"\n[machine-readable results saved to {out}]")
    if args.frontend_gate > 0.0:
        speedup = next(
            record["Speedup vs scalar"]
            for record in vectorized_result.records()
            if record["Front end"] == "vectorized"
        )
        if not isinstance(speedup, (int, float)) or speedup < args.frontend_gate:
            print(
                f"FAIL: vectorized front end speedup {speedup} is below the "
                f"{args.frontend_gate}x gate",
                file=sys.stderr,
            )
            return 1
        print(f"Frontend gate OK: vectorized {speedup:.1f}x >= {args.frontend_gate}x")
    if args.session_gate > 0.0 and session_result is not None:
        worst = max(record["Admit p99 (ms)"] for record in session_result.records())
        if worst > args.session_gate:
            print(
                f"FAIL: session-sweep admission p99 {worst:.1f} ms exceeds the "
                f"{args.session_gate} ms gate",
                file=sys.stderr,
            )
            return 1
        print(
            f"Session gate OK: worst admission p99 {worst:.1f} ms <= "
            f"{args.session_gate} ms"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI benchmark job
    raise SystemExit(main())
