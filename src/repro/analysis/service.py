"""Service-level experiments: the serving layer under multi-client load.

The paper's tables characterise one accelerator on one dataset; this driver
characterises the *service* built on top of it: several sessions ingesting an
interleaved multi-client stream, swept over scheduler policies and shard
counts.  Reported per configuration:

* dispatched voxel updates and the overlapping-ray de-dup saving,
* modelled hardware ingestion latency (slowest-shard critical path summed
  over batches) and the resulting update throughput,
* query-cache hit rate after a fixed warm-up + repeat query pattern.

Like every other driver it returns an :class:`ExperimentResult` whose
``rendered`` field is a ready-to-print ASCII table.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.experiments import ExperimentResult
from repro.analysis.tables import render_table
from repro.datasets.streams import ClientSpec, generate_interleaved_stream

# NOTE: repro.serving is imported lazily inside the drivers.  The serving
# stats layer renders through repro.analysis.tables, so a module-level import
# here would close an import cycle through the two packages' __init__ files.

__all__ = ["DEFAULT_SERVICE_CLIENTS", "run_service_workload", "service_scaling_experiment"]


DEFAULT_SERVICE_CLIENTS: Tuple[ClientSpec, ...] = (
    ClientSpec(client_id="drone-a", session_id="corridor-map", scene="corridor", num_scans=2, priority=2),
    ClientSpec(client_id="drone-b", session_id="corridor-map", scene="corridor", num_scans=2, priority=1),
    ClientSpec(client_id="rover", session_id="campus-map", scene="campus", num_scans=2, priority=0),
)
"""A small three-client / two-session workload used by the default sweep."""


_QUERY_PATTERN: Tuple[Tuple[float, float, float], ...] = (
    (1.0, 0.0, 0.0),
    (0.0, 1.2, 0.2),
    (2.0, -0.8, 0.4),
    (-1.5, 0.5, 0.0),
)


def run_service_workload(
    clients: Sequence[ClientSpec] = DEFAULT_SERVICE_CLIENTS,
    scheduler_policy: str = "fifo",
    num_shards: int = 2,
    batch_size: int = 4,
    resolution_m: float = 0.2,
    seed: int = 0,
    query_rounds: int = 3,
):
    """Drive one configuration and return the manager (stats inside)."""
    from repro.serving.manager import MapSessionManager
    from repro.serving.session import SessionConfig
    from repro.serving.types import ScanRequest

    config = SessionConfig(
        num_shards=num_shards,
        scheduler_policy=scheduler_policy,
        batch_size=batch_size,
    ).with_resolution(resolution_m)
    manager = MapSessionManager(default_config=config)
    for event in generate_interleaved_stream(clients, seed=seed):
        manager.submit(
            ScanRequest.from_scan_node(
                event.session_id,
                event.scan,
                max_range=event.max_range_m,
                priority=event.priority,
                client_id=event.client_id,
            )
        )
    manager.flush_all()
    for _ in range(query_rounds):
        for session_id in manager.session_ids():
            for point in _QUERY_PATTERN:
                manager.query(session_id, *point)
    return manager


def service_scaling_experiment(
    clients: Sequence[ClientSpec] = DEFAULT_SERVICE_CLIENTS,
    scheduler_policies: Sequence[str] = ("fifo", "priority", "deadline"),
    shard_counts: Sequence[int] = (1, 2, 4),
    batch_size: int = 4,
    seed: int = 0,
    clock_hz: Optional[float] = None,
) -> ExperimentResult:
    """Sweep scheduler policy x shard count over one multi-client workload."""
    headers = (
        "Scheduler",
        "Shards",
        "Sessions",
        "Scans",
        "Updates",
        "Dedup (%)",
        "Modelled ingest (ms)",
        "Updates/s (x1e6)",
        "Cache hit rate (%)",
    )
    rows: List[Tuple[object, ...]] = []
    for policy in scheduler_policies:
        for num_shards in shard_counts:
            manager = run_service_workload(
                clients,
                scheduler_policy=policy,
                num_shards=num_shards,
                batch_size=batch_size,
                seed=seed,
            )
            stats = list(manager.service_stats)
            frequency = clock_hz
            if frequency is None:
                first_session = manager.get_session(manager.session_ids()[0])
                frequency = first_session.config.accelerator.clock_hz
            ingest_cycles = sum(block.modelled_ingest_cycles for block in stats)
            updates = manager.service_stats.total_voxel_updates()
            ingest_seconds = ingest_cycles / frequency
            visits = sum(block.ray_voxels_visited for block in stats)
            removed = sum(block.duplicates_removed for block in stats)
            rows.append(
                (
                    policy,
                    num_shards,
                    len(manager.service_stats),
                    sum(block.scans_ingested for block in stats),
                    updates,
                    100.0 * removed / visits if visits else 0.0,
                    1e3 * ingest_seconds,
                    (updates / ingest_seconds) / 1e6 if ingest_seconds > 0 else 0.0,
                    100.0 * manager.service_stats.overall_hit_rate(),
                )
            )
    result = ExperimentResult(
        experiment_id="service_scaling",
        title="Serving layer: scheduler x shard-count sweep (multi-client stream)",
        headers=headers,
        rows=rows,
    )
    result.rendered = render_table(result.title, headers, rows)
    result.notes = (
        "Modelled ingest time is the sum over batches of the slowest shard's "
        "critical path: more shards shorten it until the spatial skew of the "
        "workload caps the achievable parallelism, exactly like the PE-count "
        "ablation inside one accelerator."
    )
    return result
