"""Plain-text table and bar-chart rendering.

Every experiment driver returns structured data; this module turns it into
the ASCII tables and horizontal bar charts printed by the benchmark harness
and the examples, so the reproduced tables/figures can be compared against
the paper at a glance without any plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_table", "render_bar_chart", "format_quantity"]


def format_quantity(value, precision: int = 2) -> str:
    """Human-friendly formatting of the mixed cell types the tables carry."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:,.0f}"
        if magnitude >= 1:
            return f"{value:.{precision}f}"
        if magnitude >= 0.01:
            return f"{value:.{precision + 1}f}"
        return f"{value:.3e}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 2,
) -> str:
    """Render a titled ASCII table with column alignment.

    Args:
        title: printed above the table.
        headers: column names.
        rows: table body; cells are formatted with :func:`format_quantity`.
        precision: decimal places for float cells.
    """
    formatted_rows = [[format_quantity(cell, precision) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    separator = "-+-".join("-" * width for width in widths)
    parts = [title, line(list(headers)), separator]
    parts.extend(line(row) for row in formatted_rows)
    return "\n".join(parts)


def render_bar_chart(
    title: str,
    values: Mapping[str, float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Render a horizontal ASCII bar chart (used for the figure reproductions).

    Bars are scaled to the largest value; each line shows the label, the bar
    and the numeric value.
    """
    if width < 1:
        raise ValueError("width must be at least 1")
    parts = [title]
    if not values:
        return title + "\n(no data)"
    maximum = max(values.values())
    label_width = max(len(label) for label in values)
    for label, value in values.items():
        if maximum > 0:
            bar_length = int(round(width * value / maximum))
        else:
            bar_length = 0
        bar = "#" * bar_length
        parts.append(f"{label.ljust(label_width)} | {bar} {format_quantity(value)}{unit}")
    return "\n".join(parts)
