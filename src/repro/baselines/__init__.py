"""CPU baselines: platform descriptors, calibrated cost models, instrumented runs."""

from repro.baselines.cpu_model import (
    A57_COST_MODEL,
    A57_NS_PER_UPDATE,
    CpuCostModel,
    CpuRunEstimate,
    I9_COST_MODEL,
    I9_NS_PER_UPDATE,
)
from repro.baselines.platforms import (
    ARM_CORTEX_A57,
    INTEL_I9_9940X,
    OMU_PLATFORM,
    PlatformDescriptor,
)
from repro.baselines.sw_runner import SoftwareRunResult, run_software_octomap

__all__ = [
    "A57_COST_MODEL",
    "A57_NS_PER_UPDATE",
    "ARM_CORTEX_A57",
    "CpuCostModel",
    "CpuRunEstimate",
    "I9_COST_MODEL",
    "I9_NS_PER_UPDATE",
    "INTEL_I9_9940X",
    "OMU_PLATFORM",
    "PlatformDescriptor",
    "SoftwareRunResult",
    "run_software_octomap",
]
