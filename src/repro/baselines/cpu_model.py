"""Calibrated CPU performance models for the software OctoMap baseline.

The paper measures the single-threaded OctoMap library on two CPUs (Intel
i9-9940X and ARM Cortex-A57).  Those machines are not available here, so the
baselines are *analytical cost models*: the latency of building a map is the
dataset's total voxel-update count multiplied by a per-update cost, where the
per-update cost is the sum of four per-stage costs (ray casting, update leaf,
update parents, prune/expand).  The stage split is a property of the workload
(Fig. 3 shows it differs per dataset); the per-update total is a property of
the platform.

Calibration:

* ``I9_NS_PER_UPDATE = 170`` ns -- Table II/III report 16.8 s / 177.7 s /
  77.3 s for 101 M / 1 031 M / 449 M voxel updates, i.e. 166 / 172 / 172 ns
  per update; 170 ns is the round number inside that band.
* ``A57_NS_PER_UPDATE = 870`` ns -- Table III reports 81.7 s / 897.2 s /
  401.5 s for the same update counts, i.e. 809 / 870 / 894 ns per update.

The models can also be driven by *measured* operation counters (from the
instrumented software tree running on a scaled workload), which is how the
Fig. 3 reproduction derives the stage split instead of copying the paper's
percentages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.baselines.platforms import ARM_CORTEX_A57, INTEL_I9_9940X, PlatformDescriptor
from repro.datasets.catalog import DatasetDescriptor
from repro.octomap.counters import OperationCounters, OperationKind

__all__ = [
    "CpuCostModel",
    "CpuRunEstimate",
    "I9_COST_MODEL",
    "A57_COST_MODEL",
    "I9_NS_PER_UPDATE",
    "A57_NS_PER_UPDATE",
]

I9_NS_PER_UPDATE = 170.0
A57_NS_PER_UPDATE = 870.0


@dataclass(frozen=True)
class CpuRunEstimate:
    """Latency / throughput / energy estimate of one CPU run on one dataset."""

    platform_name: str
    dataset_name: str
    latency_s: float
    fps: float
    energy_j: Optional[float]
    breakdown: Mapping[OperationKind, float]


@dataclass(frozen=True)
class CpuCostModel:
    """Per-voxel-update cost model of one CPU platform.

    Attributes:
        platform: the physical platform descriptor.
        ns_per_voxel_update: calibrated mean cost of one voxel update,
            including its share of ray casting, parent updates and pruning.
    """

    platform: PlatformDescriptor
    ns_per_voxel_update: float

    def __post_init__(self) -> None:
        if self.ns_per_voxel_update <= 0:
            raise ValueError("ns_per_voxel_update must be positive")

    # ------------------------------------------------------------------
    # Dataset-level estimates (Tables II-V)
    # ------------------------------------------------------------------
    def latency_seconds(self, dataset: DatasetDescriptor) -> float:
        """Whole-dataset map-building latency."""
        return dataset.voxel_updates_total * self.ns_per_voxel_update * 1e-9

    def throughput_fps(self, dataset: DatasetDescriptor) -> float:
        """Equivalent-frame throughput (the paper's FPS metric)."""
        return dataset.fps_from_latency(self.latency_seconds(dataset))

    def energy_joules(self, dataset: DatasetDescriptor) -> Optional[float]:
        """Energy of the run, or None when the platform has no mapping power."""
        if self.platform.mapping_power_w is None:
            return None
        return self.platform.energy_joules(self.latency_seconds(dataset))

    def estimate(
        self,
        dataset: DatasetDescriptor,
        breakdown: Optional[Mapping[OperationKind, float]] = None,
    ) -> CpuRunEstimate:
        """Full estimate for one dataset.

        Args:
            dataset: the Table II descriptor.
            breakdown: per-stage runtime fractions to attach; defaults to the
                dataset's Fig. 3 reference split.
        """
        if breakdown is None:
            reference = dataset.paper.cpu_breakdown
            breakdown = {
                OperationKind.RAY_CASTING: reference[0],
                OperationKind.UPDATE_LEAF: reference[1],
                OperationKind.UPDATE_PARENTS: reference[2],
                OperationKind.PRUNE_EXPAND: reference[3],
            }
        latency = self.latency_seconds(dataset)
        return CpuRunEstimate(
            platform_name=self.platform.name,
            dataset_name=dataset.name,
            latency_s=latency,
            fps=dataset.fps_from_latency(latency),
            energy_j=self.energy_joules(dataset),
            breakdown=dict(breakdown),
        )

    # ------------------------------------------------------------------
    # Counter-driven breakdown (Fig. 3 reproduction)
    # ------------------------------------------------------------------
    def breakdown_from_counters(
        self, counters: OperationCounters
    ) -> Mapping[OperationKind, float]:
        """Derive the per-stage runtime split from measured operation counts.

        On a CPU the cost drivers are: one DDA step per traversed voxel (ray
        casting); a full 16-level pointer-chasing tree descent plus the
        log-odds add for every leaf update; a (mostly cache-resident) revisit
        of each ancestor for the parent max; and -- the dominant term -- the
        eight irregular child reads behind every pruning check plus the
        allocation / deallocation work of prunes and expansions.  The weights
        below encode those relative costs per primitive operation (a pointer
        chase or an irregular child read is charged close to an L2/L3 miss,
        a revisit close to a cache hit); they reproduce the paper's stage
        ordering -- prune/expand first, update leaf second, update parents
        third, ray casting negligible -- from measured operation counts
        rather than by copying the paper's percentages.
        """
        ray = counters.ray_steps * 2.0
        leaf = counters.leaf_updates * 40.0
        parents = counters.parent_updates * 1.2 + counters.child_reads * 0.05
        prune = (
            counters.prune_checks * 0.5
            + counters.child_reads * 0.8
            + (counters.prunes + counters.expansions) * 8.0
        )
        total = ray + leaf + parents + prune
        if total == 0:
            return {stage: 0.0 for stage in OperationKind.ordered()}
        return {
            OperationKind.RAY_CASTING: ray / total,
            OperationKind.UPDATE_LEAF: leaf / total,
            OperationKind.UPDATE_PARENTS: parents / total,
            OperationKind.PRUNE_EXPAND: prune / total,
        }


I9_COST_MODEL = CpuCostModel(platform=INTEL_I9_9940X, ns_per_voxel_update=I9_NS_PER_UPDATE)
A57_COST_MODEL = CpuCostModel(platform=ARM_CORTEX_A57, ns_per_voxel_update=A57_NS_PER_UPDATE)
