"""Descriptors of the baseline compute platforms the paper compares against.

Two CPU baselines appear in the evaluation:

* **Intel i9-9940X** -- a 14-core desktop CPU (165 W TDP); the paper uses it
  for the workload characterisation (Table II, Fig. 3) and the latency /
  throughput comparison (Tables III/IV, Fig. 9) but excludes it from the
  energy comparison because a desktop TDP is not representative of the edge.
* **ARM Cortex-A57** (Nvidia Jetson TX2) -- the representative edge platform;
  the paper measures 2.6-2.9 W during mapping and uses the average for the
  energy comparison (Table V).

The descriptors carry the physical constants the models need (frequency,
measured mapping power, TDP) plus provenance notes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PlatformDescriptor", "INTEL_I9_9940X", "ARM_CORTEX_A57", "OMU_PLATFORM"]


@dataclass(frozen=True)
class PlatformDescriptor:
    """Physical description of one compute platform.

    Attributes:
        name: human-readable platform name.
        frequency_hz: nominal core clock.
        mapping_power_w: power drawn while running the mapping workload
            (used for energy = power x latency); None when the paper does not
            report one (the i9).
        tdp_w: thermal design power (contextual information only).
        is_edge_platform: True for platforms the paper considers deployable
            at the edge.
    """

    name: str
    frequency_hz: float
    mapping_power_w: float | None
    tdp_w: float | None
    is_edge_platform: bool

    def energy_joules(self, latency_s: float) -> float:
        """Energy for a run of ``latency_s`` seconds at the mapping power.

        Raises:
            ValueError: if the platform has no reported mapping power.
        """
        if self.mapping_power_w is None:
            raise ValueError(
                f"{self.name} has no reported mapping power; the paper excludes "
                "it from the energy comparison"
            )
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        return self.mapping_power_w * latency_s


INTEL_I9_9940X = PlatformDescriptor(
    name="Intel i9-9940X",
    frequency_hz=3.3e9,
    mapping_power_w=None,
    tdp_w=165.0,
    is_edge_platform=False,
)

ARM_CORTEX_A57 = PlatformDescriptor(
    name="ARM Cortex-A57 (Jetson TX2)",
    frequency_hz=2.0e9,
    # The paper reports 2.6-2.9 W during mapping; the energy table is
    # consistent with the average of that range (227.2 J / 81.7 s = 2.78 W).
    mapping_power_w=2.78,
    tdp_w=15.0,
    is_edge_platform=True,
)

OMU_PLATFORM = PlatformDescriptor(
    name="OMU accelerator (12 nm, 1 GHz)",
    frequency_hz=1.0e9,
    mapping_power_w=0.2508,
    tdp_w=None,
    is_edge_platform=True,
)
