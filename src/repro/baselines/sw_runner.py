"""Instrumented single-threaded software OctoMap runs.

The paper's workload analysis (Section III-B) instruments the OctoMap library
and times each pipeline stage.  This module does the same for the Python
reimplementation: it builds the map for a scan graph with the plain software
tree while recording both wall-clock time per stage (useful locally) and the
operation counters, which feed the calibrated CPU cost models to produce the
paper-scale breakdowns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.octomap.counters import OperationCounters, OperationKind
from repro.octomap.octree import OccupancyOcTree
from repro.octomap.pointcloud import ScanGraph
from repro.octomap.scan_insertion import compute_update_keys

__all__ = ["SoftwareRunResult", "run_software_octomap"]


@dataclass
class SoftwareRunResult:
    """Outcome of one instrumented software map-building run.

    Attributes:
        tree: the finished occupancy octree.
        counters: operation counts accumulated during the run.
        stage_seconds: measured wall-clock seconds per pipeline stage (for
            the Python implementation -- useful for relative comparisons, not
            for absolute CPU numbers).
        voxel_updates: total leaf updates applied.
        total_points: sensor points processed.
    """

    tree: OccupancyOcTree
    counters: OperationCounters
    stage_seconds: Dict[OperationKind, float] = field(default_factory=dict)
    voxel_updates: int = 0
    total_points: int = 0

    def stage_fractions(self) -> Mapping[OperationKind, float]:
        """Wall-clock share of each stage (the local analogue of Fig. 3)."""
        total = sum(self.stage_seconds.values())
        if total == 0:
            return {stage: 0.0 for stage in OperationKind.ordered()}
        return {
            stage: self.stage_seconds.get(stage, 0.0) / total
            for stage in OperationKind.ordered()
        }


def run_software_octomap(
    graph: ScanGraph,
    resolution_m: float,
    max_range: float = -1.0,
    params=None,
) -> SoftwareRunResult:
    """Build the map for ``graph`` with the software tree, timing each stage.

    The insertion is deliberately performed stage by stage (ray casting first,
    then the voxel updates) so the two phases can be timed separately; the
    functional result is identical to
    :meth:`repro.octomap.octree.OccupancyOcTree.insert_point_cloud`.
    """
    if params is not None:
        tree = OccupancyOcTree(resolution_m, params=params)
    else:
        tree = OccupancyOcTree(resolution_m)
    stage_seconds: Dict[OperationKind, float] = {stage: 0.0 for stage in OperationKind.ordered()}
    voxel_updates = 0
    total_points = 0

    for scan in graph:
        cloud = scan.world_cloud()
        origin = scan.origin()
        total_points += len(cloud)

        start = time.perf_counter()
        free_keys, occupied_keys = compute_update_keys(tree, cloud, origin, max_range)
        stage_seconds[OperationKind.RAY_CASTING] += time.perf_counter() - start

        # The eager update interleaves the leaf update, parent updates and
        # pruning inside one tree traversal, exactly like the C++ library, so
        # wall-clock time cannot be split per stage here; instead the split is
        # derived from the operation counters (see CpuCostModel) while the
        # update loop's total time is attributed proportionally afterwards.
        counters_before = tree.counters.copy()
        start = time.perf_counter()
        for key in free_keys:
            tree.update_node(key, occupied=False)
        for key in occupied_keys:
            tree.update_node(key, occupied=True)
        update_seconds = time.perf_counter() - start
        voxel_updates += len(free_keys) + len(occupied_keys)

        delta = tree.counters.copy()
        _subtract(delta, counters_before)
        weights = _update_stage_weights(delta)
        for stage in (
            OperationKind.UPDATE_LEAF,
            OperationKind.UPDATE_PARENTS,
            OperationKind.PRUNE_EXPAND,
        ):
            stage_seconds[stage] += update_seconds * weights[stage]

    return SoftwareRunResult(
        tree=tree,
        counters=tree.counters,
        stage_seconds=stage_seconds,
        voxel_updates=voxel_updates,
        total_points=total_points,
    )


def _subtract(counters: OperationCounters, baseline: OperationCounters) -> None:
    counters.ray_steps -= baseline.ray_steps
    counters.leaf_updates -= baseline.leaf_updates
    counters.parent_updates -= baseline.parent_updates
    counters.child_reads -= baseline.child_reads
    counters.prune_checks -= baseline.prune_checks
    counters.prunes -= baseline.prunes
    counters.expansions -= baseline.expansions
    counters.node_allocations -= baseline.node_allocations
    counters.node_deletions -= baseline.node_deletions
    counters.queries -= baseline.queries


def _update_stage_weights(delta: OperationCounters) -> Dict[OperationKind, float]:
    """Split the update loop's time across leaf / parents / prune stages.

    Uses the same per-operation weights as
    :meth:`repro.baselines.cpu_model.CpuCostModel.breakdown_from_counters`
    (excluding ray casting, which is timed directly).
    """
    leaf = delta.leaf_updates * 40.0
    parents = delta.parent_updates * 1.2 + delta.child_reads * 0.05
    prune = (
        delta.prune_checks * 0.5
        + delta.child_reads * 0.8
        + (delta.prunes + delta.expansions) * 8.0
    )
    total = leaf + parents + prune
    if total == 0:
        return {
            OperationKind.UPDATE_LEAF: 0.0,
            OperationKind.UPDATE_PARENTS: 0.0,
            OperationKind.PRUNE_EXPAND: 0.0,
        }
    return {
        OperationKind.UPDATE_LEAF: leaf / total,
        OperationKind.UPDATE_PARENTS: parents / total,
        OperationKind.PRUNE_EXPAND: prune / total,
    }
