"""OMU accelerator model -- the paper's primary contribution.

This package models the OctoMap Processing Unit (OMU) at functional +
cycle-approximate fidelity:

* :mod:`repro.core.config` -- architectural / physical parameters (8 PEs,
  8 x 32 kB banks per PE, 1 GHz, 12 nm) and primitive cycle costs.
* :mod:`repro.core.fixedpoint` -- the 16-bit fixed-point log-odds format of
  the TreeMem entry.
* :mod:`repro.core.treemem` -- the packed 64-bit entry (pointer / child tags /
  probability) and the eight-bank SRAM model.
* :mod:`repro.core.address_gen` -- key-to-path / key-to-PE address generation.
* :mod:`repro.core.prune_manager` -- the pruned-pointer stack that recycles
  freed children-block rows.
* :mod:`repro.core.probability_unit` -- the fixed-point occupancy datapath.
* :mod:`repro.core.pe` -- the processing element: leaf update, parent update,
  prune / expand, with per-stage cycle accounting.
* :mod:`repro.core.scheduler` -- the first-level-branch voxel scheduler.
* :mod:`repro.core.raycast_unit` -- the ray-casting front end and voxel queues.
* :mod:`repro.core.query_unit` -- the voxel query service.
* :mod:`repro.core.interconnect` -- AXI-Lite register file and DMA model.
* :mod:`repro.core.accelerator` -- the top level tying everything together.
* :mod:`repro.core.timing` -- cycle breakdown containers.
* :mod:`repro.core.verification` -- equivalence checking against the software
  OctoMap golden model.
"""

from repro.core.accelerator import AcceleratorStatistics, OMUAccelerator
from repro.core.address_gen import AddressGenerator
from repro.core.config import DEFAULT_CONFIG, OMUConfig, TimingParams
from repro.core.fixedpoint import DEFAULT_FORMAT, FixedPointFormat, QuantizedOccupancyParams
from repro.core.pe import ProcessingElement
from repro.core.probability_unit import ProbabilityUpdateUnit
from repro.core.prune_manager import PruneAddressManager
from repro.core.query_unit import QueryResult, VoxelQueryUnit
from repro.core.raycast_unit import RayCastingUnit, VoxelQueue
from repro.core.scheduler import VoxelScheduler, VoxelUpdateRequest
from repro.core.timing import CycleBreakdown, ScanTiming
from repro.core.treemem import (
    BankedTreeMemory,
    ChildStatus,
    MemoryCapacityError,
    NULL_POINTER,
    TreeMemEntry,
    TreeMemBank,
)
from repro.core.verification import (
    EquivalenceReport,
    build_reference_tree,
    compare_trees,
    verify_against_software,
)

__all__ = [
    "AcceleratorStatistics",
    "AddressGenerator",
    "BankedTreeMemory",
    "ChildStatus",
    "CycleBreakdown",
    "DEFAULT_CONFIG",
    "DEFAULT_FORMAT",
    "EquivalenceReport",
    "FixedPointFormat",
    "MemoryCapacityError",
    "NULL_POINTER",
    "OMUAccelerator",
    "OMUConfig",
    "ProbabilityUpdateUnit",
    "ProcessingElement",
    "PruneAddressManager",
    "QuantizedOccupancyParams",
    "QueryResult",
    "RayCastingUnit",
    "ScanTiming",
    "TimingParams",
    "TreeMemBank",
    "TreeMemEntry",
    "VoxelQueryUnit",
    "VoxelQueue",
    "VoxelScheduler",
    "VoxelUpdateRequest",
    "build_reference_tree",
    "compare_trees",
    "verify_against_software",
]
