"""The OMU accelerator top level.

:class:`OMUAccelerator` wires together the front end (host interface, ray
casting, voxel queues), the voxel scheduler, the PE array and the voxel query
unit (paper Fig. 7) and exposes the operations the evaluation needs:

* :meth:`process_scan` -- integrate one point cloud (ray casting + parallel
  voxel updates) and return the scan's cycle accounting;
* :meth:`process_scan_graph` -- integrate a whole dataset and accumulate the
  map-level timing used by Tables III-V;
* :meth:`query` -- the voxel query service;
* :meth:`export_octree` -- read the distributed map back into a software
  :class:`~repro.octomap.octree.OccupancyOcTree` (verification / host use);
* :meth:`statistics` -- memory, utilisation and access counts feeding the
  energy model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.address_gen import AddressGenerator
from repro.core.config import DEFAULT_CONFIG, OMUConfig
from repro.core.interconnect import HostInterface
from repro.core.pe import ProcessingElement
from repro.core.query_unit import QueryResult, VoxelQueryUnit
from repro.core.raycast_unit import RayCastingUnit
from repro.core.scheduler import VoxelScheduler, VoxelUpdateRequest
from repro.core.timing import CycleBreakdown, ScanTiming
from repro.octomap.counters import OperationCounters, OperationKind
from repro.octomap.logodds import probability as logodds_to_probability
from repro.octomap.octree import OccupancyOcTree
from repro.octomap.pointcloud import PointCloud, ScanGraph

__all__ = ["OMUAccelerator", "AcceleratorStatistics"]


@dataclass
class AcceleratorStatistics:
    """Aggregate statistics of an accelerator run (feeds the energy model).

    Attributes:
        total_cycles: end-to-end critical-path cycles accumulated so far.
        voxel_updates: leaf updates performed across all PEs.
        sram_reads / sram_writes: single-bank SRAM accesses (row accesses
            count as eight) -- the dominant energy term (91 % in the paper).
        nodes_stored: live tree nodes across all PEs.
        memory_utilization: fraction of the total SRAM holding live nodes.
        prune_reuse_fraction: share of children-block allocations served from
            the prune-address stacks.
        per_pe_cycles: busy cycles of each PE (load balance view).
    """

    total_cycles: int = 0
    voxel_updates: int = 0
    sram_reads: int = 0
    sram_writes: int = 0
    nodes_stored: int = 0
    memory_utilization: float = 0.0
    prune_reuse_fraction: float = 0.0
    per_pe_cycles: Dict[int, int] = field(default_factory=dict)


class OMUAccelerator:
    """Functional + cycle-approximate model of the OMU accelerator."""

    def __init__(self, config: OMUConfig = DEFAULT_CONFIG) -> None:
        if config.num_pes > 8:
            raise ValueError(
                "the first-level-branch partitioning supports at most 8 PEs; "
                f"got num_pes={config.num_pes}"
            )
        self.config = config
        self.address_generator = AddressGenerator(
            config.resolution_m, config.tree_depth, config.num_pes
        )
        self.pes: List[ProcessingElement] = [
            ProcessingElement(pe_id, config) for pe_id in range(config.num_pes)
        ]
        self.scheduler = VoxelScheduler(config, self.address_generator)
        self.raycaster = RayCastingUnit(config, self.address_generator)
        self.query_unit = VoxelQueryUnit(config, self.address_generator, self.pes)
        self.host = HostInterface()
        self.map_timing = ScanTiming()
        self.scans_processed = 0

    # ------------------------------------------------------------------
    # Map building
    # ------------------------------------------------------------------
    def process_scan(
        self,
        cloud: PointCloud,
        origin: Sequence[float],
        max_range: float = -1.0,
    ) -> ScanTiming:
        """Integrate one sensor scan and return its timing summary."""
        self.host.configure(self.config.resolution_m, max_range, origin)
        self.host.stream_points(len(cloud))
        self.host.start()

        cast = self.raycaster.cast_scan(cloud, origin, max_range=max_range)
        batch = self.scheduler.schedule(cast.free_keys, cast.occupied_keys)
        timing = self._execute_batch(batch, cast.cycles)

        self.map_timing.merge(timing)
        self.scans_processed += 1
        self.host.finish(timing.critical_path_cycles())
        return timing

    def apply_update_batch(self, requests: Sequence["VoxelUpdateRequest"]) -> ScanTiming:
        """Apply an ordered stream of pre-computed voxel updates.

        The serving layer ray-casts once in its shared front end and then
        dispatches per-shard key streams to worker accelerators; this entry
        point skips the on-chip ray caster and feeds the stream straight into
        the voxel scheduler.  Stream order is preserved per voxel, so a batch
        spanning several scans produces exactly the map that sequential
        :meth:`process_scan` calls would.
        """
        batch = self.scheduler.schedule_requests(requests)
        timing = self._execute_batch(batch, raycast_cycles=0)
        self.map_timing.merge(timing)
        return timing

    def _execute_batch(self, batch, raycast_cycles: int) -> ScanTiming:
        """Run one scheduled batch on the PE array and account its cycles."""
        per_pe_cycles: Dict[int, int] = {}
        per_pe_breakdowns: Dict[int, CycleBreakdown] = {}
        for pe_id, queue in batch.per_pe.items():
            pe = self.pes[pe_id]
            before = pe.stats.breakdown.copy()
            cycles = 0
            for request in queue:
                cycles += pe.update_voxel(request.key, request.occupied)
            per_pe_cycles[pe_id] = cycles
            delta = pe.stats.breakdown.copy()
            for stage, value in before.cycles.items():
                delta.cycles[stage] = delta.cycles.get(stage, 0) - value
            per_pe_breakdowns[pe_id] = delta

        timing = ScanTiming(
            scheduler_cycles=batch.issue_cycles,
            raycast_cycles=raycast_cycles,
            pe_cycles_max=max(per_pe_cycles.values()) if per_pe_cycles else 0,
            pe_cycles_total=sum(per_pe_cycles.values()),
            voxel_updates=batch.total_updates(),
        )
        timing.breakdown = self._accelerator_breakdown(
            per_pe_cycles, per_pe_breakdowns, raycast_cycles
        )
        return timing

    def _accelerator_breakdown(
        self,
        per_pe_cycles: Dict[int, int],
        per_pe_breakdowns: Dict[int, CycleBreakdown],
        raycast_cycles: int,
    ) -> CycleBreakdown:
        """Accelerator-level breakdown: the critical-path PE's stage mix.

        The paper's Fig. 10 plots the share of each stage in the accelerator's
        runtime; since the PEs run in parallel, the relevant mix is that of
        the busiest PE (the critical path).  Ray casting is hidden behind the
        update pipeline, so only its *excess* over the busiest PE shows up.
        """
        breakdown = CycleBreakdown()
        if not per_pe_cycles:
            return breakdown
        busiest = max(per_pe_cycles, key=lambda pe_id: per_pe_cycles[pe_id])
        breakdown.merge(per_pe_breakdowns[busiest])
        excess_raycast = max(0, raycast_cycles - per_pe_cycles[busiest])
        if excess_raycast:
            breakdown.charge(OperationKind.RAY_CASTING, excess_raycast)
        return breakdown

    def process_scan_graph(
        self,
        graph: ScanGraph,
        max_range: float = -1.0,
    ) -> ScanTiming:
        """Integrate every scan of a dataset; returns the accumulated timing."""
        total = ScanTiming()
        for scan in graph:
            timing = self.process_scan(scan.world_cloud(), scan.origin(), max_range=max_range)
            total.merge(timing)
        return total

    # ------------------------------------------------------------------
    # Whole-map (pipelined) latency accounting
    # ------------------------------------------------------------------
    def map_critical_path_cycles(self) -> int:
        """End-to-end cycles for everything processed so far, with pipelining.

        The free / occupied voxel queues decouple the ray-casting front end
        and the voxel scheduler from the PE array, so a PE left idle by one
        scan's spatial distribution immediately receives work from the next
        scan -- there is no barrier at scan boundaries.  The whole-map latency
        is therefore the serial front-end time plus the *busiest PE's total*
        busy cycles (overlapped with the total ray-casting time), rather than
        the sum of per-scan maxima that :attr:`map_timing` would give.  This
        is the latency the Tables III-V extrapolation uses.
        """
        busiest_pe = max((pe.busy_cycles() for pe in self.pes), default=0)
        parallel_section = max(busiest_pe, self.map_timing.raycast_cycles)
        return self.map_timing.scheduler_cycles + parallel_section

    def map_cycles_per_update(self) -> float:
        """Effective whole-map cycles per voxel update (pipelined accounting)."""
        if self.map_timing.voxel_updates == 0:
            return 0.0
        return self.map_critical_path_cycles() / self.map_timing.voxel_updates

    def map_parallel_speedup(self) -> float:
        """Work / critical-path ratio achieved by the PE array over the map."""
        total_work = sum(pe.busy_cycles() for pe in self.pes)
        busiest = max((pe.busy_cycles() for pe in self.pes), default=0)
        if busiest == 0:
            return 1.0
        return total_work / busiest

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, x: float, y: float, z: float) -> QueryResult:
        """Occupancy query for the voxel containing ``(x, y, z)``."""
        return self.query_unit.query(x, y, z)

    def classify(self, x: float, y: float, z: float) -> str:
        """Shorthand returning just the occupancy status string."""
        return self.query(x, y, z).status

    # ------------------------------------------------------------------
    # Map read-back and statistics
    # ------------------------------------------------------------------
    def export_octree(self) -> OccupancyOcTree:
        """Rebuild a software octree from the distributed PE memories.

        The exported tree uses the accelerator's quantised occupancy
        parameters so its values live on the same fixed-point grid.
        """
        quantized = self.config.quantized_params()
        tree = OccupancyOcTree(
            self.config.resolution_m,
            tree_depth=self.config.tree_depth,
            params=quantized.as_float_params(),
        )
        fmt = self.config.fixed_point
        for pe in self.pes:
            for node in pe.export_nodes():
                if not node.is_leaf:
                    continue
                log_odds = fmt.to_value(node.probability_raw)
                key = self._path_to_key(node.path)
                if len(node.path) == self.config.tree_depth:
                    # Propagation is deferred to one whole-tree pass below;
                    # per-leaf propagation would make the export quadratic.
                    tree.set_node_log_odds(key, log_odds, propagate=False)
                else:
                    # Homogeneous (pruned) region: replay it as the software
                    # tree's pruned representation by writing one child per
                    # octant at the next level down and letting prune() fold
                    # them back; cheaper: write the covering node directly.
                    self._write_coarse_leaf(tree, node.path, log_odds)
        tree.update_inner_occupancy()
        tree.prune()
        return tree

    def _write_coarse_leaf(self, tree: OccupancyOcTree, path, log_odds: float) -> None:
        """Materialise a pruned homogeneous region inside a software tree."""
        node = tree.root
        if node is None:
            from repro.octomap.node import OcTreeNode

            tree._root = OcTreeNode(0.0)
            tree._num_nodes = 1
            node = tree._root
        for child_index in path:
            if not node.child_exists(child_index):
                node.create_child(child_index, 0.0)
                tree._num_nodes += 1
            node = node.child(child_index)
        node.log_odds = tree.params.clamp(log_odds)
        node.delete_children()
        # No propagation here: export_octree runs one whole-tree
        # update_inner_occupancy() after all leaves (fine and coarse) are
        # written; a per-leaf pass would make pruned-map exports quadratic.

    def _path_to_key(self, path) -> "OcTreeKey":
        from repro.octomap.keys import OcTreeKey

        depth = self.config.tree_depth
        kx = ky = kz = 0
        for level, child_index in enumerate(path):
            bit = depth - 1 - level
            kx |= ((child_index >> 0) & 1) << bit
            ky |= ((child_index >> 1) & 1) << bit
            kz |= ((child_index >> 2) & 1) << bit
        if len(path) < depth:
            half = 1 << (depth - len(path) - 1)
            kx += half
            ky += half
            kz += half
        return OcTreeKey(kx, ky, kz)

    def load_octree(self, tree: OccupancyOcTree) -> None:
        """Rebuild the PE memories from a software octree (snapshot restore).

        The inverse of :meth:`export_octree`: every node of ``tree`` becomes
        a TreeMem entry on the PE owning its first-level branch, with the
        exact fixed-point raw value the export quantised it from (16-bit raws
        round-trip float32 losslessly, so serialize -> deserialize -> restore
        is bit-exact).  The PE array prunes eagerly under the same
        all-eight-equal-leaves rule the software tree uses, so the pruned
        tree maps 1:1 onto the PE node representation; a leaf above the
        finest depth is restored as a pruned homogeneous entry (NULL pointer,
        all eight tags carrying its classification).

        Restoration targets a *fresh* accelerator only -- cycle counters and
        access statistics restart at zero (they describe the new lifetime,
        not the snapshotted one's).
        """
        if any(pe._local_roots for pe in self.pes):
            raise ValueError(
                "load_octree requires a freshly constructed accelerator "
                "(this one already holds map state)"
            )
        if tree.resolution != self.config.resolution_m:
            raise ValueError(
                f"snapshot resolution {tree.resolution} does not match the "
                f"accelerator's {self.config.resolution_m}"
            )
        if tree.tree_depth != self.config.tree_depth:
            raise ValueError(
                f"snapshot tree depth {tree.tree_depth} does not match the "
                f"accelerator's {self.config.tree_depth}"
            )
        root = tree.root
        if root is None:
            return
        if not root.has_children():
            # The whole map pruned to a single root leaf: re-materialise the
            # eight first-level branches as homogeneous pruned leaves.
            for branch in range(8):
                self._load_branch(branch, root)
            return
        for branch, child in root.children():
            self._load_branch(branch, child)

    def _load_branch(self, branch: int, node) -> None:
        """Restore one first-level branch subtree onto its owning PE."""
        pe = self.pes[branch % self.config.num_pes]
        entry = self._restore_entry(pe, node, depth=1)
        pe.memory.write_entry(0, branch, entry)
        pe._local_roots[branch] = branch

    def _restore_entry(self, pe, node, depth: int) -> "TreeMemEntry":
        """Build (and recursively store) the TreeMem image of one tree node."""
        from repro.core.treemem import NULL_POINTER, ChildStatus, TreeMemEntry

        fmt = self.config.fixed_point
        raw = fmt.to_raw(node.log_odds)
        entry = TreeMemEntry(probability_raw=raw)
        if not node.has_children():
            if depth < self.config.tree_depth:
                # Pruned homogeneous region: same representation the PE's
                # own pruning pass leaves behind (NULL pointer, all eight
                # tags set to the node's classification).
                status = pe.probability_unit.classify(raw)
                entry.child_tags = [status] * 8
            return entry
        row = pe.allocator.allocate_row()
        entry.pointer = row
        children = [None] * 8
        for index, child in node.children():
            child_entry = self._restore_entry(pe, child, depth + 1)
            children[index] = child_entry
            if child_entry.pointer != NULL_POINTER:
                entry.set_tag(index, ChildStatus.INNER)
            else:
                entry.set_tag(
                    index, pe.probability_unit.classify(child_entry.probability_raw)
                )
        pe.memory.write_row(row, children)
        return entry

    def counters(self) -> OperationCounters:
        """Merged functional operation counters of all PEs and the ray caster."""
        merged = OperationCounters()
        merged.merge(self.raycaster.counters)
        for pe in self.pes:
            merged.merge(pe.counters)
        return merged

    def statistics(self) -> AcceleratorStatistics:
        """Aggregate statistics of the run so far (feeds the energy model)."""
        stats = AcceleratorStatistics()
        stats.total_cycles = self.map_critical_path_cycles()
        stats.voxel_updates = self.map_timing.voxel_updates
        total_allocations = 0
        total_reused = 0
        for pe in self.pes:
            stats.sram_reads += pe.memory.total_reads()
            stats.sram_writes += pe.memory.total_writes()
            stats.nodes_stored += pe.memory.occupied_entries()
            stats.per_pe_cycles[pe.pe_id] = pe.busy_cycles()
            total_allocations += pe.allocator.allocations
            total_reused += pe.allocator.reused_allocations
        capacity = self.config.node_capacity
        stats.memory_utilization = stats.nodes_stored / capacity if capacity else 0.0
        stats.prune_reuse_fraction = total_reused / total_allocations if total_allocations else 0.0
        return stats

    def elapsed_seconds(self) -> float:
        """Wall-clock time of the modelled run at the configured frequency."""
        return self.config.cycles_to_seconds(self.map_critical_path_cycles())

    def occupancy_probability_of(self, raw: int) -> float:
        """Convert a raw fixed-point log-odds value to a probability."""
        return logodds_to_probability(self.config.fixed_point.to_value(raw))
