"""Address generation: from voxel keys to per-level child indices.

The OMU address-generation module (Fig. 4, block "Addr Gen") turns the input
voxel coordinate into the sequence of child indices that guides the TreeMem
accesses at each tree depth.  Because the OcTreeKey bits directly encode the
root-to-leaf path (one bit per axis per level), the hardware is a simple bit
multiplexer; this model reuses :class:`repro.octomap.keys.OcTreeKey` and adds
the PE-routing view of the same bits:

* level 0 (the root's child choice) selects the **PE** that owns the voxel --
  this is the first-level tree-branch partitioning of Section IV-A;
* levels 1 .. depth-1 select the banks/rows walked inside that PE.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.octomap.keys import KeyConverter, OcTreeKey

__all__ = ["AddressGenerator"]


class AddressGenerator:
    """Derives PE routing and per-level child indices from voxel keys."""

    def __init__(self, resolution_m: float, tree_depth: int, num_pes: int) -> None:
        if num_pes < 1:
            raise ValueError("num_pes must be at least 1")
        self._converter = KeyConverter(resolution_m, tree_depth)
        self._tree_depth = tree_depth
        self._num_pes = num_pes

    @property
    def converter(self) -> KeyConverter:
        """The coordinate <-> key converter used by the accelerator."""
        return self._converter

    @property
    def tree_depth(self) -> int:
        """Tree depth of the mapped octree."""
        return self._tree_depth

    def key_for_point(self, x: float, y: float, z: float) -> OcTreeKey:
        """Discretise a metric point into its voxel key."""
        return self._converter.coord_to_key(x, y, z)

    def branch_id(self, key: OcTreeKey) -> int:
        """First-level tree branch (0..7) of a voxel -- the partitioning index."""
        return key.child_index(0, self._tree_depth)

    def pe_for_key(self, key: OcTreeKey) -> int:
        """PE that owns the voxel.

        With the paper's 8 PEs this is exactly the first-level branch.  For
        the PE-count ablation, fewer PEs each own several branches
        (``branch % num_pes``); more than 8 PEs additionally split on the
        second-level branch so the mapping stays balanced.
        """
        branch = self.branch_id(key)
        if self._num_pes <= 8:
            return branch % self._num_pes
        second = key.child_index(1, self._tree_depth)
        return (branch * 8 + second) % self._num_pes

    def shard_prefix(self, key: OcTreeKey, prefix_levels: int = 1) -> Tuple[int, ...]:
        """Octree-key prefix used for spatial sharding.

        The first ``prefix_levels`` child indices of the root-to-leaf path
        identify the subtree a voxel lives in; the serving layer's shard
        router hashes this prefix to pick the map worker that owns the voxel.
        One level distinguishes the 8 first-level branches (the same
        partitioning the PE array uses), two levels distinguish 64 subtrees,
        and so on.
        """
        if not 1 <= prefix_levels <= self._tree_depth:
            raise ValueError(
                f"prefix_levels must be in [1, {self._tree_depth}], got {prefix_levels}"
            )
        return key.path(self._tree_depth, max_level=prefix_levels)

    def shard_index(self, key: OcTreeKey, num_shards: int, prefix_levels: int = 1) -> int:
        """Shard (0..num_shards-1) owning a voxel, from its key prefix.

        The prefix is folded into a subtree number and reduced modulo the
        shard count, so any ``num_shards >= 1`` yields a total, deterministic
        and spatially coherent partition of the key space.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        subtree = 0
        for child_index in self.shard_prefix(key, prefix_levels):
            subtree = subtree * 8 + child_index
        return subtree % num_shards

    def shard_indices(self, keys: np.ndarray, num_shards: int, prefix_levels: int = 1) -> np.ndarray:
        """Array counterpart of :meth:`shard_index` for ``(N, 3)`` key components.

        Folds the first ``prefix_levels`` child indices of every key into a
        subtree number and reduces modulo the shard count -- the same
        arithmetic as the scalar path, so ``shard_indices(keys)[i] ==
        shard_index(OcTreeKey(*keys[i]))`` for every row.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if not 1 <= prefix_levels <= self._tree_depth:
            raise ValueError(
                f"prefix_levels must be in [1, {self._tree_depth}], got {prefix_levels}"
            )
        keys = np.asarray(keys, dtype=np.int64)
        subtree = np.zeros(keys.shape[0], dtype=np.int64)
        for level in range(prefix_levels):
            bit = self._tree_depth - 1 - level
            child = (
                ((keys[:, 0] >> bit) & 1)
                | (((keys[:, 1] >> bit) & 1) << 1)
                | (((keys[:, 2] >> bit) & 1) << 2)
            )
            # 8**16 == 2**48 fits comfortably in int64, so no overflow even
            # at the full 16-level prefix.
            subtree = subtree * 8 + child
        return subtree % num_shards

    def child_path(self, key: OcTreeKey) -> Tuple[int, ...]:
        """Child indices from below the root down to the leaf.

        Index 0 of the returned tuple selects the child of the PE's local
        root (a depth-1 node); the last index selects the leaf voxel.
        """
        return key.path(self._tree_depth)[1:]

    def full_path(self, key: OcTreeKey) -> Tuple[int, ...]:
        """Child indices from the root down to the leaf (including level 0)."""
        return key.path(self._tree_depth)

    def keys_for_points(self, points: Sequence[Sequence[float]]) -> Tuple[OcTreeKey, ...]:
        """Vectorised convenience wrapper over :meth:`key_for_point`."""
        return tuple(self.key_for_point(*point) for point in points)
