"""Configuration of the OMU accelerator model.

:class:`OMUConfig` gathers every architectural and physical parameter of the
accelerator described in the paper:

* **Organisation** -- 8 PE units, 8 TreeMem banks per PE, 32 kB per bank
  (256 kB per PE, 2 MB total), 64-bit entries (Section V, Fig. 5/7/8).
* **Operating point** -- 1 GHz clock, 0.8 V, commercial 12 nm process
  (Section VI-A).
* **Map parameters** -- tree depth 16, the evaluation resolution of 0.2 m,
  OctoMap's default occupancy parameters quantised to the 16-bit fixed-point
  format of the TreeMem entry.
* **Timing parameters** -- cycle costs of the primitive PE operations used by
  the cycle-approximate model (single-bank read/write, full-row banked
  access, the probability-update ALU, the prune-stack push/pop and the
  scheduler issue).  These model a simple in-order pipeline: one SRAM access
  per cycle per bank, one ALU operation per cycle.

The configuration object is immutable; experiments that sweep a parameter
(for instance the PE count ablation) create modified copies via
:func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.fixedpoint import DEFAULT_FORMAT, FixedPointFormat, QuantizedOccupancyParams
from repro.octomap.logodds import DEFAULT_PARAMS, OccupancyParams

__all__ = ["OMUConfig", "TimingParams", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class TimingParams:
    """Cycle costs of the primitive accelerator operations.

    All values are in clock cycles at the configured frequency.  The defaults
    model the microarchitecture of Section IV: SRAM banks are single-cycle,
    all eight banks of a row can be accessed in the same cycle (the 8x memory
    bandwidth claim), the probability update is a one-cycle fixed-point add
    with clamping, and the prune address manager is a single-cycle stack.
    """

    bank_read_cycles: int = 1
    bank_write_cycles: int = 1
    row_read_cycles: int = 1
    row_write_cycles: int = 1
    alu_cycles: int = 1
    prune_stack_cycles: int = 1
    scheduler_issue_cycles: int = 1
    ray_step_cycles: int = 1
    query_issue_cycles: int = 1
    dma_word_cycles: int = 1

    def __post_init__(self) -> None:
        for name in (
            "bank_read_cycles",
            "bank_write_cycles",
            "row_read_cycles",
            "row_write_cycles",
            "alu_cycles",
            "prune_stack_cycles",
            "scheduler_issue_cycles",
            "ray_step_cycles",
            "query_issue_cycles",
            "dma_word_cycles",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")


@dataclass(frozen=True)
class OMUConfig:
    """Full parameterisation of one OMU accelerator instance."""

    # --- organisation (paper Section V) ---
    num_pes: int = 8
    banks_per_pe: int = 8
    bank_kilobytes: int = 32
    entry_bytes: int = 8

    # --- operating point (paper Section VI-A) ---
    clock_hz: float = 1.0e9
    voltage_v: float = 0.8
    technology_nm: int = 12

    # --- map parameters ---
    tree_depth: int = 16
    resolution_m: float = 0.2
    occupancy_params: OccupancyParams = DEFAULT_PARAMS
    fixed_point: FixedPointFormat = DEFAULT_FORMAT

    # --- behaviour ---
    timing: TimingParams = field(default_factory=TimingParams)
    strict_capacity: bool = True

    def __post_init__(self) -> None:
        if self.num_pes < 1:
            raise ValueError("num_pes must be at least 1")
        if self.banks_per_pe != 8:
            # The data structure stores the 8 children of one node across the
            # banks of one row; other bank counts need a different layout.
            # The bank-parallelism ablation instead varies how many banks can
            # be accessed per cycle (see `row_read_cycles`).
            raise ValueError("banks_per_pe is fixed to 8 by the child-per-bank layout")
        if self.bank_kilobytes < 1:
            raise ValueError("bank_kilobytes must be at least 1")
        if self.entry_bytes != 8:
            raise ValueError("entry_bytes is fixed to 8 (the 64-bit packed entry)")
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if not 1 <= self.tree_depth <= 16:
            raise ValueError("tree_depth must be in [1, 16]")
        if self.resolution_m <= 0:
            raise ValueError("resolution_m must be positive")

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------
    @property
    def entries_per_bank(self) -> int:
        """Number of 64-bit entries one bank can hold (rows per PE)."""
        return (self.bank_kilobytes * 1024) // self.entry_bytes

    @property
    def pe_memory_bytes(self) -> int:
        """SRAM capacity of one PE in bytes (256 kB in the paper)."""
        return self.banks_per_pe * self.bank_kilobytes * 1024

    @property
    def total_memory_bytes(self) -> int:
        """Total SRAM capacity of the accelerator (2 MB in the paper)."""
        return self.num_pes * self.pe_memory_bytes

    @property
    def node_capacity(self) -> int:
        """Maximum number of tree nodes the accelerator can store."""
        return self.num_pes * self.banks_per_pe * self.entries_per_bank

    @property
    def clock_period_s(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.clock_hz

    def cycles_to_seconds(self, cycles: int) -> float:
        """Convert a cycle count to seconds at the configured frequency."""
        return cycles * self.clock_period_s

    def quantized_params(self) -> QuantizedOccupancyParams:
        """The occupancy parameters quantised to the TreeMem fixed-point grid."""
        return QuantizedOccupancyParams(self.occupancy_params, self.fixed_point)

    def with_pe_count(self, num_pes: int) -> "OMUConfig":
        """Copy of this configuration with a different PE count (ablations)."""
        return replace(self, num_pes=num_pes)

    def with_resolution(self, resolution_m: float) -> "OMUConfig":
        """Copy of this configuration with a different map resolution."""
        return replace(self, resolution_m=resolution_m)

    def with_bank_kilobytes(self, bank_kilobytes: int) -> "OMUConfig":
        """Copy of this configuration with larger or smaller SRAM banks."""
        return replace(self, bank_kilobytes=bank_kilobytes)

    def with_timing(self, timing: TimingParams) -> "OMUConfig":
        """Copy of this configuration with different primitive cycle costs."""
        return replace(self, timing=timing)


DEFAULT_CONFIG = OMUConfig()
"""The configuration evaluated in the paper (8 PEs, 256 kB each, 1 GHz, 12 nm)."""
