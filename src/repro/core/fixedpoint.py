"""Fixed-point arithmetic for the on-chip log-odds representation.

The OMU TreeMem entry stores each node's occupancy as a **16-bit fixed-point
log-odds value** (paper Fig. 5, bits [15:0]).  The paper states the format was
"chosen to have zero loss from the floating-point maps"; this is achievable
because the clamped log-odds value is always a small integer combination of
the hit / miss increments, so once those increments are themselves quantised
to the fixed-point grid the whole map lives exactly on that grid.

:class:`FixedPointFormat` describes a signed two's-complement Qm.f format and
provides conversion and saturation helpers; :class:`QuantizedOccupancyParams`
wraps the occupancy parameters of the software model with all values snapped
to the grid so that the accelerator and a software tree configured with the
quantised parameters produce bit-identical maps (this is what the
verification harness checks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.octomap.logodds import OccupancyParams

__all__ = ["FixedPointFormat", "QuantizedOccupancyParams", "DEFAULT_FORMAT"]


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed two's-complement fixed-point format with ``total_bits`` bits.

    ``fraction_bits`` of the word are fractional, the rest (minus the sign)
    are integer bits.  The OMU default is Q5.10 in a 16-bit word: range
    [-32, +32) with a resolution of about 0.001, comfortably covering the
    clamped log-odds range [-2.0, 3.5] used by OctoMap.
    """

    total_bits: int = 16
    fraction_bits: int = 10

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise ValueError("total_bits must be at least 2 (sign + magnitude)")
        if not 0 <= self.fraction_bits < self.total_bits:
            raise ValueError(
                "fraction_bits must be in [0, total_bits); "
                f"got {self.fraction_bits} for a {self.total_bits}-bit word"
            )

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def min_raw(self) -> int:
        """Smallest representable raw (integer) value."""
        return -(1 << (self.total_bits - 1))

    @property
    def max_raw(self) -> int:
        """Largest representable raw (integer) value."""
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.min_raw * self.scale

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_raw * self.scale

    def to_raw(self, value: float) -> int:
        """Quantise a real value to the nearest representable raw integer.

        Values outside the representable range saturate (as the hardware
        adder would).
        """
        raw = int(round(value / self.scale))
        if raw < self.min_raw:
            return self.min_raw
        if raw > self.max_raw:
            return self.max_raw
        return raw

    def to_value(self, raw: int) -> float:
        """Convert a raw integer back to its real value."""
        self._check_raw(raw)
        return raw * self.scale

    def quantize(self, value: float) -> float:
        """Round-trip a real value through the fixed-point grid."""
        return self.to_value(self.to_raw(value))

    def saturating_add(self, raw_a: int, raw_b: int) -> int:
        """Add two raw values with saturation (the probability-update adder)."""
        self._check_raw(raw_a)
        self._check_raw(raw_b)
        total = raw_a + raw_b
        if total < self.min_raw:
            return self.min_raw
        if total > self.max_raw:
            return self.max_raw
        return total

    def to_unsigned_word(self, raw: int) -> int:
        """Encode a raw value as an unsigned ``total_bits``-wide word.

        This is the bit pattern stored in the TreeMem entry's probability
        field.
        """
        self._check_raw(raw)
        return raw & ((1 << self.total_bits) - 1)

    def from_unsigned_word(self, word: int) -> int:
        """Decode an unsigned word back into a signed raw value."""
        mask = (1 << self.total_bits) - 1
        if not 0 <= word <= mask:
            raise ValueError(f"word {word} does not fit in {self.total_bits} bits")
        sign_bit = 1 << (self.total_bits - 1)
        if word & sign_bit:
            return word - (1 << self.total_bits)
        return word

    def _check_raw(self, raw: int) -> None:
        if not self.min_raw <= raw <= self.max_raw:
            raise ValueError(
                f"raw value {raw} outside the representable range "
                f"[{self.min_raw}, {self.max_raw}]"
            )


DEFAULT_FORMAT = FixedPointFormat()
"""The 16-bit Q5.10 format of the OMU TreeMem entry."""


class QuantizedOccupancyParams:
    """Occupancy parameters snapped to a fixed-point grid.

    Exposes both raw (integer) and quantised-float views of the hit / miss
    increments, clamping bounds and occupancy threshold.  Constructing an
    :class:`~repro.octomap.logodds.OccupancyParams` via
    :meth:`as_float_params` yields a software tree that matches the
    accelerator bit for bit, because every update stays on the grid.
    """

    def __init__(
        self,
        params: OccupancyParams,
        fmt: FixedPointFormat = DEFAULT_FORMAT,
    ) -> None:
        self._float_params = params
        self._format = fmt
        self.raw_hit = fmt.to_raw(params.log_odds_hit)
        self.raw_miss = fmt.to_raw(params.log_odds_miss)
        self.raw_clamp_min = fmt.to_raw(params.clamp_min)
        self.raw_clamp_max = fmt.to_raw(params.clamp_max)
        self.raw_threshold = fmt.to_raw(params.occupancy_threshold_log_odds)

    @property
    def format(self) -> FixedPointFormat:
        """The fixed-point format the parameters are quantised to."""
        return self._format

    @property
    def source_params(self) -> OccupancyParams:
        """The original floating-point parameters."""
        return self._float_params

    def clamp_raw(self, raw: int) -> int:
        """Clamp a raw log-odds value to the quantised clamping bounds."""
        if raw < self.raw_clamp_min:
            return self.raw_clamp_min
        if raw > self.raw_clamp_max:
            return self.raw_clamp_max
        return raw

    def update_raw(self, raw: int, hit: bool) -> int:
        """One clamped Bayesian update entirely in raw fixed point."""
        delta = self.raw_hit if hit else self.raw_miss
        return self.clamp_raw(self._format.saturating_add(raw, delta))

    def is_occupied_raw(self, raw: int) -> bool:
        """Occupancy classification on the raw value."""
        return raw > self.raw_threshold

    def as_float_params(self) -> OccupancyParams:
        """Equivalent floating-point parameters on the fixed-point grid.

        The returned object can be handed to
        :class:`repro.octomap.octree.OccupancyOcTree` to build a software map
        that agrees exactly with the accelerator.
        """
        fmt = self._format

        def to_probability(raw: int) -> float:
            value = fmt.to_value(raw)
            # Invert the log-odds transform.
            import math

            return 1.0 / (1.0 + math.exp(-value))

        return OccupancyParams(
            prob_hit=to_probability(self.raw_hit),
            prob_miss=to_probability(self.raw_miss),
            clamp_min_probability=to_probability(self.raw_clamp_min),
            clamp_max_probability=to_probability(self.raw_clamp_max),
            occupancy_threshold=to_probability(self.raw_threshold),
        )

    def quantization_error(self) -> float:
        """Largest absolute error introduced by quantising the parameters."""
        fmt = self._format
        params = self._float_params
        pairs = (
            (params.log_odds_hit, self.raw_hit),
            (params.log_odds_miss, self.raw_miss),
            (params.clamp_min, self.raw_clamp_min),
            (params.clamp_max, self.raw_clamp_max),
            (params.occupancy_threshold_log_odds, self.raw_threshold),
        )
        return max(abs(value - fmt.to_value(raw)) for value, raw in pairs)
