"""Host interface: AXI-style configuration registers and DMA stream model.

The OMU is a memory-mapped slave on an AXI bus (Fig. 7): the host CPU
programs a handful of configuration registers through AXI-Lite writes, then
streams point-cloud data into the accelerator (shared memory or DMA) and
reads back status / results.  This module models both sides at the level of
register state and transferred bytes + cycles -- enough to account for the
host-side cost of launching the accelerator and to expose a realistic driver
API to the examples, without simulating bus protocol signalling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["RegisterFile", "DMAEngine", "HostInterface"]

# Register map offsets (word addressed); mirrors the "sets of configuration
# registers" of Section V.
REG_CONTROL = 0x00
REG_STATUS = 0x01
REG_RESOLUTION = 0x02
REG_MAX_RANGE = 0x03
REG_NUM_POINTS = 0x04
REG_ORIGIN_X = 0x05
REG_ORIGIN_Y = 0x06
REG_ORIGIN_Z = 0x07
REG_CYCLES_LOW = 0x08
REG_CYCLES_HIGH = 0x09

CONTROL_START = 0x1
CONTROL_RESET = 0x2
STATUS_IDLE = 0x0
STATUS_BUSY = 0x1
STATUS_DONE = 0x2


class RegisterFile:
    """The accelerator's AXI-Lite accessible configuration registers."""

    def __init__(self) -> None:
        self._registers: Dict[int, int] = {
            REG_CONTROL: 0,
            REG_STATUS: STATUS_IDLE,
            REG_RESOLUTION: 0,
            REG_MAX_RANGE: 0,
            REG_NUM_POINTS: 0,
            REG_ORIGIN_X: 0,
            REG_ORIGIN_Y: 0,
            REG_ORIGIN_Z: 0,
            REG_CYCLES_LOW: 0,
            REG_CYCLES_HIGH: 0,
        }
        self.reads = 0
        self.writes = 0

    def read(self, offset: int) -> int:
        """AXI-Lite register read."""
        self.reads += 1
        if offset not in self._registers:
            raise KeyError(f"no register at offset {offset:#x}")
        return self._registers[offset]

    def write(self, offset: int, value: int) -> None:
        """AXI-Lite register write."""
        self.writes += 1
        if offset not in self._registers:
            raise KeyError(f"no register at offset {offset:#x}")
        if not 0 <= value < (1 << 32):
            raise ValueError(f"register value {value} does not fit in 32 bits")
        self._registers[offset] = value

    def set_status(self, status: int) -> None:
        """Internal status update (not an AXI access)."""
        self._registers[REG_STATUS] = status

    def set_cycle_count(self, cycles: int) -> None:
        """Expose a 64-bit cycle counter through two 32-bit registers."""
        self._registers[REG_CYCLES_LOW] = cycles & 0xFFFFFFFF
        self._registers[REG_CYCLES_HIGH] = (cycles >> 32) & 0xFFFFFFFF


@dataclass
class DMAEngine:
    """Models point-cloud ingress over the AXI-Stream / DMA path.

    The model only tracks moved bytes and the cycles they occupy on the bus
    (``bus_bytes_per_cycle`` wide).  Point-cloud ingress overlaps with the
    ray-casting and update pipeline in the real design, so these cycles are
    informational rather than part of the critical path.
    """

    bus_bytes_per_cycle: int = 8
    bytes_transferred: int = 0
    transfers: int = 0
    cycles: int = field(default=0)

    def transfer(self, num_bytes: int) -> int:
        """Account for one DMA transfer; returns the cycles it occupies."""
        if num_bytes < 0:
            raise ValueError("cannot transfer a negative number of bytes")
        self.transfers += 1
        self.bytes_transferred += num_bytes
        cycles = (num_bytes + self.bus_bytes_per_cycle - 1) // self.bus_bytes_per_cycle
        self.cycles += cycles
        return cycles


class HostInterface:
    """The host-side driver view: program registers, stream data, poll status."""

    POINT_BYTES = 12  # three float32 coordinates per 3D point

    def __init__(self) -> None:
        self.registers = RegisterFile()
        self.dma = DMAEngine()

    def configure(self, resolution_m: float, max_range_m: float, origin) -> None:
        """Program the per-scan configuration registers."""
        self.registers.write(REG_RESOLUTION, int(resolution_m * 1000))  # millimetres
        self.registers.write(REG_MAX_RANGE, max(0, int(max_range_m * 1000)))
        self.registers.write(REG_ORIGIN_X, _to_fixed_mm(origin[0]))
        self.registers.write(REG_ORIGIN_Y, _to_fixed_mm(origin[1]))
        self.registers.write(REG_ORIGIN_Z, _to_fixed_mm(origin[2]))

    def stream_points(self, num_points: int) -> int:
        """Account for streaming a scan's points in; returns DMA cycles."""
        self.registers.write(REG_NUM_POINTS, num_points)
        return self.dma.transfer(num_points * self.POINT_BYTES)

    def start(self) -> None:
        """Kick the accelerator (control register write)."""
        self.registers.write(REG_CONTROL, CONTROL_START)
        self.registers.set_status(STATUS_BUSY)

    def finish(self, cycles: int) -> None:
        """Mark completion and expose the cycle count (accelerator side)."""
        self.registers.set_cycle_count(cycles)
        self.registers.set_status(STATUS_DONE)

    def is_done(self) -> bool:
        """Poll the status register."""
        return self.registers.read(REG_STATUS) == STATUS_DONE


def _to_fixed_mm(value: float) -> int:
    """Encode a signed metric coordinate as millimetres in a 32-bit register."""
    return int(round(value * 1000)) & 0xFFFFFFFF
