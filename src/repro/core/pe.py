"""Processing element (PE): stores and updates one partition of the octree.

Each PE owns the subtree(s) hanging off one (or more) first-level branches of
the global octree (Section IV-A).  Internally it combines:

* a :class:`~repro.core.treemem.BankedTreeMemory` holding the packed 64-bit
  node entries, eight children per row (Section IV-B, Fig. 5);
* a :class:`~repro.core.prune_manager.PruneAddressManager` recycling the rows
  freed by pruning (Section IV-C, Fig. 6);
* a :class:`~repro.core.probability_unit.ProbabilityUpdateUnit` implementing
  the fixed-point occupancy arithmetic.

The PE's local root(s) -- the depth-1 nodes of the global tree -- live in row
0, bank = branch index, so up to eight branches can share one PE (used by the
PE-count ablation).  A voxel update walks down the key path reading one entry
per level, updates the leaf, then walks back up reading each parent's whole
children row in a single banked access, recomputing the max occupancy,
re-deriving the status tags and applying the pruning rule.  Every primitive
action charges cycles to the pipeline stage it belongs to, so the accelerator
reproduces the paper's runtime breakdown (Fig. 10) structurally rather than by
fiat.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.config import OMUConfig
from repro.core.prune_manager import PruneAddressManager
from repro.core.probability_unit import ProbabilityUpdateUnit
from repro.core.treemem import (
    BankedTreeMemory,
    ChildStatus,
    NULL_POINTER,
    TreeMemEntry,
)
from repro.core.timing import CycleBreakdown, PETimingStats
from repro.octomap.counters import OperationCounters, OperationKind
from repro.octomap.keys import OcTreeKey

__all__ = ["ProcessingElement", "ExportedNode"]


class ExportedNode:
    """One node streamed out of a PE when the map is read back.

    Attributes:
        path: child indices from the *global* root down to this node (the
            first element is the first-level branch).
        probability_raw: fixed-point log-odds value of the node.
        is_leaf: True if the node has no children block.
        homogeneous: True if the node is a leaf above the finest depth, i.e.
            it stands for a pruned, uniformly-observed region.
    """

    __slots__ = ("path", "probability_raw", "is_leaf", "homogeneous")

    def __init__(self, path: Tuple[int, ...], probability_raw: int, is_leaf: bool, homogeneous: bool) -> None:
        self.path = path
        self.probability_raw = probability_raw
        self.is_leaf = is_leaf
        self.homogeneous = homogeneous


class ProcessingElement:
    """One OMU processing element."""

    def __init__(self, pe_id: int, config: OMUConfig) -> None:
        self.pe_id = pe_id
        self.config = config
        self.memory = BankedTreeMemory(config.banks_per_pe, config.entries_per_bank)
        self.allocator = PruneAddressManager(config.entries_per_bank, reserved_rows=1)
        self.probability_unit = ProbabilityUpdateUnit(config.quantized_params())
        self.counters = OperationCounters()
        self.stats = PETimingStats(pe_id=pe_id)
        self.query_cycles = 0
        # Which first-level branches have an initialised local root in row 0.
        self._local_roots: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Voxel update (the main datapath)
    # ------------------------------------------------------------------
    def update_voxel(self, key: OcTreeKey, occupied: bool) -> int:
        """Integrate one measurement for one voxel owned by this PE.

        Returns the number of cycles the update consumed on this PE.
        """
        timing = self.config.timing
        breakdown = CycleBreakdown()
        path = key.path(self.config.tree_depth)
        branch = path[0]
        levels = path[1:]

        # --- locate (or create) the local root of this branch ---------------
        root_bank = branch
        if branch not in self._local_roots:
            root_entry = TreeMemEntry(probability_raw=0)
            self.memory.write_entry(0, root_bank, root_entry)
            self._local_roots[branch] = root_bank
            self.counters.node_allocations += 1
            self.stats.bank_writes += 1
            breakdown.charge(OperationKind.UPDATE_LEAF, timing.bank_write_cycles)
        entry = self.memory.read_entry(0, root_bank)
        assert entry is not None
        self.stats.bank_reads += 1
        breakdown.charge(OperationKind.UPDATE_LEAF, timing.bank_read_cycles)

        # --- walk down the key path, allocating / expanding as needed -------
        # trail holds the (row, bank) location of every node on the path so
        # the upward pass knows where to write the parents back.
        trail: List[Tuple[int, int, TreeMemEntry]] = [(0, root_bank, entry)]
        current = entry
        current_row, current_bank = 0, root_bank

        for child_index in levels:
            child_entry, child_row = self._descend(
                current, current_row, current_bank, child_index, breakdown
            )
            trail.append((child_row, child_index, child_entry))
            current = child_entry
            current_row, current_bank = child_row, child_index

        # --- leaf update (paper eq. (2)) -------------------------------------
        leaf_row, leaf_bank, leaf_entry = trail[-1]
        leaf_entry.probability_raw = self.probability_unit.update_leaf(
            leaf_entry.probability_raw, occupied
        )
        self.memory.write_entry(leaf_row, leaf_bank, leaf_entry)
        self.counters.leaf_updates += 1
        self.stats.bank_writes += 1
        breakdown.charge(
            OperationKind.UPDATE_LEAF, timing.alu_cycles + timing.bank_write_cycles
        )

        # --- upward pass: parent update (eq. (3)) and pruning ---------------
        for level in range(len(trail) - 2, -1, -1):
            parent_row, parent_bank, parent_entry = trail[level]
            self._update_parent(parent_entry, breakdown)
            self.memory.write_entry(parent_row, parent_bank, parent_entry)
            self.stats.bank_writes += 1
            breakdown.charge(OperationKind.UPDATE_PARENTS, timing.bank_write_cycles)

        self.stats.breakdown.merge(breakdown)
        self.stats.voxel_updates += 1
        self.counters.extra["pe_updates"] = self.counters.extra.get("pe_updates", 0) + 1
        return breakdown.total()

    def _descend(
        self,
        parent: TreeMemEntry,
        parent_row: int,
        parent_bank: int,
        child_index: int,
        breakdown: CycleBreakdown,
    ) -> Tuple[TreeMemEntry, int]:
        """Fetch (creating or expanding if necessary) one child on the path.

        Returns the child's entry and the row of the children block it lives
        in (the child's bank is ``child_index``).
        """
        timing = self.config.timing

        if parent.pointer == NULL_POINTER:
            homogeneous = any(tag != ChildStatus.UNKNOWN for tag in parent.child_tags)
            row = self.allocator.allocate_row()
            parent.pointer = row
            breakdown.charge(OperationKind.PRUNE_EXPAND, timing.prune_stack_cycles)
            if homogeneous:
                # The parent was a pruned leaf covering a uniform region: the
                # eight children are re-materialised with the parent's value.
                status = self.probability_unit.classify(parent.probability_raw)
                children = [
                    TreeMemEntry(
                        pointer=NULL_POINTER,
                        child_tags=[status] * 8,
                        probability_raw=parent.probability_raw,
                    )
                    for _ in range(8)
                ]
                self.memory.write_row(row, children)
                self.stats.row_accesses += 1
                self.counters.expansions += 1
                self.counters.node_allocations += 8
                breakdown.charge(OperationKind.PRUNE_EXPAND, timing.row_write_cycles)
            else:
                child = TreeMemEntry(probability_raw=0)
                self.memory.write_entry(row, child_index, child)
                self.stats.bank_writes += 1
                self.counters.node_allocations += 1
                breakdown.charge(OperationKind.UPDATE_LEAF, timing.bank_write_cycles)
            # Persist the parent's new pointer immediately; the upward pass
            # will rewrite the entry anyway but a partially-written tree must
            # never be observable by queries issued between updates.
            self.memory.write_entry(parent_row, parent_bank, parent)
            self.stats.bank_writes += 1
            breakdown.charge(OperationKind.UPDATE_LEAF, timing.bank_write_cycles)
        elif parent.tag(child_index) == ChildStatus.UNKNOWN:
            child = TreeMemEntry(probability_raw=0)
            self.memory.write_entry(parent.pointer, child_index, child)
            self.stats.bank_writes += 1
            self.counters.node_allocations += 1
            breakdown.charge(OperationKind.UPDATE_LEAF, timing.bank_write_cycles)

        row = parent.pointer
        child_entry = self.memory.read_entry(row, child_index)
        self.stats.bank_reads += 1
        breakdown.charge(OperationKind.UPDATE_LEAF, timing.bank_read_cycles)
        if child_entry is None:
            # The tag said the child exists but the bank holds nothing: the
            # tags and the memory image are out of sync, which is a model bug.
            raise RuntimeError(
                f"PE {self.pe_id}: tag/memory mismatch at row {row} bank {child_index}"
            )
        return child_entry, row

    def _update_parent(self, parent: TreeMemEntry, breakdown: CycleBreakdown) -> None:
        """Recompute a parent entry from its children row; prune if possible."""
        timing = self.config.timing
        children = self.memory.read_row(parent.pointer)
        self.stats.row_accesses += 1
        breakdown.charge(OperationKind.UPDATE_PARENTS, timing.row_read_cycles)
        self.counters.child_reads += 8

        present = [child for child in children if child is not None]
        if not present:
            raise RuntimeError(
                f"PE {self.pe_id}: parent at row {parent.pointer} has no children"
            )

        # Max-of-children aggregation (eq. (3)).
        new_value = self.probability_unit.parent_value(
            child.probability_raw for child in present
        )
        breakdown.charge(OperationKind.UPDATE_PARENTS, timing.alu_cycles)

        # Re-derive the status tags from the freshly read children.
        for index in range(8):
            child = children[index]
            if child is None:
                parent.set_tag(index, ChildStatus.UNKNOWN)
            elif child.pointer != NULL_POINTER:
                parent.set_tag(index, ChildStatus.INNER)
            else:
                parent.set_tag(index, self.probability_unit.classify(child.probability_raw))

        # Pruning rule: all eight children are leaves with identical values.
        self.counters.prune_checks += 1
        breakdown.charge(OperationKind.PRUNE_EXPAND, timing.alu_cycles)
        prunable = len(present) == 8 and all(
            child.pointer == NULL_POINTER for child in present
        ) and all(
            child.probability_raw == present[0].probability_raw for child in present
        )
        if prunable:
            freed_row = parent.pointer
            self.memory.clear_row(freed_row)
            self.stats.row_accesses += 1
            self.allocator.free_row(freed_row)
            parent.pointer = NULL_POINTER
            parent.probability_raw = present[0].probability_raw
            status = self.probability_unit.classify(parent.probability_raw)
            for index in range(8):
                parent.set_tag(index, status)
            self.counters.prunes += 1
            self.counters.node_deletions += 8
            breakdown.charge(
                OperationKind.PRUNE_EXPAND,
                timing.row_write_cycles + timing.prune_stack_cycles,
            )
        else:
            parent.probability_raw = new_value
            self.counters.parent_updates += 1

    # ------------------------------------------------------------------
    # Voxel query (service used by collision detection etc.)
    # ------------------------------------------------------------------
    def query_voxel(self, key: OcTreeKey) -> Tuple[str, Optional[int]]:
        """Return ``(status, probability_raw)`` for a voxel owned by this PE.

        ``status`` is ``"occupied"``, ``"free"`` or ``"unknown"``;
        ``probability_raw`` is None for unknown voxels.
        """
        timing = self.config.timing
        cycles = 0
        path = key.path(self.config.tree_depth)
        branch = path[0]
        self.counters.queries += 1

        if branch not in self._local_roots:
            self.query_cycles += timing.bank_read_cycles
            return ("unknown", None)
        entry = self.memory.read_entry(0, self._local_roots[branch])
        cycles += timing.bank_read_cycles
        self.stats.bank_reads += 1
        assert entry is not None

        for child_index in path[1:]:
            if entry.pointer == NULL_POINTER:
                # Leaf above the finest depth: homogeneous region (pruned) or
                # an unobserved fresh node.
                if all(tag == ChildStatus.UNKNOWN for tag in entry.child_tags):
                    self.query_cycles += cycles
                    return ("unknown", None)
                break
            if entry.tag(child_index) == ChildStatus.UNKNOWN:
                self.query_cycles += cycles
                return ("unknown", None)
            entry = self.memory.read_entry(entry.pointer, child_index)
            cycles += timing.bank_read_cycles
            self.stats.bank_reads += 1
            if entry is None:
                raise RuntimeError(f"PE {self.pe_id}: dangling tag during query")

        cycles += timing.alu_cycles
        self.query_cycles += cycles
        status = "occupied" if self.probability_unit.is_occupied(entry.probability_raw) else "free"
        return (status, entry.probability_raw)

    # ------------------------------------------------------------------
    # Map read-back (verification / host transfer)
    # ------------------------------------------------------------------
    def export_nodes(self) -> Iterator[ExportedNode]:
        """Stream every stored node out of the PE (pre-order).

        The exported paths start at the global root, so nodes from different
        PEs can be merged directly into one software octree.
        """
        for branch, bank in sorted(self._local_roots.items()):
            entry = self.memory.read_entry(0, bank)
            if entry is None:
                continue
            yield from self._export_recurs(entry, (branch,))

    def _export_recurs(self, entry: TreeMemEntry, path: Tuple[int, ...]) -> Iterator[ExportedNode]:
        is_leaf = entry.pointer == NULL_POINTER
        observed = any(tag != ChildStatus.UNKNOWN for tag in entry.child_tags)
        homogeneous = is_leaf and observed and len(path) < self.config.tree_depth
        yield ExportedNode(path, entry.probability_raw, is_leaf, homogeneous)
        if is_leaf:
            return
        for child_index in range(8):
            if entry.tag(child_index) == ChildStatus.UNKNOWN:
                continue
            child = self.memory.read_entry(entry.pointer, child_index)
            if child is None:
                continue
            yield from self._export_recurs(child, path + (child_index,))

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def nodes_stored(self) -> int:
        """Number of valid node entries currently held in TreeMem."""
        return self.memory.occupied_entries() + 0

    def memory_utilization(self) -> float:
        """Fraction of this PE's SRAM holding live entries."""
        return self.memory.utilization()

    def busy_cycles(self) -> int:
        """Cycles of useful work performed so far."""
        return self.stats.busy_cycles()
