"""Probability update unit: the fixed-point log-odds datapath of a PE.

The unit implements the two occupancy equations of the paper entirely in the
16-bit fixed-point domain of the TreeMem entry:

* eq. (2) -- leaf update: add the (quantised) hit or miss increment to the
  stored log-odds value and clamp;
* eq. (3) -- parent update: take the maximum of the eight children values.

It also classifies values against the occupancy threshold, which is what the
child status tags and the voxel query unit need.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.fixedpoint import QuantizedOccupancyParams
from repro.core.treemem import ChildStatus

__all__ = ["ProbabilityUpdateUnit"]


class ProbabilityUpdateUnit:
    """Fixed-point occupancy arithmetic shared by all PEs."""

    def __init__(self, params: QuantizedOccupancyParams) -> None:
        self._params = params
        self.leaf_updates = 0
        self.max_operations = 0
        self.classifications = 0

    @property
    def params(self) -> QuantizedOccupancyParams:
        """The quantised occupancy parameters driving the datapath."""
        return self._params

    def update_leaf(self, raw_log_odds: int, occupied: bool) -> int:
        """Apply one clamped measurement update (paper eq. (2))."""
        self.leaf_updates += 1
        return self._params.update_raw(raw_log_odds, occupied)

    def parent_value(self, child_raw_values: Iterable[int]) -> int:
        """Aggregate children into the parent value (paper eq. (3), max).

        Raises:
            ValueError: if no child value is supplied.
        """
        values = list(child_raw_values)
        if not values:
            raise ValueError("parent_value needs at least one child value")
        self.max_operations += 1
        return max(values)

    def classify(self, raw_log_odds: int) -> ChildStatus:
        """Map a log-odds value to its 2-bit status tag (occupied or free)."""
        self.classifications += 1
        if self._params.is_occupied_raw(raw_log_odds):
            return ChildStatus.OCCUPIED
        return ChildStatus.FREE

    def is_occupied(self, raw_log_odds: int) -> bool:
        """Occupancy decision against the configured threshold."""
        return self._params.is_occupied_raw(raw_log_odds)
