"""Dynamic pruning address manager (paper Section IV-C, Fig. 6).

When a subtree is pruned its children block (one TreeMem row) becomes free;
when a new branch is created (tree expansion) a fresh row is needed.  The
prune address manager keeps a **stack** of freed row pointers so that
expansion reuses pruned rows before claiming never-used ones, keeping SRAM
utilisation high and relaxing the total capacity requirement.  The paper uses
a stack rather than a FIFO because it is the cheapest structure that provides
the reuse property.

This model also owns the bump allocator for never-used rows, so a PE obtains
every children-block address from a single place and the allocation policy
(reuse-first) is enforced here.
"""

from __future__ import annotations

from typing import List

from repro.core.treemem import MemoryCapacityError

__all__ = ["PruneAddressManager"]


class PruneAddressManager:
    """Allocates and recycles TreeMem row addresses for one PE.

    Args:
        num_rows: number of rows in the PE's TreeMem (entries per bank).
        reserved_rows: rows reserved at the bottom of the address space (row 0
            holds the PE's local root block and is never recycled).
    """

    def __init__(self, num_rows: int, reserved_rows: int = 1) -> None:
        if num_rows < reserved_rows + 1:
            raise ValueError(
                f"num_rows={num_rows} leaves no allocatable rows after "
                f"reserving {reserved_rows}"
            )
        self._num_rows = num_rows
        self._reserved_rows = reserved_rows
        self._next_fresh_row = reserved_rows
        self._stack: List[int] = []
        # Statistics used by the memory-utilisation experiments.
        self.allocations = 0
        self.fresh_allocations = 0
        self.reused_allocations = 0
        self.frees = 0
        self.peak_stack_depth = 0

    # ------------------------------------------------------------------
    # Allocation interface
    # ------------------------------------------------------------------
    def allocate_row(self) -> int:
        """Return a free row address, reusing pruned rows first.

        Raises:
            MemoryCapacityError: when no pruned row is available and every
                fresh row has already been handed out.
        """
        self.allocations += 1
        if self._stack:
            self.reused_allocations += 1
            return self._stack.pop()
        if self._next_fresh_row >= self._num_rows:
            raise MemoryCapacityError(
                f"TreeMem exhausted: all {self._num_rows} rows are in use and "
                "the prune stack is empty (increase bank_kilobytes or reduce "
                "the mapped volume)"
            )
        self.fresh_allocations += 1
        row = self._next_fresh_row
        self._next_fresh_row += 1
        return row

    def free_row(self, row: int) -> None:
        """Push a pruned children-block row onto the reuse stack."""
        if not self._reserved_rows <= row < self._num_rows:
            raise ValueError(
                f"row {row} is not an allocatable address "
                f"(valid range [{self._reserved_rows}, {self._num_rows - 1}])"
            )
        if row in self._stack:
            raise ValueError(f"row {row} freed twice (double prune)")
        if row >= self._next_fresh_row:
            raise ValueError(f"row {row} freed but was never allocated")
        self.frees += 1
        self._stack.append(row)
        self.peak_stack_depth = max(self.peak_stack_depth, len(self._stack))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Total rows managed (including reserved ones)."""
        return self._num_rows

    @property
    def stack_depth(self) -> int:
        """Number of freed rows currently waiting for reuse."""
        return len(self._stack)

    @property
    def rows_in_use(self) -> int:
        """Rows currently holding live children blocks."""
        return (self._next_fresh_row - self._reserved_rows) - len(self._stack)

    @property
    def rows_touched(self) -> int:
        """Rows ever handed out (the high-water mark without reuse)."""
        return self._next_fresh_row - self._reserved_rows

    @property
    def free_rows(self) -> int:
        """Rows still available (fresh plus recycled)."""
        return (self._num_rows - self._next_fresh_row) + len(self._stack)

    def utilization(self) -> float:
        """Fraction of allocatable rows currently in use."""
        allocatable = self._num_rows - self._reserved_rows
        return self.rows_in_use / allocatable if allocatable else 0.0

    def reuse_fraction(self) -> float:
        """Fraction of allocations served from the prune stack."""
        return self.reused_allocations / self.allocations if self.allocations else 0.0
