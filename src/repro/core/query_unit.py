"""Voxel query unit: occupancy look-ups for downstream consumers.

Collision detection and motion planning query the map continuously; the OMU
therefore exposes a dedicated voxel-query service (Fig. 4 block "Voxel Query",
Fig. 7).  A query carries a metric coordinate; the unit derives the key,
issues the look-up to the PE owning the voxel, receives the fixed-point
probability and classifies it against the occupancy thresholds into
occupied / free / unknown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.address_gen import AddressGenerator
from repro.core.config import OMUConfig
from repro.core.pe import ProcessingElement
from repro.octomap.logodds import probability as logodds_to_probability

__all__ = ["QueryResult", "VoxelQueryUnit"]


@dataclass(frozen=True)
class QueryResult:
    """Answer to one voxel query.

    Attributes:
        status: ``"occupied"``, ``"free"`` or ``"unknown"``.
        probability: occupancy probability in [0, 1], or None when unknown.
        pe_id: PE that served the query.
        cycles: cycles spent serving the query (issue + PE walk + threshold).
    """

    status: str
    probability: Optional[float]
    pe_id: int
    cycles: int


class VoxelQueryUnit:
    """Routes occupancy queries to PEs and classifies the results."""

    def __init__(
        self,
        config: OMUConfig,
        address_generator: AddressGenerator,
        pes: Sequence[ProcessingElement],
    ) -> None:
        self.config = config
        self.address_generator = address_generator
        self._pes = list(pes)
        self.queries_served = 0
        self.total_cycles = 0

    def query(self, x: float, y: float, z: float) -> QueryResult:
        """Query the occupancy of the voxel containing ``(x, y, z)``."""
        key = self.address_generator.key_for_point(x, y, z)
        pe_id = self.address_generator.pe_for_key(key)
        pe = self._pes[pe_id]

        cycles_before = pe.query_cycles
        status, raw = pe.query_voxel(key)
        pe_cycles = pe.query_cycles - cycles_before
        cycles = self.config.timing.query_issue_cycles + pe_cycles

        probability = None
        if raw is not None:
            value = self.config.fixed_point.to_value(raw)
            probability = logodds_to_probability(value)

        self.queries_served += 1
        self.total_cycles += cycles
        return QueryResult(status=status, probability=probability, pe_id=pe_id, cycles=cycles)

    def query_batch(self, points: Sequence[Sequence[float]]) -> Tuple[QueryResult, ...]:
        """Serve a batch of queries (e.g. the sampled poses of a planned path)."""
        return tuple(self.query(*point) for point in points)

    def average_cycles_per_query(self) -> float:
        """Mean query service latency in cycles."""
        if self.queries_served == 0:
            return 0.0
        return self.total_cycles / self.queries_served
