"""Hardware ray-casting module and the free / occupied voxel queues.

The OMU front end (Fig. 7) contains a ray-casting module that walks every
sensor beam through the voxel grid, pushing the traversed (free) voxels and
the endpoint (occupied) voxels into two queues that feed the voxel scheduler.
Functionally it reuses the same DDA as the software substrate -- the
accelerator does not change *what* is computed, only how fast -- and its
latency is modelled as one cycle per traversed voxel.  The paper notes this
latency is hidden behind the voxel-update pipeline; the accelerator model
therefore overlaps it with PE execution and only exposes the excess
(see :class:`repro.core.timing.ScanTiming`).

The module can be swapped for a more advanced ray-casting accelerator (the
paper cites Kar et al., VLSI 2020) by replacing :class:`RayCastingUnit` with
another implementation of the same ``cast_scan`` interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set

from repro.core.address_gen import AddressGenerator
from repro.core.config import OMUConfig
from repro.octomap.counters import OperationCounters
from repro.octomap.keys import OcTreeKey
from repro.octomap.pointcloud import PointCloud
from repro.octomap.raycast import compute_ray_keys
from repro.octomap.scan_insertion import clip_segment_to_volume

__all__ = ["VoxelQueue", "RayCastResultSet", "RayCastingUnit"]


class VoxelQueue:
    """A simple FIFO of voxel keys with a high-water mark.

    Models the free / occupied queues between the ray caster and the voxel
    scheduler; the high-water mark sizes the hardware FIFO.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._items: List[OcTreeKey] = []
        self.pushes = 0
        self.pops = 0
        self.peak_occupancy = 0

    def push(self, key: OcTreeKey) -> None:
        """Enqueue one voxel key."""
        self._items.append(key)
        self.pushes += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._items))

    def pop(self) -> OcTreeKey:
        """Dequeue the oldest voxel key."""
        if not self._items:
            raise IndexError(f"pop from empty voxel queue {self.name!r}")
        self.pops += 1
        return self._items.pop(0)

    def drain(self) -> List[OcTreeKey]:
        """Remove and return every queued key (the scheduler consumes batches)."""
        items = self._items
        self.pops += len(items)
        self._items = []
        return items

    def __len__(self) -> int:
        return len(self._items)


@dataclass
class RayCastResultSet:
    """Free / occupied voxel keys of one scan plus the ray-casting cycles."""

    free_keys: List[OcTreeKey]
    occupied_keys: List[OcTreeKey]
    cycles: int
    beams: int

    def total_updates(self) -> int:
        """Number of voxel updates this scan will trigger."""
        return len(self.free_keys) + len(self.occupied_keys)


class RayCastingUnit:
    """Casts every beam of a scan and fills the free / occupied queues."""

    def __init__(self, config: OMUConfig, address_generator: AddressGenerator) -> None:
        self.config = config
        self.address_generator = address_generator
        self.free_queue = VoxelQueue("free")
        self.occupied_queue = VoxelQueue("occupied")
        self.counters = OperationCounters()
        self.total_cycles = 0
        self.total_beams = 0

    def cast_scan(
        self,
        cloud: PointCloud,
        origin: Sequence[float],
        max_range: float = -1.0,
    ) -> RayCastResultSet:
        """Ray-cast one scan and return the de-duplicated voxel updates.

        The de-duplication (each voxel at most once per scan, occupied wins
        over free) is the same policy as the software substrate, so both
        backends perform identical sets of voxel updates -- a precondition for
        the bit-exact map equivalence the verification harness checks.
        """
        converter = self.address_generator.converter
        free_keys: Set[OcTreeKey] = set()
        occupied_keys: Set[OcTreeKey] = set()
        cycles = 0
        beams = 0

        for point in cloud:
            beams += 1
            endpoint = point
            truncated = False
            if max_range > 0.0:
                distance = sum((point[axis] - origin[axis]) ** 2 for axis in range(3)) ** 0.5
                if distance > max_range:
                    truncated = True
                    scale = max_range / distance
                    endpoint = tuple(
                        origin[axis] + (point[axis] - origin[axis]) * scale for axis in range(3)
                    )
            if not converter.is_coordinate_in_range(*endpoint):
                endpoint = clip_segment_to_volume(converter, origin, endpoint)
                truncated = True
                if endpoint is None:
                    continue
            ray_keys = compute_ray_keys(converter, origin, endpoint, counters=self.counters)
            cycles += len(ray_keys) * self.config.timing.ray_step_cycles
            free_keys.update(ray_keys)
            if not truncated:
                occupied_keys.add(converter.coord_to_key(*endpoint))

        free_keys -= occupied_keys
        ordered_free = sorted(free_keys)
        ordered_occupied = sorted(occupied_keys)
        for key in ordered_free:
            self.free_queue.push(key)
        for key in ordered_occupied:
            self.occupied_queue.push(key)

        self.total_cycles += cycles
        self.total_beams += beams
        return RayCastResultSet(
            free_keys=ordered_free,
            occupied_keys=ordered_occupied,
            cycles=cycles,
            beams=beams,
        )
