"""Voxel scheduler: routes voxel updates to the PE owning their subtree.

The scheduler (Section IV-A, Fig. 4 block "Voxel Scheduler") receives the
stream of free / occupied voxels produced by ray casting, derives each voxel's
first-level tree branch from its key and issues the update to the matching PE.
Issuing is serial (one voxel per cycle), while the PEs execute in parallel --
so the accelerator-level latency of a batch is the scheduler's issue time plus
the busiest PE's execution time.  The scheduler also tracks the per-PE load so
the load-balance of a workload can be inspected (an octant-skewed scene
reduces the achievable parallel speedup).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.address_gen import AddressGenerator
from repro.core.config import OMUConfig
from repro.octomap.keys import OcTreeKey

__all__ = ["VoxelUpdateRequest", "ScheduledBatch", "VoxelScheduler"]


@dataclass(frozen=True)
class VoxelUpdateRequest:
    """One voxel update awaiting execution: the key and its measurement."""

    key: OcTreeKey
    occupied: bool


@dataclass
class ScheduledBatch:
    """The outcome of scheduling one batch of voxel updates.

    Attributes:
        per_pe: the update queue assigned to each PE.
        issue_cycles: cycles the scheduler spent issuing (serial front end).
    """

    per_pe: Dict[int, List[VoxelUpdateRequest]] = field(default_factory=dict)
    issue_cycles: int = 0

    def total_updates(self) -> int:
        """Total number of scheduled voxel updates."""
        return sum(len(queue) for queue in self.per_pe.values())

    def load_balance(self) -> float:
        """Busiest-PE share of the work (1 / num_active_pes is perfect).

        Returns 0.0 for an empty batch.
        """
        total = self.total_updates()
        if total == 0:
            return 0.0
        return max(len(queue) for queue in self.per_pe.values()) / total


class VoxelScheduler:
    """Assigns voxel updates to PEs by first-level tree branch."""

    def __init__(self, config: OMUConfig, address_generator: AddressGenerator) -> None:
        self.config = config
        self.address_generator = address_generator
        self.issued_updates = 0
        self.per_pe_issued: Dict[int, int] = {pe: 0 for pe in range(config.num_pes)}

    def schedule(
        self,
        free_keys: Sequence[OcTreeKey],
        occupied_keys: Sequence[OcTreeKey],
    ) -> ScheduledBatch:
        """Build the per-PE queues for one scan's worth of voxel updates.

        Free-space updates are issued before occupied updates, mirroring the
        software insertion order (occupied measurements win when a voxel
        appears in both streams because they are applied last -- the key sets
        are already de-duplicated upstream, so in practice each voxel appears
        once).
        """
        batch = ScheduledBatch(per_pe={pe: [] for pe in range(self.config.num_pes)})
        for key in free_keys:
            self._issue(batch, VoxelUpdateRequest(key, occupied=False))
        for key in occupied_keys:
            self._issue(batch, VoxelUpdateRequest(key, occupied=True))
        return batch

    def schedule_requests(self, requests: Sequence[VoxelUpdateRequest]) -> ScheduledBatch:
        """Build per-PE queues from an already ordered update stream.

        Used by callers that manage the measurement order themselves (the
        serving layer concatenates several scans' update streams into one
        batch).  Issue order is preserved per PE, so updates touching the
        same voxel are applied in stream order -- required for equivalence
        with sequential insertion because the clamped log-odds update is not
        commutative once a value saturates.
        """
        batch = ScheduledBatch(per_pe={pe: [] for pe in range(self.config.num_pes)})
        for request in requests:
            self._issue(batch, request)
        return batch

    def _issue(self, batch: ScheduledBatch, request: VoxelUpdateRequest) -> None:
        pe = self.address_generator.pe_for_key(request.key)
        batch.per_pe[pe].append(request)
        batch.issue_cycles += self.config.timing.scheduler_issue_cycles
        self.issued_updates += 1
        self.per_pe_issued[pe] = self.per_pe_issued.get(pe, 0) + 1

    def load_histogram(self) -> Tuple[int, ...]:
        """Updates issued to each PE since construction (load-balance view)."""
        return tuple(self.per_pe_issued.get(pe, 0) for pe in range(self.config.num_pes))
