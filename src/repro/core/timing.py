"""Cycle accounting for the OMU accelerator model.

The accelerator is modelled at *operation granularity*: every primitive
action of a PE (a bank access, a full-row access, an ALU operation, a prune
stack operation, a scheduler issue) charges a configurable number of cycles
(:class:`repro.core.config.TimingParams`) to one of the pipeline stages of
the paper's breakdown (update leaf / update parents / prune-expand, plus ray
casting and query service).  PEs run in parallel, so the accelerator-level
latency of a batch is the *maximum* of the per-PE cycle counts plus the
scheduler issue cycles -- this is where the 8x compute parallelism of
Section IV-A shows up in the numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

from repro.octomap.counters import OperationKind

__all__ = ["CycleBreakdown", "PETimingStats", "ScanTiming"]

_STAGES = (
    OperationKind.RAY_CASTING,
    OperationKind.UPDATE_LEAF,
    OperationKind.UPDATE_PARENTS,
    OperationKind.PRUNE_EXPAND,
)


@dataclass
class CycleBreakdown:
    """Cycles attributed to each pipeline stage."""

    cycles: Dict[OperationKind, int] = field(
        default_factory=lambda: {stage: 0 for stage in _STAGES}
    )

    def charge(self, stage: OperationKind, cycles: int) -> None:
        """Add ``cycles`` to ``stage``."""
        if cycles < 0:
            raise ValueError("cannot charge a negative number of cycles")
        self.cycles[stage] = self.cycles.get(stage, 0) + cycles

    def total(self) -> int:
        """Total cycles across all stages."""
        return sum(self.cycles.values())

    def merge(self, other: "CycleBreakdown") -> None:
        """Accumulate another breakdown into this one."""
        for stage, cycles in other.cycles.items():
            self.cycles[stage] = self.cycles.get(stage, 0) + cycles

    def fractions(self) -> Mapping[OperationKind, float]:
        """Per-stage fraction of the total (the quantity Figs. 3/10 plot)."""
        total = self.total()
        if total == 0:
            return {stage: 0.0 for stage in self.cycles}
        return {stage: cycles / total for stage, cycles in self.cycles.items()}

    def copy(self) -> "CycleBreakdown":
        """Independent copy of this breakdown."""
        duplicate = CycleBreakdown()
        duplicate.cycles = dict(self.cycles)
        return duplicate

    @staticmethod
    def maximum(breakdowns: Iterable["CycleBreakdown"]) -> int:
        """Latency of parallel units: the largest total among ``breakdowns``."""
        totals = [breakdown.total() for breakdown in breakdowns]
        return max(totals) if totals else 0


@dataclass
class PETimingStats:
    """Cycle and utilisation statistics of one PE."""

    pe_id: int
    breakdown: CycleBreakdown = field(default_factory=CycleBreakdown)
    voxel_updates: int = 0
    bank_reads: int = 0
    bank_writes: int = 0
    row_accesses: int = 0
    stalls: int = 0

    def busy_cycles(self) -> int:
        """Cycles this PE spent doing useful work."""
        return self.breakdown.total()

    def cycles_per_update(self) -> float:
        """Average PE cycles per voxel update (key efficiency metric)."""
        if self.voxel_updates == 0:
            return 0.0
        return self.busy_cycles() / self.voxel_updates


@dataclass
class ScanTiming:
    """Timing summary of one processed scan (or batch of voxel updates).

    Attributes:
        scheduler_cycles: cycles spent issuing voxels to PEs (serial front end).
        raycast_cycles: cycles the ray-casting module needed; these overlap
            with PE execution (the paper hides ray casting behind the voxel
            update), so they only contribute to the critical path when they
            exceed the PE latency.
        pe_cycles_max: the slowest PE's busy cycles (the parallel section's
            latency).
        pe_cycles_total: sum of all PEs' busy cycles (the work a single-PE
            configuration would have to serialise).
        breakdown: accelerator-level cycle breakdown, with the parallel
            section scaled to the critical-path PE.
    """

    scheduler_cycles: int = 0
    raycast_cycles: int = 0
    pe_cycles_max: int = 0
    pe_cycles_total: int = 0
    voxel_updates: int = 0
    breakdown: CycleBreakdown = field(default_factory=CycleBreakdown)

    def critical_path_cycles(self) -> int:
        """End-to-end cycles for the scan on the accelerator.

        Ray casting is overlapped with the PE update pipeline: only the part
        exceeding the parallel-update latency is exposed.
        """
        parallel_section = max(self.pe_cycles_max, self.raycast_cycles)
        return self.scheduler_cycles + parallel_section

    def parallel_speedup(self) -> float:
        """Work / critical-path ratio achieved by the PE array."""
        if self.pe_cycles_max == 0:
            return 1.0
        return self.pe_cycles_total / self.pe_cycles_max

    def merge(self, other: "ScanTiming") -> None:
        """Accumulate another scan's timing into this one (whole-map totals)."""
        self.scheduler_cycles += other.scheduler_cycles
        self.raycast_cycles += other.raycast_cycles
        self.pe_cycles_max += other.pe_cycles_max
        self.pe_cycles_total += other.pe_cycles_total
        self.voxel_updates += other.voxel_updates
        self.breakdown.merge(other.breakdown)

    def cycles_per_update(self) -> float:
        """Effective accelerator cycles per voxel update (after parallelism)."""
        if self.voxel_updates == 0:
            return 0.0
        return self.critical_path_cycles() / self.voxel_updates
