"""TreeMem: the banked SRAM that stores the partitioned octree.

Each PE contains eight single-port SRAM banks (T-Mem0 .. T-Mem7).  One *row*
(the same address across all eight banks) holds the eight children of one
parent node, child ``i`` living in bank ``i`` -- so a parent update or a
pruning check fetches all eight children in a single cycle, which is the 8x
memory-bandwidth improvement of Section IV-B.

Every 64-bit entry packs three fields (paper Fig. 5):

* ``pointer`` (bits [63:32]) -- row address of this node's own children
  block, or the null pointer if the node is a leaf;
* ``child_tags`` (bits [31:16]) -- eight 2-bit status tags, one per child:
  ``00`` unknown, ``01`` occupied, ``10`` free, ``11`` inner node;
* ``probability`` (bits [15:0]) -- the node's occupancy as a 16-bit
  fixed-point log-odds value.

The Python model stores entries as small objects for clarity but provides
exact 64-bit pack/unpack so tests can verify the bit layout, and counts every
bank access so the timing and energy models can charge them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import List, Optional, Sequence

__all__ = [
    "ChildStatus",
    "TreeMemEntry",
    "TreeMemBank",
    "BankedTreeMemory",
    "MemoryCapacityError",
    "NULL_POINTER",
]

NULL_POINTER = 0xFFFFFFFF
"""Pointer value marking "no children block" (a leaf node)."""


class MemoryCapacityError(RuntimeError):
    """Raised when a PE's TreeMem runs out of rows for new children blocks."""


class ChildStatus(IntEnum):
    """2-bit per-child status tag stored in the TreeMem entry."""

    UNKNOWN = 0b00
    OCCUPIED = 0b01
    FREE = 0b10
    INNER = 0b11


@dataclass
class TreeMemEntry:
    """One decoded 64-bit TreeMem entry.

    Attributes:
        pointer: row address of the children block, or :data:`NULL_POINTER`.
        child_tags: list of eight :class:`ChildStatus` values.
        probability_raw: signed fixed-point log-odds value of this node.
    """

    pointer: int = NULL_POINTER
    child_tags: List[ChildStatus] = None  # type: ignore[assignment]
    probability_raw: int = 0

    def __post_init__(self) -> None:
        if self.child_tags is None:
            self.child_tags = [ChildStatus.UNKNOWN] * 8
        if len(self.child_tags) != 8:
            raise ValueError("child_tags must hold exactly eight tags")
        if not 0 <= self.pointer <= 0xFFFFFFFF:
            raise ValueError(f"pointer {self.pointer} does not fit in 32 bits")

    # ------------------------------------------------------------------
    # Field helpers
    # ------------------------------------------------------------------
    def is_leaf(self) -> bool:
        """True if the node has no children block."""
        return self.pointer == NULL_POINTER

    def tag(self, child_index: int) -> ChildStatus:
        """Status tag of child ``child_index`` (0..7)."""
        return self.child_tags[self._checked(child_index)]

    def set_tag(self, child_index: int, status: ChildStatus) -> None:
        """Set the status tag of child ``child_index``."""
        self.child_tags[self._checked(child_index)] = ChildStatus(status)

    def known_children(self) -> Sequence[int]:
        """Indices of children whose tag is not UNKNOWN."""
        return [index for index, tag in enumerate(self.child_tags) if tag != ChildStatus.UNKNOWN]

    def copy(self) -> "TreeMemEntry":
        """Return an independent copy of this entry."""
        return TreeMemEntry(self.pointer, list(self.child_tags), self.probability_raw)

    @staticmethod
    def _checked(child_index: int) -> int:
        if not 0 <= child_index <= 7:
            raise IndexError(f"child index {child_index} outside [0, 7]")
        return child_index

    # ------------------------------------------------------------------
    # 64-bit packing (paper Fig. 5 bit layout)
    # ------------------------------------------------------------------
    def pack(self, fixed_point_bits: int = 16) -> int:
        """Pack the entry into its 64-bit word."""
        tags_word = 0
        for index, tag in enumerate(self.child_tags):
            tags_word |= (int(tag) & 0b11) << (2 * index)
        probability_word = self.probability_raw & ((1 << fixed_point_bits) - 1)
        return (self.pointer << 32) | (tags_word << 16) | probability_word

    @classmethod
    def unpack(cls, word: int, fixed_point_bits: int = 16) -> "TreeMemEntry":
        """Decode a 64-bit word back into an entry."""
        if not 0 <= word < (1 << 64):
            raise ValueError(f"word {word} does not fit in 64 bits")
        pointer = (word >> 32) & 0xFFFFFFFF
        tags_word = (word >> 16) & 0xFFFF
        tags = [ChildStatus((tags_word >> (2 * index)) & 0b11) for index in range(8)]
        probability_word = word & ((1 << fixed_point_bits) - 1)
        sign_bit = 1 << (fixed_point_bits - 1)
        probability_raw = probability_word - (1 << fixed_point_bits) if probability_word & sign_bit else probability_word
        return cls(pointer, tags, probability_raw)


class TreeMemBank:
    """One single-port SRAM bank of a PE.

    Reads and writes are counted individually; the energy model charges each
    access and the timing model enforces one access per bank per cycle.
    """

    def __init__(self, bank_index: int, num_entries: int) -> None:
        if num_entries < 1:
            raise ValueError("a bank needs at least one entry")
        self.bank_index = bank_index
        self.num_entries = num_entries
        self._entries: List[Optional[TreeMemEntry]] = [None] * num_entries
        self.read_accesses = 0
        self.write_accesses = 0

    def read(self, address: int) -> Optional[TreeMemEntry]:
        """Read the entry at ``address`` (None if never written)."""
        self._check_address(address)
        self.read_accesses += 1
        entry = self._entries[address]
        return entry.copy() if entry is not None else None

    def write(self, address: int, entry: TreeMemEntry) -> None:
        """Write ``entry`` at ``address``."""
        self._check_address(address)
        self.write_accesses += 1
        self._entries[address] = entry.copy()

    def clear(self, address: int) -> None:
        """Invalidate the entry at ``address`` (used when a row is freed)."""
        self._check_address(address)
        self.write_accesses += 1
        self._entries[address] = None

    def occupied_entries(self) -> int:
        """Number of valid entries currently stored."""
        return sum(1 for entry in self._entries if entry is not None)

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.num_entries:
            raise IndexError(
                f"address {address} outside bank {self.bank_index} "
                f"(capacity {self.num_entries} entries)"
            )


class BankedTreeMemory:
    """The eight-bank TreeMem of one PE.

    Provides single-entry accesses (descending the tree touches one bank per
    level) and full-row accesses (parent update / pruning check reads all
    eight children at once).
    """

    def __init__(self, num_banks: int, entries_per_bank: int) -> None:
        if num_banks != 8:
            raise ValueError("the child-per-bank layout requires exactly 8 banks")
        self.num_banks = num_banks
        self.entries_per_bank = entries_per_bank
        self.banks = [TreeMemBank(index, entries_per_bank) for index in range(num_banks)]
        self.row_reads = 0
        self.row_writes = 0

    # -- single-entry access -------------------------------------------------
    def read_entry(self, row: int, bank: int) -> Optional[TreeMemEntry]:
        """Read one child entry (one bank access)."""
        return self.banks[self._checked_bank(bank)].read(row)

    def write_entry(self, row: int, bank: int, entry: TreeMemEntry) -> None:
        """Write one child entry (one bank access)."""
        self.banks[self._checked_bank(bank)].write(row, entry)

    # -- full-row access -----------------------------------------------------
    def read_row(self, row: int) -> List[Optional[TreeMemEntry]]:
        """Read the eight children of a block in one (parallel) access."""
        self.row_reads += 1
        return [bank.read(row) for bank in self.banks]

    def write_row(self, row: int, entries: Sequence[Optional[TreeMemEntry]]) -> None:
        """Write the eight children of a block in one (parallel) access."""
        if len(entries) != self.num_banks:
            raise ValueError(f"a row write needs {self.num_banks} entries")
        self.row_writes += 1
        for bank, entry in zip(self.banks, entries):
            if entry is None:
                bank.clear(row)
            else:
                bank.write(row, entry)

    def clear_row(self, row: int) -> None:
        """Invalidate a whole row (when its block is pruned and freed)."""
        self.row_writes += 1
        for bank in self.banks:
            bank.clear(row)

    # -- statistics ------------------------------------------------------------
    def total_reads(self) -> int:
        """Total single-bank read accesses (row reads count as 8)."""
        return sum(bank.read_accesses for bank in self.banks)

    def total_writes(self) -> int:
        """Total single-bank write accesses (row writes count as 8)."""
        return sum(bank.write_accesses for bank in self.banks)

    def occupied_entries(self) -> int:
        """Number of valid entries across all banks."""
        return sum(bank.occupied_entries() for bank in self.banks)

    def utilization(self) -> float:
        """Fraction of the PE's SRAM currently holding valid entries."""
        capacity = self.num_banks * self.entries_per_bank
        return self.occupied_entries() / capacity if capacity else 0.0

    def _checked_bank(self, bank: int) -> int:
        if not 0 <= bank < self.num_banks:
            raise IndexError(f"bank {bank} outside [0, {self.num_banks - 1}]")
        return bank
