"""Functional verification: the accelerator must match the software OctoMap.

The OMU accelerator changes the *implementation* of probabilistic occupancy
mapping, not its mathematics: given the same scans it must produce the same
map as the single-threaded software library (up to the declared fixed-point
quantisation).  This module builds both maps from the same scan graph and
compares them leaf by leaf:

* both trees are canonically pruned, so their leaf structure (key, depth) must
  match exactly;
* every leaf's log-odds value must agree within half a fixed-point LSB;
* every leaf's occupancy classification must agree exactly.

The equivalence report is used by the integration tests and quoted in
EXPERIMENTS.md as the functional-correctness evidence backing the performance
claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.accelerator import OMUAccelerator
from repro.octomap.octree import OccupancyOcTree
from repro.octomap.pointcloud import ScanGraph

__all__ = ["EquivalenceReport", "build_reference_tree", "compare_trees", "verify_against_software"]


@dataclass
class EquivalenceReport:
    """Result of comparing an accelerator map against the software reference.

    Attributes:
        leaves_reference: leaf count of the software tree.
        leaves_accelerator: leaf count of the exported accelerator tree.
        structure_mismatches: leaves present in one tree but not the other.
        value_mismatches: matching leaves whose log-odds differ by more than
            the tolerance.
        classification_mismatches: matching leaves classified differently.
        max_abs_error: largest absolute log-odds difference over matching
            leaves.
        tolerance: the log-odds tolerance used (half a fixed-point LSB by
            default).
    """

    leaves_reference: int = 0
    leaves_accelerator: int = 0
    structure_mismatches: int = 0
    value_mismatches: int = 0
    classification_mismatches: int = 0
    max_abs_error: float = 0.0
    tolerance: float = 0.0
    mismatch_examples: List[str] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        """True when the two maps agree everywhere."""
        return (
            self.structure_mismatches == 0
            and self.value_mismatches == 0
            and self.classification_mismatches == 0
        )

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = "EQUIVALENT" if self.equivalent else "MISMATCH"
        return (
            f"{verdict}: {self.leaves_reference} reference leaves vs "
            f"{self.leaves_accelerator} accelerator leaves, "
            f"{self.structure_mismatches} structure / {self.value_mismatches} value / "
            f"{self.classification_mismatches} classification mismatches, "
            f"max |error| = {self.max_abs_error:.3e} (tolerance {self.tolerance:.3e})"
        )


def build_reference_tree(accelerator: OMUAccelerator, graph: ScanGraph, max_range: float = -1.0) -> OccupancyOcTree:
    """Build the software golden map with the accelerator's quantised parameters.

    Using the quantised parameters keeps every update on the fixed-point grid,
    so the comparison tolerance can be tight (half an LSB) instead of hiding
    real bugs behind a loose threshold.
    """
    config = accelerator.config
    quantized = config.quantized_params()
    tree = OccupancyOcTree(
        config.resolution_m,
        tree_depth=config.tree_depth,
        params=quantized.as_float_params(),
    )
    for scan in graph:
        tree.insert_point_cloud(scan.world_cloud(), scan.origin(), max_range=max_range)
    tree.prune()
    return tree


def compare_trees(
    reference: OccupancyOcTree,
    candidate: OccupancyOcTree,
    tolerance: float,
    max_examples: int = 10,
) -> EquivalenceReport:
    """Compare two canonically pruned trees leaf by leaf."""
    report = EquivalenceReport(tolerance=tolerance)

    reference_leaves = _leaf_map(reference)
    candidate_leaves = _leaf_map(candidate)
    report.leaves_reference = len(reference_leaves)
    report.leaves_accelerator = len(candidate_leaves)

    all_locations = set(reference_leaves) | set(candidate_leaves)
    for location in sorted(all_locations):
        in_reference = location in reference_leaves
        in_candidate = location in candidate_leaves
        if not (in_reference and in_candidate):
            report.structure_mismatches += 1
            if len(report.mismatch_examples) < max_examples:
                side = "software only" if in_reference else "accelerator only"
                report.mismatch_examples.append(f"leaf {location} present in {side}")
            continue
        ref_value = reference_leaves[location]
        cand_value = candidate_leaves[location]
        error = abs(ref_value - cand_value)
        report.max_abs_error = max(report.max_abs_error, error)
        if error > tolerance:
            report.value_mismatches += 1
            if len(report.mismatch_examples) < max_examples:
                report.mismatch_examples.append(
                    f"leaf {location}: software {ref_value:.6f} vs accelerator {cand_value:.6f}"
                )
        ref_occupied = reference.params.is_occupied(ref_value)
        cand_occupied = candidate.params.is_occupied(cand_value)
        if ref_occupied != cand_occupied:
            report.classification_mismatches += 1
            if len(report.mismatch_examples) < max_examples:
                report.mismatch_examples.append(
                    f"leaf {location}: classification differs "
                    f"({'occupied' if ref_occupied else 'free'} vs "
                    f"{'occupied' if cand_occupied else 'free'})"
                )
    return report


def verify_against_software(
    accelerator: OMUAccelerator,
    graph: ScanGraph,
    max_range: float = -1.0,
) -> EquivalenceReport:
    """End-to-end equivalence check on one scan graph.

    Runs the accelerator over the graph (if it has not processed any scans
    yet), builds the software reference with quantised parameters, exports the
    accelerator map and compares the two.
    """
    if accelerator.scans_processed == 0:
        accelerator.process_scan_graph(graph, max_range=max_range)
    reference = build_reference_tree(accelerator, graph, max_range=max_range)
    exported = accelerator.export_octree()
    tolerance = accelerator.config.fixed_point.scale / 2.0
    return compare_trees(reference, exported, tolerance)


def _leaf_map(tree: OccupancyOcTree) -> Dict[Tuple[Tuple[int, int, int], int], float]:
    """Flatten a tree into ``{(key, depth): log-odds}`` over observed leaves."""
    leaves: Dict[Tuple[Tuple[int, int, int], int], float] = {}
    for leaf in tree.iter_leafs():
        leaves[(leaf.key.as_tuple(), leaf.depth)] = leaf.log_odds
    return leaves
