"""Datasets: Table II catalog, synthetic scenes, simulated sensors, generators.

The real OctoMap 3D scan datasets (FR-079 corridor, Freiburg campus, New
College) are unavailable offline; this package substitutes analytic scenes
scanned by simulated sensors whose aggregate statistics match the paper's
Table II.  See DESIGN.md for the substitution rationale.
"""

from repro.datasets.catalog import (
    ALL_DATASETS,
    EQUIVALENT_FRAME_PIXELS,
    FR079_CORRIDOR,
    FREIBURG_CAMPUS,
    NEW_COLLEGE,
    DatasetDescriptor,
    PaperReference,
    dataset_by_name,
)
from repro.datasets.generator import (
    GenerationSpec,
    generate_named_graph,
    generate_scan_graph,
    trajectory_for_scene,
)
from repro.datasets.scan_graph_io import read_scan_graph, write_scan_graph
from repro.datasets.scenes import (
    AxisAlignedBox,
    GroundPlane,
    Scene,
    VerticalCylinder,
    campus_scene,
    college_scene,
    corridor_scene,
    scene_by_name,
)
from repro.datasets.sensors import DepthCamera, SpinningLidar
from repro.datasets.streams import (
    ClientSpec,
    StreamEvent,
    generate_client_scans,
    generate_interleaved_stream,
)

__all__ = [
    "ALL_DATASETS",
    "AxisAlignedBox",
    "ClientSpec",
    "DatasetDescriptor",
    "DepthCamera",
    "EQUIVALENT_FRAME_PIXELS",
    "FR079_CORRIDOR",
    "FREIBURG_CAMPUS",
    "GenerationSpec",
    "GroundPlane",
    "NEW_COLLEGE",
    "PaperReference",
    "Scene",
    "SpinningLidar",
    "StreamEvent",
    "VerticalCylinder",
    "campus_scene",
    "college_scene",
    "corridor_scene",
    "dataset_by_name",
    "generate_client_scans",
    "generate_interleaved_stream",
    "generate_named_graph",
    "generate_scan_graph",
    "read_scan_graph",
    "scene_by_name",
    "trajectory_for_scene",
    "write_scan_graph",
]
