"""Catalog of the paper's evaluation datasets (Table II).

The paper evaluates on three maps from the OctoMap 3D scan dataset
(FR-079 corridor, Freiburg campus outdoor, New College) at a voxel resolution
of 0.2 m.  The raw laser data is not redistributable and is unavailable
offline, so this repository substitutes synthetic scenes (see
:mod:`repro.datasets.scenes`) whose *aggregate statistics* -- scan count,
average points per scan, total point count and total voxel updates -- match
the paper's Table II.  Those aggregates, not the individual range returns,
are what the performance, throughput and energy models consume.

Each :class:`DatasetDescriptor` also records the paper's measured reference
numbers (Intel i9 latency, ARM A57 latency, OMU latency, throughputs and
energies from Tables II-V and Fig. 3) so the benchmark harness can print
paper-vs-measured columns side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

__all__ = [
    "DatasetDescriptor",
    "PaperReference",
    "FR079_CORRIDOR",
    "FREIBURG_CAMPUS",
    "NEW_COLLEGE",
    "ALL_DATASETS",
    "dataset_by_name",
    "EQUIVALENT_FRAME_PIXELS",
    "REFERENCE_UPDATES_PER_POINT",
    "EQUIVALENT_FRAME_UPDATES",
]

EQUIVALENT_FRAME_PIXELS = 320 * 240
"""The paper derives FPS from "equivalent 320x240 sensor image" frames."""

REFERENCE_UPDATES_PER_POINT = 15
"""Average voxel updates one sensor point triggers at 0.2 m resolution.

The paper's FPS numbers are consistent (to within a few percent across all
three datasets and all three platforms) with
``FPS = voxel-update throughput / (320*240 * 15)``, i.e. an "equivalent
frame" is 76 800 points each triggering the typical ~15 voxel updates.  This
constant makes that convention explicit."""

EQUIVALENT_FRAME_UPDATES = EQUIVALENT_FRAME_PIXELS * REFERENCE_UPDATES_PER_POINT
"""Voxel updates per equivalent 320x240 frame (1.152 million)."""


@dataclass(frozen=True)
class PaperReference:
    """Numbers the paper reports for one dataset (the reproduction targets).

    Attributes:
        i9_latency_s / a57_latency_s / omu_latency_s: Table III.
        i9_fps / a57_fps / omu_fps: Table IV (and Table II for the i9).
        a57_energy_j / omu_energy_j: Table V.
        cpu_breakdown: Fig. 3 runtime fractions on the i9 CPU, ordered
            (ray casting, update leaf, update parents, prune/expand).
    """

    i9_latency_s: float
    a57_latency_s: float
    omu_latency_s: float
    i9_fps: float
    a57_fps: float
    omu_fps: float
    a57_energy_j: float
    omu_energy_j: float
    cpu_breakdown: Tuple[float, float, float, float]

    @property
    def speedup_over_i9(self) -> float:
        """OMU speed-up over the Intel i9 reported by the paper."""
        return self.i9_latency_s / self.omu_latency_s

    @property
    def speedup_over_a57(self) -> float:
        """OMU speed-up over the ARM Cortex-A57 reported by the paper."""
        return self.a57_latency_s / self.omu_latency_s

    @property
    def energy_benefit(self) -> float:
        """OMU energy benefit over the A57 reported by the paper."""
        return self.a57_energy_j / self.omu_energy_j


@dataclass(frozen=True)
class DatasetDescriptor:
    """One evaluation dataset: Table II statistics plus paper references.

    Attributes:
        name: dataset name as used in the paper.
        scene: identifier of the synthetic scene generator standing in for
            the real laser data ("corridor", "campus" or "college").
        scan_number: number of laser scans in the dataset.
        average_points_per_scan: mean 3D points per scan.
        point_cloud_total: total points over the whole dataset.
        voxel_updates_total: total voxel (leaf) updates the dataset triggers
            at 0.2 m resolution.
        resolution_m: evaluation voxel size.
        paper: the paper's measured reference numbers.
    """

    name: str
    scene: str
    scan_number: int
    average_points_per_scan: float
    point_cloud_total: int
    voxel_updates_total: int
    resolution_m: float
    paper: PaperReference

    @property
    def equivalent_frames(self) -> float:
        """Number of equivalent 320x240 frames in the dataset.

        This is how the paper converts a dataset latency into an FPS figure
        (Table II reports ~5 FPS for the i9 on every map): the dataset's
        total voxel updates divided by the updates of one equivalent frame
        (see :data:`EQUIVALENT_FRAME_UPDATES`).
        """
        return self.voxel_updates_total / EQUIVALENT_FRAME_UPDATES

    @property
    def voxel_updates_per_point(self) -> float:
        """Average number of voxel updates each sensor point triggers."""
        return self.voxel_updates_total / self.point_cloud_total

    def fps_from_latency(self, latency_s: float) -> float:
        """Convert a whole-dataset latency into the paper's FPS metric."""
        if latency_s <= 0:
            raise ValueError("latency must be positive")
        return self.equivalent_frames / latency_s

    def latency_from_fps(self, fps: float) -> float:
        """Inverse of :meth:`fps_from_latency`."""
        if fps <= 0:
            raise ValueError("fps must be positive")
        return self.equivalent_frames / fps


FR079_CORRIDOR = DatasetDescriptor(
    name="FR-079 corridor",
    scene="corridor",
    scan_number=66,
    average_points_per_scan=89_000,
    point_cloud_total=5_900_000,
    voxel_updates_total=101_000_000,
    resolution_m=0.2,
    paper=PaperReference(
        i9_latency_s=16.8,
        a57_latency_s=81.7,
        omu_latency_s=1.31,
        i9_fps=5.23,
        a57_fps=1.07,
        omu_fps=63.66,
        a57_energy_j=227.2,
        omu_energy_j=0.32,
        cpu_breakdown=(0.01, 0.23, 0.14, 0.61),
    ),
)

FREIBURG_CAMPUS = DatasetDescriptor(
    name="Freiburg campus",
    scene="campus",
    scan_number=81,
    average_points_per_scan=248_000,
    point_cloud_total=20_100_000,
    voxel_updates_total=1_031_000_000,
    resolution_m=0.2,
    paper=PaperReference(
        i9_latency_s=177.7,
        a57_latency_s=897.2,
        omu_latency_s=14.4,
        i9_fps=5.03,
        a57_fps=1.0,
        omu_fps=62.05,
        a57_energy_j=2416.2,
        omu_energy_j=3.62,
        cpu_breakdown=(0.01, 0.26, 0.16, 0.57),
    ),
)

NEW_COLLEGE = DatasetDescriptor(
    name="New College",
    scene="college",
    scan_number=92_361,
    average_points_per_scan=156,
    point_cloud_total=14_500_000,
    voxel_updates_total=449_000_000,
    resolution_m=0.2,
    paper=PaperReference(
        i9_latency_s=77.3,
        a57_latency_s=401.5,
        omu_latency_s=6.5,
        i9_fps=5.04,
        a57_fps=0.97,
        omu_fps=60.87,
        a57_energy_j=1147.4,
        omu_energy_j=1.63,
        cpu_breakdown=(0.02, 0.34, 0.23, 0.41),
    ),
)

ALL_DATASETS: Tuple[DatasetDescriptor, ...] = (FR079_CORRIDOR, FREIBURG_CAMPUS, NEW_COLLEGE)

_BY_NAME: Dict[str, DatasetDescriptor] = {descriptor.name: descriptor for descriptor in ALL_DATASETS}
_BY_SCENE: Mapping[str, DatasetDescriptor] = {descriptor.scene: descriptor for descriptor in ALL_DATASETS}


def dataset_by_name(name: str) -> DatasetDescriptor:
    """Look a dataset up by its paper name or by its scene identifier.

    Raises:
        KeyError: listing the valid names when the lookup fails.
    """
    if name in _BY_NAME:
        return _BY_NAME[name]
    if name in _BY_SCENE:
        return _BY_SCENE[name]
    valid = sorted(set(_BY_NAME) | set(_BY_SCENE))
    raise KeyError(f"unknown dataset {name!r}; valid names: {valid}")
