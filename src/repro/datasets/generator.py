"""Scan-graph generation: synthetic stand-ins for the paper's datasets.

The full datasets trigger 10^8 .. 10^9 voxel updates -- far beyond what a
Python functional simulator should chew through -- so experiments run on
*scaled* scan graphs: the same scenes, the same sensor model and trajectory
shapes, but fewer scans and fewer beams per scan.  The measured
cycles-per-voxel-update (accelerator) and per-operation costs (CPU models)
are workload-intensity properties that transfer from the scaled graph to the
full-size dataset, whose total voxel-update count comes from the Table II
catalog; this is exactly how the paper itself converts measured latency into
the equivalent-frame FPS metric.

:func:`generate_scan_graph` builds a graph for a dataset descriptor at a
chosen scale; :func:`trajectory_for_scene` exposes the per-scene sensor paths
so examples can reuse them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.datasets.catalog import DatasetDescriptor, dataset_by_name
from repro.datasets.scenes import Scene, scene_by_name
from repro.datasets.sensors import SpinningLidar
from repro.octomap.pointcloud import Pose6D, ScanGraph, ScanNode

__all__ = ["GenerationSpec", "trajectory_for_scene", "generate_scan_graph", "generate_named_graph"]


@dataclass(frozen=True)
class GenerationSpec:
    """Parameters of one synthetic scan-graph generation.

    Attributes:
        num_scans: number of sensor poses along the trajectory.
        beams_azimuth / beams_elevation: LiDAR beam grid per scan.
        max_range_m: sensor range.
        dropout: fraction of beams discarded (tunes points per scan).
        seed: RNG seed for the dropout pattern.
    """

    num_scans: int = 6
    beams_azimuth: int = 180
    beams_elevation: int = 6
    max_range_m: float = 25.0
    dropout: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_scans < 1:
            raise ValueError("num_scans must be at least 1")

    def with_seed(self, seed: int) -> "GenerationSpec":
        """Copy of this spec drawing its randomness from a different seed.

        Multi-worker stream generation hands each worker the same spec plus
        its own seed, so per-worker traffic is reproducible without sharing
        RNG state.
        """
        return replace(self, seed=seed)


def trajectory_for_scene(scene_name: str, num_scans: int) -> List[Pose6D]:
    """Sensor poses along the canonical trajectory of a scene.

    The sensor travels at z = 0 in every scene (the scenes place their floor
    below the sensor), so the observed volume straddles all eight octants of
    the octree and the OMU's first-level-branch partitioning can spread work
    across its PEs:

    * corridor -- a straight walk along the corridor axis;
    * campus -- a loop around the central open area;
    * college -- a slow tour of the quad with small heading changes
      (mimicking the very many small scans of New College).
    """
    poses: List[Pose6D] = []
    if scene_name == "corridor":
        for index in range(num_scans):
            fraction = index / max(1, num_scans - 1)
            x = -14.0 + 28.0 * fraction
            poses.append(Pose6D((x, 0.0, 0.0), yaw=0.0))
    elif scene_name == "campus":
        for index in range(num_scans):
            angle = index * math.tau / max(1, num_scans)
            radius = 18.0
            x = radius * math.cos(angle)
            y = radius * math.sin(angle)
            poses.append(Pose6D((x, y, 0.0), yaw=angle + math.pi / 2.0))
    elif scene_name == "college":
        for index in range(num_scans):
            angle = index * math.tau / max(1, num_scans)
            radius = 20.0 + 2.0 * math.sin(3.0 * angle)
            x = radius * math.cos(angle)
            y = radius * math.sin(angle)
            poses.append(Pose6D((x, y, 0.0), yaw=angle + math.pi / 2.0 + 0.1 * math.sin(7.0 * angle)))
    else:
        raise KeyError(f"unknown scene {scene_name!r}")
    return poses


def generate_scan_graph(
    descriptor: DatasetDescriptor,
    spec: GenerationSpec,
    scene: Scene | None = None,
) -> ScanGraph:
    """Generate a scaled synthetic scan graph for one dataset descriptor.

    All randomness derives from ``spec.seed``; a worker pool fans the same
    spec out with per-worker seeds via :meth:`GenerationSpec.with_seed` and
    can regenerate any worker's graph exactly.
    """
    scene = scene if scene is not None else scene_by_name(descriptor.scene)
    lidar = SpinningLidar(
        num_azimuth=spec.beams_azimuth,
        num_elevation=spec.beams_elevation,
        max_range_m=spec.max_range_m,
        dropout=spec.dropout,
        seed=spec.seed,
    )
    graph = ScanGraph(name=descriptor.name)
    for scan_id, pose in enumerate(trajectory_for_scene(scene.name, spec.num_scans)):
        cloud = lidar.scan(scene, pose)
        graph.add_scan(ScanNode(cloud, pose, scan_id=scan_id))
    return graph


def generate_named_graph(
    name: str,
    num_scans: int = 6,
    beams_azimuth: int = 180,
    beams_elevation: int = 6,
    max_range_m: float = 25.0,
    dropout: float = 0.0,
    seed: int = 0,
) -> Tuple[DatasetDescriptor, ScanGraph]:
    """Convenience wrapper: look up the descriptor and generate its graph."""
    descriptor = dataset_by_name(name)
    spec = GenerationSpec(
        num_scans=num_scans,
        beams_azimuth=beams_azimuth,
        beams_elevation=beams_elevation,
        max_range_m=max_range_m,
        dropout=dropout,
        seed=seed,
    )
    return descriptor, generate_scan_graph(descriptor, spec)
