"""Plain-text scan-graph file format (reader and writer).

The OctoMap project distributes its datasets as ``.graph`` files: a sequence
of nodes, each a 6-DoF pose followed by the scan's 3D points.  This module
implements an equivalent self-describing text format so generated synthetic
graphs can be cached on disk, shared between benchmark runs, and inspected by
hand:

```
# repro-scangraph v1
# name: <dataset name>
NODE <x> <y> <z> <roll> <pitch> <yaw>
<px> <py> <pz>
...
NODE ...
```

Points are expressed in the sensor frame (the pose transforms them into the
world frame), matching the OctoMap convention.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.octomap.pointcloud import PointCloud, Pose6D, ScanGraph, ScanNode

__all__ = ["write_scan_graph", "read_scan_graph"]

_HEADER = "# repro-scangraph v1"


def write_scan_graph(graph: ScanGraph, path: Union[str, Path]) -> int:
    """Write a scan graph to ``path``; returns the number of lines written."""
    lines: List[str] = [_HEADER, f"# name: {graph.name}"]
    for scan in graph:
        pose = scan.pose
        lines.append(
            "NODE "
            f"{pose.translation[0]!r} {pose.translation[1]!r} {pose.translation[2]!r} "
            f"{pose.roll!r} {pose.pitch!r} {pose.yaw!r}"
        )
        for x, y, z in scan.cloud:
            lines.append(f"{x!r} {y!r} {z!r}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")
    return len(lines)


def read_scan_graph(path: Union[str, Path]) -> ScanGraph:
    """Read a scan graph previously written with :func:`write_scan_graph`.

    Raises:
        ValueError: on malformed files (wrong header, points before the first
            NODE line, or lines with the wrong number of fields).
    """
    text = Path(path).read_text(encoding="ascii")
    lines = text.splitlines()
    if not lines or lines[0].strip() != _HEADER:
        raise ValueError(f"{path}: not a repro-scangraph file (missing header)")

    name = ""
    graph_scans: List[ScanNode] = []
    current_pose: Pose6D | None = None
    current_points: List[List[float]] = []
    scan_id = 0

    def flush() -> None:
        nonlocal scan_id, current_points
        if current_pose is None:
            return
        graph_scans.append(ScanNode(PointCloud(current_points), current_pose, scan_id=scan_id))
        scan_id += 1
        current_points = []

    for line_number, raw_line in enumerate(lines[1:], start=2):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# name:"):
            name = line.partition(":")[2].strip()
            continue
        if line.startswith("#"):
            continue
        if line.startswith("NODE"):
            flush()
            fields = line.split()[1:]
            if len(fields) != 6:
                raise ValueError(f"{path}:{line_number}: NODE line needs 6 fields, got {len(fields)}")
            values = [float(field) for field in fields]
            current_pose = Pose6D(values[0:3], roll=values[3], pitch=values[4], yaw=values[5])
            continue
        if current_pose is None:
            raise ValueError(f"{path}:{line_number}: point data before the first NODE line")
        fields = line.split()
        if len(fields) != 3:
            raise ValueError(f"{path}:{line_number}: point line needs 3 fields, got {len(fields)}")
        current_points.append([float(field) for field in fields])

    flush()
    return ScanGraph(graph_scans, name=name)
