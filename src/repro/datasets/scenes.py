"""Synthetic 3D scenes standing in for the OctoMap 3D scan dataset.

The paper's laser datasets are not redistributable, so each of the three maps
is replaced by an analytic scene with comparable structure:

* **corridor** (FR-079 corridor): a long indoor corridor with side rooms and
  door openings -- mostly enclosed space, long thin free volume, dense wall
  returns.
* **campus** (Freiburg campus): a large outdoor area with a ground plane,
  building facades and tree trunks -- long beams, large free volumes, a mix
  of hits and max-range misses.
* **college** (New College): an outdoor quad surrounded by walls with a few
  interior structures, scanned from very many poses with few points each.

A scene is a collection of geometric primitives (axis-aligned boxes, a ground
plane, vertical cylinders) supporting exact ray intersection; the simulated
LiDAR (:mod:`repro.datasets.sensors`) casts beams against it.  The scenes are
centred on the world origin so the octree's eight first-level branches all
receive work, which is the load-balance regime the OMU's first-level-branch
partitioning targets.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "Primitive",
    "AxisAlignedBox",
    "GroundPlane",
    "VerticalCylinder",
    "Scene",
    "corridor_scene",
    "campus_scene",
    "college_scene",
    "scene_by_name",
]

_EPSILON = 1e-9


class Primitive:
    """Base class of ray-intersectable scene primitives."""

    def intersect(self, origin: Sequence[float], direction: Sequence[float]) -> Optional[float]:
        """Return the smallest positive ray parameter hitting the primitive.

        ``direction`` must be a unit vector; ``None`` means no hit.
        """
        raise NotImplementedError


class AxisAlignedBox(Primitive):
    """A solid axis-aligned box (wall segment, building, pillar, ...)."""

    def __init__(self, minimum: Sequence[float], maximum: Sequence[float]) -> None:
        if any(minimum[axis] >= maximum[axis] for axis in range(3)):
            raise ValueError(f"degenerate box: min {minimum} max {maximum}")
        self.minimum = tuple(float(value) for value in minimum)
        self.maximum = tuple(float(value) for value in maximum)

    def intersect(self, origin: Sequence[float], direction: Sequence[float]) -> Optional[float]:
        t_near = -math.inf
        t_far = math.inf
        for axis in range(3):
            if abs(direction[axis]) < _EPSILON:
                if not self.minimum[axis] <= origin[axis] <= self.maximum[axis]:
                    return None
                continue
            t1 = (self.minimum[axis] - origin[axis]) / direction[axis]
            t2 = (self.maximum[axis] - origin[axis]) / direction[axis]
            if t1 > t2:
                t1, t2 = t2, t1
            t_near = max(t_near, t1)
            t_far = min(t_far, t2)
            if t_near > t_far:
                return None
        if t_far < _EPSILON:
            return None
        return t_near if t_near > _EPSILON else t_far

    def contains(self, point: Sequence[float]) -> bool:
        """True if the point lies inside (or on the surface of) the box."""
        return all(self.minimum[axis] - _EPSILON <= point[axis] <= self.maximum[axis] + _EPSILON for axis in range(3))


class GroundPlane(Primitive):
    """A horizontal plane ``z = height`` hit only from above."""

    def __init__(self, height: float = 0.0) -> None:
        self.height = float(height)

    def intersect(self, origin: Sequence[float], direction: Sequence[float]) -> Optional[float]:
        if abs(direction[2]) < _EPSILON:
            return None
        t = (self.height - origin[2]) / direction[2]
        return t if t > _EPSILON else None


class VerticalCylinder(Primitive):
    """A vertical cylinder (tree trunk, column) of finite height."""

    def __init__(self, center_x: float, center_y: float, radius: float, z_min: float, z_max: float) -> None:
        if radius <= 0:
            raise ValueError("radius must be positive")
        if z_min >= z_max:
            raise ValueError("z_min must be below z_max")
        self.center_x = float(center_x)
        self.center_y = float(center_y)
        self.radius = float(radius)
        self.z_min = float(z_min)
        self.z_max = float(z_max)

    def intersect(self, origin: Sequence[float], direction: Sequence[float]) -> Optional[float]:
        ox = origin[0] - self.center_x
        oy = origin[1] - self.center_y
        dx, dy = direction[0], direction[1]
        a = dx * dx + dy * dy
        if a < _EPSILON:
            return None
        b = 2.0 * (ox * dx + oy * dy)
        c = ox * ox + oy * oy - self.radius * self.radius
        discriminant = b * b - 4.0 * a * c
        if discriminant < 0.0:
            return None
        root = math.sqrt(discriminant)
        for t in ((-b - root) / (2.0 * a), (-b + root) / (2.0 * a)):
            if t > _EPSILON:
                z = origin[2] + direction[2] * t
                if self.z_min <= z <= self.z_max:
                    return t
        return None


class Scene:
    """A named collection of primitives supporting nearest-hit ray casting."""

    def __init__(self, name: str, primitives: Sequence[Primitive], extent_m: float) -> None:
        self.name = name
        self.primitives: List[Primitive] = list(primitives)
        self.extent_m = float(extent_m)

    def cast(
        self,
        origin: Sequence[float],
        direction: Sequence[float],
        max_range: float,
    ) -> Optional[Tuple[float, float, float]]:
        """Nearest surface hit of a ray, or None when nothing is hit in range."""
        best: Optional[float] = None
        for primitive in self.primitives:
            t = primitive.intersect(origin, direction)
            if t is not None and t <= max_range and (best is None or t < best):
                best = t
        if best is None:
            return None
        return (
            origin[0] + direction[0] * best,
            origin[1] + direction[1] * best,
            origin[2] + direction[2] * best,
        )

    def add(self, primitive: Primitive) -> None:
        """Add one more primitive to the scene."""
        self.primitives.append(primitive)


def corridor_scene(
    length_m: float = 36.0,
    width_m: float = 2.4,
    height_m: float = 2.8,
    floor_z: float = -1.3,
) -> Scene:
    """Indoor corridor with side rooms, standing in for FR-079.

    The corridor runs along the x axis, centred on the origin; two side rooms
    open off it and a few cabinet-sized boxes line the walls so the scans
    contain fine structure that defeats trivial pruning.  The floor sits at
    ``floor_z`` (the sensor travels at z = 0), so the world origin -- and with
    it the octree's first-level branch boundary -- lies inside the observed
    volume and all eight PEs receive work.
    """
    half_length = length_m / 2.0
    half_width = width_m / 2.0
    wall = 0.2
    ceiling_z = floor_z + height_m
    primitives: List[Primitive] = [
        GroundPlane(floor_z),
        # ceiling
        AxisAlignedBox((-half_length, -half_width - 2.0, ceiling_z), (half_length, half_width + 2.0, ceiling_z + wall)),
        # long side walls (with a gap for each side room)
        AxisAlignedBox((-half_length, half_width, floor_z), (-2.0, half_width + wall, ceiling_z)),
        AxisAlignedBox((2.0, half_width, floor_z), (half_length, half_width + wall, ceiling_z)),
        AxisAlignedBox((-half_length, -half_width - wall, floor_z), (-6.0, -half_width, ceiling_z)),
        AxisAlignedBox((-2.0, -half_width - wall, floor_z), (half_length, -half_width, ceiling_z)),
        # end walls
        AxisAlignedBox((-half_length - wall, -half_width - 2.0, floor_z), (-half_length, half_width + 2.0, ceiling_z)),
        AxisAlignedBox((half_length, -half_width - 2.0, floor_z), (half_length + wall, half_width + 2.0, ceiling_z)),
        # side room A (positive y, entered through the gap at x in [-2, 2])
        AxisAlignedBox((-2.0 - wall, half_width + 3.0, floor_z), (2.0 + wall, half_width + 3.0 + wall, ceiling_z)),
        AxisAlignedBox((-2.0 - wall, half_width, floor_z), (-2.0, half_width + 3.0, ceiling_z)),
        AxisAlignedBox((2.0, half_width, floor_z), (2.0 + wall, half_width + 3.0, ceiling_z)),
        # side room B (negative y, entered through the gap at x in [-6, -2])
        AxisAlignedBox((-6.0 - wall, -half_width - 2.5 - wall, floor_z), (-2.0 + wall, -half_width - 2.5, ceiling_z)),
        AxisAlignedBox((-6.0 - wall, -half_width - 2.5, floor_z), (-6.0, -half_width, ceiling_z)),
        AxisAlignedBox((-2.0, -half_width - 2.5, floor_z), (-2.0 + wall, -half_width, ceiling_z)),
    ]
    # cabinets along the corridor walls
    for index, x in enumerate(range(-14, 15, 4)):
        side = 1.0 if index % 2 == 0 else -1.0
        y0 = side * (half_width - 0.45)
        primitives.append(
            AxisAlignedBox(
                (x, min(y0, y0 + 0.4 * side), floor_z),
                (x + 0.8, max(y0, y0 + 0.4 * side), floor_z + 1.2 + 0.1 * (index % 3)),
            )
        )
    return Scene("corridor", primitives, extent_m=length_m)


def campus_scene(extent_m: float = 80.0, floor_z: float = -1.6) -> Scene:
    """Outdoor campus: ground, building facades and tree rows (Freiburg campus).

    The ground plane sits at ``floor_z`` so the sensor trajectory at z = 0
    straddles the octree's first-level branch boundary (see
    :func:`corridor_scene`).
    """
    half = extent_m / 2.0
    primitives: List[Primitive] = [GroundPlane(floor_z)]
    # buildings around a central open area
    buildings = [
        ((-half + 5.0, -half + 5.0), (18.0, 12.0, 9.0)),
        ((half - 30.0, -half + 8.0), (22.0, 10.0, 12.0)),
        ((-half + 8.0, half - 22.0), (14.0, 16.0, 7.0)),
        ((half - 24.0, half - 18.0), (16.0, 12.0, 10.0)),
        ((-6.0, -10.0), (10.0, 6.0, 5.0)),
    ]
    for (base_x, base_y), (size_x, size_y, size_z) in buildings:
        primitives.append(
            AxisAlignedBox((base_x, base_y, floor_z), (base_x + size_x, base_y + size_y, floor_z + size_z))
        )
    # rows of trees along two avenues
    for index in range(10):
        x = -half + 8.0 + index * (extent_m - 16.0) / 9.0
        primitives.append(VerticalCylinder(x, 14.0, 0.35, floor_z, floor_z + 6.0))
        primitives.append(VerticalCylinder(x, -16.0, 0.4, floor_z, floor_z + 7.0))
    return Scene("campus", primitives, extent_m=extent_m)


def college_scene(extent_m: float = 60.0, floor_z: float = -1.4) -> Scene:
    """Outdoor quad enclosed by walls with interior structures (New College).

    The ground plane sits at ``floor_z`` so the sensor trajectory at z = 0
    straddles the octree's first-level branch boundary (see
    :func:`corridor_scene`).
    """
    half = extent_m / 2.0
    wall = 0.4
    wall_top = floor_z + 4.0
    primitives: List[Primitive] = [
        GroundPlane(floor_z),
        AxisAlignedBox((-half, -half, floor_z), (half, -half + wall, wall_top)),
        AxisAlignedBox((-half, half - wall, floor_z), (half, half, wall_top)),
        AxisAlignedBox((-half, -half, floor_z), (-half + wall, half, wall_top)),
        AxisAlignedBox((half - wall, -half, floor_z), (half, half, wall_top)),
        # central monument and two garden beds
        AxisAlignedBox((-2.0, -2.0, floor_z), (2.0, 2.0, floor_z + 3.0)),
        AxisAlignedBox((-18.0, 8.0, floor_z), (-8.0, 12.0, floor_z + 0.8)),
        AxisAlignedBox((8.0, -14.0, floor_z), (16.0, -9.0, floor_z + 0.8)),
    ]
    for index in range(8):
        angle = index * math.tau / 8.0
        primitives.append(
            VerticalCylinder(12.0 * math.cos(angle), 12.0 * math.sin(angle), 0.3, floor_z, floor_z + 5.0)
        )
    return Scene("college", primitives, extent_m=extent_m)


def scene_by_name(name: str) -> Scene:
    """Instantiate one of the three named scenes.

    Raises:
        KeyError: for unknown scene names.
    """
    factories = {
        "corridor": corridor_scene,
        "campus": campus_scene,
        "college": college_scene,
    }
    if name not in factories:
        raise KeyError(f"unknown scene {name!r}; valid scenes: {sorted(factories)}")
    return factories[name]()
