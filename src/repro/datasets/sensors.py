"""Simulated range sensors.

Two sensor models cover the paper's data sources:

* :class:`SpinningLidar` -- a multi-beam rotating laser scanner (the 3D laser
  scans of the OctoMap dataset).  Beams are distributed over a configurable
  azimuth / elevation grid; each beam is intersected with the scene and the
  hit point is returned in the *sensor frame*, so a
  :class:`~repro.octomap.pointcloud.ScanNode` built from the returned cloud
  and the sensor pose reproduces the exact world-frame geometry.
* :class:`DepthCamera` -- a pin-hole depth sensor (the paper's Kinect example
  producing 9.2 million points per second); used by the examples to show a
  camera-based pipeline.

Both models support random beam dropout so the number of returns per scan can
be matched to the dataset statistics without changing the angular coverage.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.datasets.scenes import Scene
from repro.octomap.pointcloud import PointCloud, Pose6D

__all__ = ["SpinningLidar", "DepthCamera"]


class SpinningLidar:
    """A rotating multi-beam LiDAR model.

    Args:
        num_azimuth: beams per revolution.
        num_elevation: vertical channels.
        vertical_fov_deg: total vertical field of view, centred on horizontal.
        max_range_m: maximum measurable range; beams without a hit inside the
            range produce no return (like a real LiDAR).
        dropout: fraction of beams randomly discarded (models sub-sampling
            and absorbing surfaces); use it to match points-per-scan targets.
        seed: seed of the dropout random generator.
    """

    def __init__(
        self,
        num_azimuth: int = 360,
        num_elevation: int = 16,
        vertical_fov_deg: float = 30.0,
        max_range_m: float = 30.0,
        dropout: float = 0.0,
        seed: int = 0,
    ) -> None:
        if num_azimuth < 1 or num_elevation < 1:
            raise ValueError("the beam grid must have at least one beam")
        if not 0.0 <= dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if max_range_m <= 0:
            raise ValueError("max_range_m must be positive")
        self.num_azimuth = num_azimuth
        self.num_elevation = num_elevation
        self.vertical_fov_deg = vertical_fov_deg
        self.max_range_m = max_range_m
        self.dropout = dropout
        self._rng = np.random.default_rng(seed)

    @property
    def beams_per_scan(self) -> int:
        """Number of beams fired per revolution (before dropout and misses)."""
        return self.num_azimuth * self.num_elevation

    def directions(self) -> np.ndarray:
        """Unit beam directions in the sensor frame, shape (beams, 3)."""
        azimuths = np.linspace(-math.pi, math.pi, self.num_azimuth, endpoint=False)
        half_fov = math.radians(self.vertical_fov_deg) / 2.0
        if self.num_elevation == 1:
            elevations = np.array([0.0])
        else:
            elevations = np.linspace(-half_fov, half_fov, self.num_elevation)
        directions = np.empty((self.num_azimuth * self.num_elevation, 3), dtype=np.float64)
        index = 0
        for elevation in elevations:
            cos_el = math.cos(elevation)
            sin_el = math.sin(elevation)
            for azimuth in azimuths:
                directions[index] = (
                    cos_el * math.cos(azimuth),
                    cos_el * math.sin(azimuth),
                    sin_el,
                )
                index += 1
        return directions

    def scan(self, scene: Scene, pose: Pose6D) -> PointCloud:
        """Fire one revolution from ``pose`` and return the sensor-frame cloud."""
        rotation = pose.rotation_matrix()
        origin = np.asarray(pose.translation, dtype=np.float64)
        points = []
        for direction in self.directions():
            if self.dropout > 0.0 and self._rng.random() < self.dropout:
                continue
            world_direction = rotation @ direction
            hit = scene.cast(origin, world_direction, self.max_range_m)
            if hit is None:
                continue
            relative = np.asarray(hit, dtype=np.float64) - origin
            sensor_point = rotation.T @ relative
            points.append(sensor_point)
        return PointCloud(np.asarray(points) if points else None)


class DepthCamera:
    """A pin-hole depth camera model (Kinect-like).

    Args:
        width / height: depth image resolution in pixels.
        horizontal_fov_deg: horizontal field of view.
        max_range_m: maximum measurable depth.
        stride: sample every ``stride``-th pixel in both directions (depth
            images are dense; mapping pipelines typically sub-sample them).
    """

    def __init__(
        self,
        width: int = 320,
        height: int = 240,
        horizontal_fov_deg: float = 58.0,
        max_range_m: float = 8.0,
        stride: int = 4,
    ) -> None:
        if width < 1 or height < 1:
            raise ValueError("image dimensions must be positive")
        if stride < 1:
            raise ValueError("stride must be at least 1")
        self.width = width
        self.height = height
        self.horizontal_fov_deg = horizontal_fov_deg
        self.max_range_m = max_range_m
        self.stride = stride

    @property
    def pixels_per_frame(self) -> int:
        """Total pixels in a frame (320x240 = the paper's FPS reference frame)."""
        return self.width * self.height

    def scan(self, scene: Scene, pose: Pose6D) -> PointCloud:
        """Render one depth frame and return the sensor-frame point cloud.

        The optical axis is the sensor's +x axis so the camera convention
        matches the LiDAR (and the scan-graph pose convention).
        """
        rotation = pose.rotation_matrix()
        origin = np.asarray(pose.translation, dtype=np.float64)
        focal = (self.width / 2.0) / math.tan(math.radians(self.horizontal_fov_deg) / 2.0)
        center_u = self.width / 2.0
        center_v = self.height / 2.0
        points = []
        for v in range(0, self.height, self.stride):
            for u in range(0, self.width, self.stride):
                direction = np.asarray(
                    (1.0, -(u - center_u) / focal, -(v - center_v) / focal), dtype=np.float64
                )
                direction /= np.linalg.norm(direction)
                world_direction = rotation @ direction
                hit = scene.cast(origin, world_direction, self.max_range_m)
                if hit is None:
                    continue
                relative = np.asarray(hit, dtype=np.float64) - origin
                points.append(rotation.T @ relative)
        return PointCloud(np.asarray(points) if points else None)


def look_at_yaw(from_point: Tuple[float, float], to_point: Tuple[float, float]) -> float:
    """Yaw angle pointing from one planar position towards another."""
    return math.atan2(to_point[1] - from_point[1], to_point[0] - from_point[0])
