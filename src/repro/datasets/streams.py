"""Multi-client scan streams: realistic traffic for the serving layer.

A mapping *service* does not see one tidy scan graph -- it sees many clients'
scans arriving interleaved.  This module turns the existing scene / sensor /
trajectory machinery into such traffic: each :class:`ClientSpec` names a
scene and a session, and :func:`generate_interleaved_stream` merges every
client's scan sequence into one arrival-ordered stream of
:class:`StreamEvent` records.

Reproducibility: all randomness (beam dropout, interleaving jitter) derives
from one explicit master seed via :func:`numpy.random.SeedSequence.spawn`, so
two workers generating the same stream spec -- or the same worker re-running
it -- observe identical traffic, per client and in the same global order.

For *open-loop* load testing (arrivals scheduled on a wall clock rather than
paced by service completions) every :class:`StreamEvent` additionally
carries an ``arrival_s`` offset: :func:`poisson_arrival_times` and
:func:`bursty_arrival_times` generate the classic arrival processes, and
:func:`assign_arrival_times` stamps a stream with them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

import numpy as np

from repro.datasets.generator import trajectory_for_scene
from repro.datasets.scenes import scene_by_name
from repro.datasets.sensors import DepthCamera, SpinningLidar
from repro.octomap.pointcloud import ScanNode

__all__ = [
    "ClientSpec",
    "StreamEvent",
    "assign_arrival_times",
    "bursty_arrival_times",
    "generate_client_scans",
    "generate_interleaved_stream",
    "poisson_arrival_times",
]


@dataclass(frozen=True)
class ClientSpec:
    """One client's traffic profile.

    Attributes:
        client_id: unique client tag (also the stats label).
        session_id: map session the client writes into; several clients may
            share a session (a robot fleet building one map).
        scene: scene name (``"corridor"``, ``"campus"``, ``"college"``).
        sensor: ``"lidar"`` or ``"depth_camera"``.
        num_scans: scans this client sends.
        max_range_m: sensor range.
        dropout: beam dropout fraction (LiDAR only).
        priority: ingestion priority carried on every request.
    """

    client_id: str
    session_id: str
    scene: str = "corridor"
    sensor: str = "lidar"
    num_scans: int = 4
    max_range_m: float = 15.0
    dropout: float = 0.0
    priority: int = 0

    def __post_init__(self) -> None:
        if self.num_scans < 1:
            raise ValueError("num_scans must be at least 1")
        if self.sensor not in ("lidar", "depth_camera"):
            raise ValueError(f"unknown sensor {self.sensor!r}")


@dataclass(frozen=True)
class StreamEvent:
    """One arrival in the merged multi-client stream.

    ``arrival_s`` is the open-loop arrival offset in seconds from stream
    start (0.0 when the stream carries no timing, i.e. closed-loop replay).
    """

    arrival_index: int
    client_id: str
    session_id: str
    scan: ScanNode
    priority: int
    max_range_m: float
    arrival_s: float = 0.0


def generate_client_scans(
    spec: ClientSpec,
    seed: int = 0,
    beams_azimuth: int = 96,
    beams_elevation: int = 3,
) -> List[ScanNode]:
    """Generate one client's scan sequence (deterministic in ``seed``)."""
    scene = scene_by_name(spec.scene)
    poses = trajectory_for_scene(spec.scene, spec.num_scans)
    if spec.sensor == "lidar":
        sensor = SpinningLidar(
            num_azimuth=beams_azimuth,
            num_elevation=beams_elevation,
            max_range_m=spec.max_range_m,
            dropout=spec.dropout,
            seed=seed,
        )
    else:
        sensor = DepthCamera(width=64, height=48, max_range_m=spec.max_range_m, stride=4)
    scans: List[ScanNode] = []
    for scan_id, pose in enumerate(poses):
        cloud = sensor.scan(scene, pose)
        scans.append(ScanNode(cloud, pose, scan_id=scan_id))
    return scans


def generate_interleaved_stream(
    clients: Sequence[ClientSpec],
    seed: int = 0,
    beams_azimuth: int = 96,
    beams_elevation: int = 3,
    shuffle: bool = True,
) -> List[StreamEvent]:
    """Merge every client's scans into one arrival-ordered stream.

    With ``shuffle=True`` arrivals are randomly interleaved (each client's
    own scans keep their order -- a sensor never delivers frame 3 before
    frame 2); with ``shuffle=False`` clients are interleaved round-robin.
    Both modes are fully determined by ``seed``.
    """
    if not clients:
        return []
    client_ids = [spec.client_id for spec in clients]
    if len(set(client_ids)) != len(client_ids):
        raise ValueError(f"duplicate client ids in stream spec: {client_ids}")

    # One independent child seed per client plus one for the interleaving,
    # all derived from the master seed: adding a client never perturbs the
    # other clients' scans.
    root = np.random.SeedSequence(seed)
    child_seeds = root.spawn(len(clients) + 1)
    per_client = [
        generate_client_scans(
            spec,
            seed=int(child_seeds[index].generate_state(1)[0]),
            beams_azimuth=beams_azimuth,
            beams_elevation=beams_elevation,
        )
        for index, spec in enumerate(clients)
    ]

    if shuffle:
        # A bag holding each client once per scan, shuffled and consumed
        # front to back (each client's own scans keep their order).
        order: List[int] = []
        for index, spec in enumerate(clients):
            order.extend([index] * spec.num_scans)
        rng = np.random.default_rng(child_seeds[-1])
        rng.shuffle(order)
    else:
        order = _round_robin(clients)

    cursors = [0] * len(clients)
    events: List[StreamEvent] = []
    for arrival_index, client_index in enumerate(order):
        spec = clients[client_index]
        scan = per_client[client_index][cursors[client_index]]
        cursors[client_index] += 1
        events.append(
            StreamEvent(
                arrival_index=arrival_index,
                client_id=spec.client_id,
                session_id=spec.session_id,
                scan=scan,
                priority=spec.priority,
                max_range_m=spec.max_range_m,
            )
        )
    return events


def _round_robin(clients: Sequence[ClientSpec]) -> List[int]:
    """Round-robin client order until every client's scans are exhausted."""
    remaining = [spec.num_scans for spec in clients]
    order: List[int] = []
    while any(remaining):
        for index in range(len(clients)):
            if remaining[index] > 0:
                order.append(index)
                remaining[index] -= 1
    return order


# ---------------------------------------------------------------------------
# Open-loop arrival processes
# ---------------------------------------------------------------------------
def poisson_arrival_times(
    num_events: int, rate_per_s: float, seed: int = 0
) -> np.ndarray:
    """Arrival offsets of a Poisson process (exponential inter-arrivals).

    The canonical open-loop workload: arrivals are independent of service
    times, so a service that cannot keep up accumulates queueing delay
    instead of silently slowing the workload down (the coordinated-omission
    trap of closed-loop drivers).

    Returns a sorted float array of ``num_events`` offsets in seconds,
    starting at the first inter-arrival gap.
    """
    if num_events < 0:
        raise ValueError("num_events must be non-negative")
    if rate_per_s <= 0.0:
        raise ValueError("rate_per_s must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_per_s, size=num_events)
    return np.cumsum(gaps)


def bursty_arrival_times(
    num_events: int,
    rate_per_s: float,
    seed: int = 0,
    burst_size: int = 8,
    within_burst_gap_s: float = 0.001,
) -> np.ndarray:
    """Arrival offsets of a bursty process: Poisson bursts of back-to-back events.

    Bursts arrive as a Poisson process whose rate preserves the long-run
    mean of ``rate_per_s`` events/s; within a burst, events land
    ``within_burst_gap_s`` apart.  Models robot fleets uploading buffered
    scans after connectivity gaps -- the worst case for admission queues.
    """
    if num_events < 0:
        raise ValueError("num_events must be non-negative")
    if rate_per_s <= 0.0:
        raise ValueError("rate_per_s must be positive")
    if burst_size < 1:
        raise ValueError("burst_size must be at least 1")
    num_bursts = (num_events + burst_size - 1) // burst_size
    burst_starts = poisson_arrival_times(
        num_bursts, rate_per_s / burst_size, seed=seed
    )
    offsets = np.empty(num_events)
    for burst, start in enumerate(burst_starts):
        lo = burst * burst_size
        hi = min(lo + burst_size, num_events)
        offsets[lo:hi] = start + within_burst_gap_s * np.arange(hi - lo)
    return np.sort(offsets)


def assign_arrival_times(
    events: Sequence[StreamEvent], arrival_times: Sequence[float]
) -> List[StreamEvent]:
    """Stamp a stream with open-loop arrival offsets, preserving order.

    ``arrival_times`` must be sorted and one per event; each event keeps its
    position in the stream and gains the matching ``arrival_s``.
    """
    if len(events) != len(arrival_times):
        raise ValueError(
            f"{len(events)} events but {len(arrival_times)} arrival times"
        )
    stamped: List[StreamEvent] = []
    previous = -float("inf")
    for event, arrival in zip(events, arrival_times):
        arrival = float(arrival)
        if arrival < previous:
            raise ValueError("arrival_times must be sorted (open-loop schedule)")
        previous = arrival
        stamped.append(replace(event, arrival_s=arrival))
    return stamped
