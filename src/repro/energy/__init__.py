"""12 nm power, energy and area models calibrated to the paper's totals."""

from repro.energy.area_model import AreaModel, AreaParameters, AreaReport
from repro.energy.power_model import (
    NOMINAL_SRAM_ACCESSES_PER_CYCLE,
    PowerModel,
    PowerReport,
    TechnologyParameters,
)

__all__ = [
    "AreaModel",
    "AreaParameters",
    "AreaReport",
    "NOMINAL_SRAM_ACCESSES_PER_CYCLE",
    "PowerModel",
    "PowerReport",
    "TechnologyParameters",
]
