"""12 nm area model of the OMU accelerator (paper Fig. 8).

The paper's layout occupies **2.5 mm^2** (2.0 mm x 1.25 mm) for 8 PEs, each
with 256 kB of SRAM, plus the shared front end (ray casting, scheduler, query
unit, AXI interface).  The model decomposes that total into per-component
contributions using SRAM macro density and logic-area figures typical of a
12 nm process, calibrated so the default configuration lands on the paper's
total:

* SRAM macros: ~0.85 mm^2 per MB (32 kB single-port macros with peripheral
  overhead);
* PE control / datapath logic: ~0.08 mm^2 per PE;
* shared front end + interconnect: ~0.16 mm^2.

The same constants scale to the ablation configurations (different PE counts
or bank sizes), which is what the area/scaling bench exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.config import DEFAULT_CONFIG, OMUConfig

__all__ = ["AreaParameters", "AreaReport", "AreaModel"]


@dataclass(frozen=True)
class AreaParameters:
    """Area constants of the 12 nm implementation."""

    sram_mm2_per_mb: float = 0.85
    pe_logic_mm2: float = 0.08
    frontend_mm2: float = 0.16
    layout_width_mm: float = 2.0
    layout_height_mm: float = 1.25

    def __post_init__(self) -> None:
        for name in ("sram_mm2_per_mb", "pe_logic_mm2", "frontend_mm2"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class AreaReport:
    """Area split of one configuration (all values in mm^2)."""

    sram_mm2: float
    pe_logic_mm2: float
    frontend_mm2: float

    @property
    def total_mm2(self) -> float:
        """Total accelerator area."""
        return self.sram_mm2 + self.pe_logic_mm2 + self.frontend_mm2

    @property
    def sram_fraction(self) -> float:
        """Share of the area occupied by SRAM macros."""
        return self.sram_mm2 / self.total_mm2 if self.total_mm2 else 0.0

    def as_dict(self) -> Mapping[str, float]:
        """Flat dictionary view (for table rendering)."""
        return {
            "sram_mm2": self.sram_mm2,
            "pe_logic_mm2": self.pe_logic_mm2,
            "frontend_mm2": self.frontend_mm2,
            "total_mm2": self.total_mm2,
            "sram_fraction": self.sram_fraction,
        }


class AreaModel:
    """Computes the accelerator area for a configuration."""

    def __init__(
        self,
        config: OMUConfig = DEFAULT_CONFIG,
        parameters: AreaParameters = AreaParameters(),
    ) -> None:
        self.config = config
        self.parameters = parameters

    def report(self) -> AreaReport:
        """Area breakdown of the configured accelerator."""
        sram_mb = self.config.total_memory_bytes / (1024 * 1024)
        return AreaReport(
            sram_mm2=sram_mb * self.parameters.sram_mm2_per_mb,
            pe_logic_mm2=self.config.num_pes * self.parameters.pe_logic_mm2,
            frontend_mm2=self.parameters.frontend_mm2,
        )

    def layout_mm(self) -> tuple[float, float]:
        """Die outline reported in the paper's layout figure (width, height)."""
        return (self.parameters.layout_width_mm, self.parameters.layout_height_mm)

    def fits_layout(self, utilization: float = 0.85) -> bool:
        """True if the modelled area fits the paper's outline at ``utilization``.

        Physical designs never fill the outline completely; the default 85 %
        placement utilisation is typical of SRAM-dominated macros.
        """
        if not 0.0 < utilization <= 1.0:
            raise ValueError("utilization must be in (0, 1]")
        width, height = self.layout_mm()
        return self.report().total_mm2 <= width * height / utilization
