"""12 nm power and energy model of the OMU accelerator.

The paper reports post-P&R power at 1 GHz / 0.8 V: **250.8 mW**, of which
**91 % is SRAM** (Section VI-C), and derives the energy numbers of Table V as
``power x latency``.  Without the commercial 12 nm libraries the absolute
numbers cannot be re-derived from first principles, so this model uses
per-event energies and leakage densities in the range published for
comparable 12-16 nm designs, calibrated so that the accelerator's *nominal
activity* (the SRAM access rate the cycle model produces on the evaluation
workloads) reproduces the paper's total power and SRAM share:

* SRAM dynamic energy: ~7.5 pJ per 64-bit access to a 32 kB bank;
* SRAM leakage: ~57 mW per MB at 0.8 V (2 MB on chip);
* PE logic: ~2 pJ per busy PE cycle plus ~8 mW total logic leakage.

The model consumes :class:`repro.core.accelerator.AcceleratorStatistics`
(access counts and cycles measured by the simulator), so power tracks the
workload's actual memory behaviour rather than being a constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.accelerator import AcceleratorStatistics
from repro.core.config import DEFAULT_CONFIG, OMUConfig

__all__ = ["TechnologyParameters", "PowerReport", "PowerModel", "NOMINAL_SRAM_ACCESSES_PER_CYCLE"]

NOMINAL_SRAM_ACCESSES_PER_CYCLE = 15.0
"""Accelerator-wide single-bank SRAM accesses per cycle under the evaluation
workloads (measured by the cycle model: ~170 accesses per voxel update spread
over ~90 PE cycles, times 8 PEs)."""


@dataclass(frozen=True)
class TechnologyParameters:
    """Energy and leakage constants of the 12 nm implementation."""

    sram_read_energy_pj: float = 7.5
    sram_write_energy_pj: float = 8.0
    sram_leakage_mw_per_mb: float = 57.0
    logic_energy_per_pe_cycle_pj: float = 2.0
    logic_leakage_mw: float = 8.0

    def __post_init__(self) -> None:
        for name in (
            "sram_read_energy_pj",
            "sram_write_energy_pj",
            "sram_leakage_mw_per_mb",
            "logic_energy_per_pe_cycle_pj",
            "logic_leakage_mw",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class PowerReport:
    """Power split of one operating point (all values in watts)."""

    sram_dynamic_w: float
    sram_leakage_w: float
    logic_dynamic_w: float
    logic_leakage_w: float

    @property
    def sram_w(self) -> float:
        """Total SRAM power."""
        return self.sram_dynamic_w + self.sram_leakage_w

    @property
    def logic_w(self) -> float:
        """Total logic power."""
        return self.logic_dynamic_w + self.logic_leakage_w

    @property
    def total_w(self) -> float:
        """Total accelerator power."""
        return self.sram_w + self.logic_w

    @property
    def sram_fraction(self) -> float:
        """Share of the total power consumed by SRAM (paper: 91 %)."""
        return self.sram_w / self.total_w if self.total_w else 0.0

    def as_dict(self) -> Mapping[str, float]:
        """Flat dictionary view (for table rendering)."""
        return {
            "sram_dynamic_w": self.sram_dynamic_w,
            "sram_leakage_w": self.sram_leakage_w,
            "logic_dynamic_w": self.logic_dynamic_w,
            "logic_leakage_w": self.logic_leakage_w,
            "total_w": self.total_w,
            "sram_fraction": self.sram_fraction,
        }


class PowerModel:
    """Computes OMU power and energy from activity statistics."""

    def __init__(
        self,
        config: OMUConfig = DEFAULT_CONFIG,
        technology: TechnologyParameters = TechnologyParameters(),
    ) -> None:
        self.config = config
        self.technology = technology

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    def power_from_activity(
        self,
        sram_reads_per_cycle: float,
        sram_writes_per_cycle: float,
        active_pes: float,
    ) -> PowerReport:
        """Power at a given steady-state activity level.

        Args:
            sram_reads_per_cycle / sram_writes_per_cycle: accelerator-wide
                single-bank accesses per clock cycle.
            active_pes: average number of PEs busy per cycle.
        """
        tech = self.technology
        clock = self.config.clock_hz
        sram_dynamic = (
            sram_reads_per_cycle * tech.sram_read_energy_pj
            + sram_writes_per_cycle * tech.sram_write_energy_pj
        ) * 1e-12 * clock
        sram_leakage = tech.sram_leakage_mw_per_mb * 1e-3 * (
            self.config.total_memory_bytes / (1024 * 1024)
        )
        logic_dynamic = active_pes * tech.logic_energy_per_pe_cycle_pj * 1e-12 * clock
        logic_leakage = tech.logic_leakage_mw * 1e-3
        return PowerReport(
            sram_dynamic_w=sram_dynamic,
            sram_leakage_w=sram_leakage,
            logic_dynamic_w=logic_dynamic,
            logic_leakage_w=logic_leakage,
        )

    def power_from_statistics(self, statistics: AcceleratorStatistics) -> PowerReport:
        """Average power over a simulated run (activity from measured counts)."""
        cycles = max(1, statistics.total_cycles)
        reads_per_cycle = statistics.sram_reads / cycles
        writes_per_cycle = statistics.sram_writes / cycles
        busy_pe_cycles = sum(statistics.per_pe_cycles.values())
        active_pes = min(self.config.num_pes, busy_pe_cycles / cycles) if cycles else 0.0
        return self.power_from_activity(reads_per_cycle, writes_per_cycle, active_pes)

    def nominal_power(self) -> PowerReport:
        """Power at the nominal evaluation activity (paper's 250.8 mW point)."""
        reads = NOMINAL_SRAM_ACCESSES_PER_CYCLE * 0.55
        writes = NOMINAL_SRAM_ACCESSES_PER_CYCLE * 0.45
        return self.power_from_activity(reads, writes, float(self.config.num_pes))

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------
    def energy_joules(self, power: PowerReport, latency_s: float) -> float:
        """Energy of a run: average power times run latency (paper Table V)."""
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        return power.total_w * latency_s

    def energy_from_statistics(self, statistics: AcceleratorStatistics) -> float:
        """Energy of a simulated run using its own measured activity."""
        power = self.power_from_statistics(statistics)
        latency = self.config.cycles_to_seconds(statistics.total_cycles)
        return self.energy_joules(power, latency)
