"""Software OctoMap substrate.

This package is a from-scratch Python reimplementation of the probabilistic
3D occupancy mapping library OctoMap (Hornung et al., Autonomous Robots 2013),
which the OMU paper both accelerates and uses as its CPU baseline.

It provides:

* :mod:`repro.octomap.keys` -- discretised voxel keys and coordinate
  conversion (the ``OcTreeKey`` addressing scheme, tree depth 16).
* :mod:`repro.octomap.logodds` -- log-odds occupancy arithmetic and the
  clamping update policy.
* :mod:`repro.octomap.node` -- octree nodes with the max-of-children parent
  policy and pruning predicate.
* :mod:`repro.octomap.octree` -- the :class:`OccupancyOcTree` map container
  (update, search, prune/expand, iteration, memory accounting).
* :mod:`repro.octomap.raycast` -- 3D DDA ray traversal (``compute_ray_keys``
  and ``cast_ray``).
* :mod:`repro.octomap.raycast_vec` -- the batched numpy counterpart: all rays
  of a scan traversed as arrays, with packed-``uint64`` key de-duplication
  (``compute_scan_update_arrays``); key-for-key equivalent to the scalar DDA.
* :mod:`repro.octomap.pointcloud` -- point clouds, 6-DoF poses, scan nodes
  and scan graphs.
* :mod:`repro.octomap.scan_insertion` -- batch insertion of sensor scans with
  free/occupied de-duplication.
* :mod:`repro.octomap.merge` -- grafting one tree's leaves into another
  (shard stitching for the serving layer).
* :mod:`repro.octomap.serialization` -- a compact binary tree file format.
* :mod:`repro.octomap.counters` -- per-operation instrumentation used to
  reproduce the paper's runtime breakdowns (Fig. 3 and Fig. 10).
"""

from repro.octomap.counters import OperationCounters, OperationKind
from repro.octomap.keys import KeyConverter, OcTreeKey
from repro.octomap.logodds import OccupancyParams, log_odds, probability
from repro.octomap.merge import graft_leaf, merge_tree, merge_trees
from repro.octomap.node import OcTreeNode
from repro.octomap.octree import OccupancyOcTree
from repro.octomap.pointcloud import PointCloud, Pose6D, ScanGraph, ScanNode
from repro.octomap.raycast import cast_ray, compute_ray_keys
from repro.octomap.raycast_vec import (
    ScanUpdateArrays,
    compute_batch_update_arrays,
    compute_scan_update_arrays,
    compute_update_keys_vectorized,
    pack_key_array,
    unpack_key_array,
)
from repro.octomap.scan_insertion import compute_update_keys, insert_point_cloud
from repro.octomap.serialization import read_tree, write_tree

__all__ = [
    "KeyConverter",
    "OcTreeKey",
    "OcTreeNode",
    "OccupancyOcTree",
    "OccupancyParams",
    "OperationCounters",
    "OperationKind",
    "PointCloud",
    "Pose6D",
    "ScanGraph",
    "ScanNode",
    "ScanUpdateArrays",
    "cast_ray",
    "compute_batch_update_arrays",
    "compute_ray_keys",
    "compute_scan_update_arrays",
    "compute_update_keys",
    "compute_update_keys_vectorized",
    "graft_leaf",
    "pack_key_array",
    "unpack_key_array",
    "insert_point_cloud",
    "log_odds",
    "merge_tree",
    "merge_trees",
    "probability",
    "read_tree",
    "write_tree",
]
