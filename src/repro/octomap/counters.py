"""Per-operation instrumentation of the OctoMap pipeline.

The paper's workload analysis (Section III-B, Fig. 3) breaks the map-building
runtime into four stages -- *ray casting*, *update leaf*, *update parents* and
*node prune/expand* -- and its evaluation (Fig. 10) repeats the breakdown on
the accelerator.  This module provides a lightweight counter object that both
the software octree and the OMU simulator feed, so the same breakdown can be
produced for either backend.

Counters record *operation counts*; latency attribution is done later by the
performance models in :mod:`repro.baselines` and :mod:`repro.core.timing`,
which multiply counts by per-operation costs.  This keeps the functional code
free of timing assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Mapping

__all__ = ["OperationKind", "OperationCounters"]


class OperationKind(str, Enum):
    """The four pipeline stages of the paper's runtime breakdown."""

    RAY_CASTING = "ray_casting"
    UPDATE_LEAF = "update_leaf"
    UPDATE_PARENTS = "update_parents"
    PRUNE_EXPAND = "prune_expand"

    @classmethod
    def ordered(cls) -> tuple["OperationKind", ...]:
        """Stages in the order the paper plots them."""
        return (cls.RAY_CASTING, cls.UPDATE_LEAF, cls.UPDATE_PARENTS, cls.PRUNE_EXPAND)


@dataclass
class OperationCounters:
    """Counts of the primitive operations performed while building a map.

    Attributes:
        ray_steps: voxels traversed by the ray-casting kernel (one DDA step
            each).
        leaf_updates: leaf-node log-odds updates (paper eq. (2)).
        parent_updates: parent-node max-of-children updates (paper eq. (3)).
        child_reads: individual child-node reads performed while updating
            parents and evaluating the pruning predicate.  On a CPU these are
            eight serial, irregular memory accesses per parent; on OMU all
            eight arrive in one banked access.
        prune_checks: evaluations of the "all eight children identical"
            predicate.
        prunes: subtrees actually pruned (eight children collapsed into the
            parent).
        expansions: pruned nodes re-expanded into eight children.
        node_allocations: newly allocated tree nodes.
        node_deletions: tree nodes freed (by pruning).
        queries: voxel occupancy queries served.
    """

    ray_steps: int = 0
    leaf_updates: int = 0
    parent_updates: int = 0
    child_reads: int = 0
    prune_checks: int = 0
    prunes: int = 0
    expansions: int = 0
    node_allocations: int = 0
    node_deletions: int = 0
    queries: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def reset(self) -> None:
        """Zero every counter (including the ``extra`` map)."""
        self.ray_steps = 0
        self.leaf_updates = 0
        self.parent_updates = 0
        self.child_reads = 0
        self.prune_checks = 0
        self.prunes = 0
        self.expansions = 0
        self.node_allocations = 0
        self.node_deletions = 0
        self.queries = 0
        self.extra.clear()

    def merge(self, other: "OperationCounters") -> None:
        """Accumulate the counts of ``other`` into this object."""
        self.ray_steps += other.ray_steps
        self.leaf_updates += other.leaf_updates
        self.parent_updates += other.parent_updates
        self.child_reads += other.child_reads
        self.prune_checks += other.prune_checks
        self.prunes += other.prunes
        self.expansions += other.expansions
        self.node_allocations += other.node_allocations
        self.node_deletions += other.node_deletions
        self.queries += other.queries
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + value

    def copy(self) -> "OperationCounters":
        """Return an independent copy of the current counts."""
        duplicate = OperationCounters(
            ray_steps=self.ray_steps,
            leaf_updates=self.leaf_updates,
            parent_updates=self.parent_updates,
            child_reads=self.child_reads,
            prune_checks=self.prune_checks,
            prunes=self.prunes,
            expansions=self.expansions,
            node_allocations=self.node_allocations,
            node_deletions=self.node_deletions,
            queries=self.queries,
        )
        duplicate.extra = dict(self.extra)
        return duplicate

    @property
    def voxel_updates(self) -> int:
        """Total voxel (leaf) updates -- the paper's "Voxel Update" metric."""
        return self.leaf_updates

    def counts_by_stage(self) -> Mapping[OperationKind, int]:
        """Group raw counts into the paper's four breakdown stages.

        The prune/expand stage is dominated by the child reads needed to
        evaluate the pruning predicate, so those reads are attributed to it
        (this matches the paper's observation that the stage's cost comes from
        irregular children-node memory access).
        """
        return {
            OperationKind.RAY_CASTING: self.ray_steps,
            OperationKind.UPDATE_LEAF: self.leaf_updates,
            OperationKind.UPDATE_PARENTS: self.parent_updates,
            OperationKind.PRUNE_EXPAND: self.prune_checks + self.prunes + self.expansions,
        }

    def as_dict(self) -> Dict[str, int]:
        """Flatten all counters into a plain dictionary (for reporting)."""
        result = {
            "ray_steps": self.ray_steps,
            "leaf_updates": self.leaf_updates,
            "parent_updates": self.parent_updates,
            "child_reads": self.child_reads,
            "prune_checks": self.prune_checks,
            "prunes": self.prunes,
            "expansions": self.expansions,
            "node_allocations": self.node_allocations,
            "node_deletions": self.node_deletions,
            "queries": self.queries,
        }
        result.update(self.extra)
        return result
