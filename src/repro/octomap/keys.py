"""Discretised voxel keys and coordinate conversion.

OctoMap addresses voxels with an ``OcTreeKey``: three unsigned 16-bit integers
(one per axis) obtained by discretising the metric coordinate at the finest
tree resolution and offsetting by ``tree_max_val = 2**(depth-1)`` so that the
origin sits in the middle of the addressable volume.  With the default tree
depth of 16 the key space is ``[0, 65535]^3``.

The key bits directly encode the path from the root to the leaf: at tree level
``d`` (0 = root) the child index is built from bit ``depth - 1 - d`` of the
x, y and z key components.  The OMU accelerator exploits exactly this
property -- its address-generation module derives per-level child indices from
the key bits, and its voxel scheduler partitions the tree across PEs using the
*first-level* child index (the top bit of each component).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

__all__ = ["OcTreeKey", "KeyConverter"]


@dataclass(frozen=True, order=True)
class OcTreeKey:
    """A discretised voxel address (three unsigned 16-bit components)."""

    x: int
    y: int
    z: int

    def __post_init__(self) -> None:
        for name, value in (("x", self.x), ("y", self.y), ("z", self.z)):
            if not 0 <= value <= 0xFFFF:
                raise ValueError(f"key component {name}={value} outside [0, 65535]")

    def as_tuple(self) -> Tuple[int, int, int]:
        """Return the key as a plain ``(x, y, z)`` tuple."""
        return (self.x, self.y, self.z)

    def child_index(self, level: int, tree_depth: int) -> int:
        """Child index (0..7) selected at tree ``level`` on the root-to-leaf path.

        Level 0 is the root's choice among its 8 children; level
        ``tree_depth - 1`` selects the leaf.  The index packs one bit per axis:
        bit 0 from x, bit 1 from y, bit 2 from z, matching the OctoMap and
        OMU child numbering.
        """
        if not 0 <= level < tree_depth:
            raise ValueError(f"level {level} outside [0, {tree_depth - 1}]")
        bit = tree_depth - 1 - level
        index = 0
        if (self.x >> bit) & 1:
            index |= 1
        if (self.y >> bit) & 1:
            index |= 2
        if (self.z >> bit) & 1:
            index |= 4
        return index

    def path(self, tree_depth: int, max_level: int | None = None) -> Tuple[int, ...]:
        """Sequence of child indices from the root down to ``max_level``.

        Args:
            tree_depth: total depth of the tree (16 for OctoMap).
            max_level: last level to include (exclusive); defaults to the full
                depth, i.e. the path to the leaf.
        """
        if max_level is None:
            max_level = tree_depth
        return tuple(self.child_index(level, tree_depth) for level in range(max_level))

    def at_depth(self, depth: int, tree_depth: int) -> "OcTreeKey":
        """Return the key of the ancestor voxel at coarser ``depth``.

        ``depth == tree_depth`` returns the key unchanged; ``depth == 0``
        returns the root key (all components masked to the top bit pattern of
        the centre voxel).  Mirrors OctoMap's ``adjustKeyAtDepth``.
        """
        if not 0 <= depth <= tree_depth:
            raise ValueError(f"depth {depth} outside [0, {tree_depth}]")
        if depth == tree_depth:
            return self
        diff = tree_depth - depth
        mask = (~((1 << diff) - 1)) & 0xFFFF
        half = 1 << (diff - 1)
        return OcTreeKey(
            (self.x & mask) + half,
            (self.y & mask) + half,
            (self.z & mask) + half,
        )

    def neighbours(self) -> Iterator["OcTreeKey"]:
        """Yield the 6-connected neighbour keys that stay inside the key space."""
        for dx, dy, dz in (
            (1, 0, 0),
            (-1, 0, 0),
            (0, 1, 0),
            (0, -1, 0),
            (0, 0, 1),
            (0, 0, -1),
        ):
            nx, ny, nz = self.x + dx, self.y + dy, self.z + dz
            if 0 <= nx <= 0xFFFF and 0 <= ny <= 0xFFFF and 0 <= nz <= 0xFFFF:
                yield OcTreeKey(nx, ny, nz)


class KeyConverter:
    """Converts between metric coordinates and :class:`OcTreeKey` addresses.

    Args:
        resolution: edge length of a leaf voxel in metres (the paper uses
            0.2 m for its evaluation and cites 0.1 m as a typical fine
            resolution).
        tree_depth: number of tree levels below the root (OctoMap fixes this
            to 16, giving a 65536^3 voxel address space).
    """

    def __init__(self, resolution: float, tree_depth: int = 16) -> None:
        if resolution <= 0.0:
            raise ValueError(f"resolution must be positive, got {resolution!r}")
        if not 1 <= tree_depth <= 16:
            raise ValueError(f"tree_depth must be in [1, 16], got {tree_depth!r}")
        self._resolution = float(resolution)
        self._tree_depth = int(tree_depth)
        self._tree_max_val = 1 << (self._tree_depth - 1)

    @property
    def resolution(self) -> float:
        """Leaf voxel edge length in metres."""
        return self._resolution

    @property
    def tree_depth(self) -> int:
        """Number of tree levels below the root."""
        return self._tree_depth

    @property
    def tree_max_val(self) -> int:
        """Key-space offset placing the metric origin at the key-space centre."""
        return self._tree_max_val

    @property
    def max_coordinate(self) -> float:
        """Largest metric coordinate magnitude representable by the key space."""
        return self._tree_max_val * self._resolution

    def coord_to_key_component(self, coordinate: float) -> int:
        """Discretise one metric coordinate into one key component.

        Raises:
            ValueError: if the coordinate falls outside the addressable volume.
        """
        component = int(math.floor(coordinate / self._resolution)) + self._tree_max_val
        limit = 2 * self._tree_max_val
        if not 0 <= component < limit:
            raise ValueError(
                f"coordinate {coordinate!r} outside the mappable volume "
                f"(+/- {self.max_coordinate} m at resolution {self._resolution} m)"
            )
        return component

    def key_component_to_coord(self, component: int, depth: int | None = None) -> float:
        """Convert one key component back to the voxel-centre coordinate.

        Args:
            component: key component (already adjusted to ``depth`` if coarser
                than the full depth).
            depth: tree depth of the voxel; defaults to the leaf depth.
        """
        if depth is None or depth == self._tree_depth:
            return (component - self._tree_max_val + 0.5) * self._resolution
        if not 0 <= depth <= self._tree_depth:
            raise ValueError(f"depth {depth} outside [0, {self._tree_depth}]")
        node_size = self.node_size(depth)
        cells = 1 << (self._tree_depth - depth)
        grid_index = math.floor(component / cells)
        return (grid_index - self._tree_max_val / cells) * node_size + node_size / 2.0

    def coord_to_key(self, x: float, y: float, z: float) -> OcTreeKey:
        """Discretise a metric 3D point into its leaf voxel key."""
        return OcTreeKey(
            self.coord_to_key_component(x),
            self.coord_to_key_component(y),
            self.coord_to_key_component(z),
        )

    def coords_to_key_array(self, coords: np.ndarray) -> np.ndarray:
        """Discretise an ``(N, 3)`` coordinate array into ``(N, 3)`` key components.

        The array counterpart of :meth:`coord_to_key`: ``np.floor`` matches
        ``math.floor`` for every finite float64, so each row equals the scalar
        conversion of the same point exactly.

        Raises:
            ValueError: if any coordinate falls outside the addressable
                volume (same condition as :meth:`coord_to_key_component`).
        """
        coords = np.asarray(coords, dtype=np.float64)
        components = np.floor(coords / self._resolution).astype(np.int64) + self._tree_max_val
        limit = 2 * self._tree_max_val
        if components.size and ((components < 0) | (components >= limit)).any():
            bad = coords[((components < 0) | (components >= limit)).any(axis=1)][0]
            raise ValueError(
                f"coordinate {tuple(bad)!r} outside the mappable volume "
                f"(+/- {self.max_coordinate} m at resolution {self._resolution} m)"
            )
        return components

    def key_array_to_coords(self, keys: np.ndarray) -> np.ndarray:
        """Convert ``(N, 3)`` leaf key components back to voxel-centre coords."""
        keys = np.asarray(keys)
        return (keys.astype(np.float64) - self._tree_max_val + 0.5) * self._resolution

    def key_to_coord(self, key: OcTreeKey, depth: int | None = None) -> Tuple[float, float, float]:
        """Return the metric centre of the voxel addressed by ``key``."""
        return (
            self.key_component_to_coord(key.x, depth),
            self.key_component_to_coord(key.y, depth),
            self.key_component_to_coord(key.z, depth),
        )

    def node_size(self, depth: int) -> float:
        """Metric edge length of a node at tree ``depth`` (0 = root)."""
        if not 0 <= depth <= self._tree_depth:
            raise ValueError(f"depth {depth} outside [0, {self._tree_depth}]")
        return self._resolution * (1 << (self._tree_depth - depth))

    def is_coordinate_in_range(self, x: float, y: float, z: float) -> bool:
        """True if the point lies inside the addressable volume."""
        limit = self.max_coordinate
        return all(-limit <= value < limit for value in (x, y, z))
