"""Log-odds occupancy arithmetic and update policy.

OctoMap represents the occupancy probability ``P(n)`` of a voxel ``n`` by its
log-odds value ``L(n) = log(P / (1 - P))`` (paper eq. (1)).  The log-odds form
turns the Bayesian update of eq. (2) into a simple addition, which is exactly
the operation the OMU probability-update unit implements in fixed point.

The clamping update policy (Yguel et al.) bounds the log-odds value to
``[clamp_min, clamp_max]`` so that the map stays adaptive to changes and so
that stable nodes become prunable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "log_odds",
    "probability",
    "OccupancyParams",
    "DEFAULT_PARAMS",
]


def log_odds(probability_value: float) -> float:
    """Convert a probability in the open interval (0, 1) to log-odds.

    Mirrors eq. (1) of the paper: ``L = log(p / (1 - p))``.

    Raises:
        ValueError: if ``probability_value`` is outside (0, 1).
    """
    if not 0.0 < probability_value < 1.0:
        raise ValueError(
            f"probability must be in (0, 1), got {probability_value!r}"
        )
    return math.log(probability_value / (1.0 - probability_value))


def probability(log_odds_value: float) -> float:
    """Convert a log-odds value back to a probability in (0, 1)."""
    return 1.0 / (1.0 + math.exp(-log_odds_value))


@dataclass(frozen=True)
class OccupancyParams:
    """Sensor and clamping parameters of the occupancy update policy.

    The defaults are the OctoMap library defaults, which the paper's baseline
    uses unmodified:

    * ``prob_hit = 0.7`` -- probability assigned to an endpoint measurement.
    * ``prob_miss = 0.4`` -- probability assigned to a traversed (free) voxel.
    * ``clamp_min / clamp_max`` -- clamping thresholds of the log-odds value
      (probabilities 0.1192 and 0.971).
    * ``occupancy_threshold`` -- probability above which a voxel is classified
      as occupied during queries.
    """

    prob_hit: float = 0.7
    prob_miss: float = 0.4
    clamp_min_probability: float = 0.1192
    clamp_max_probability: float = 0.971
    occupancy_threshold: float = 0.5

    # Derived log-odds values, computed in __post_init__ so callers can use
    # them directly without repeating the conversion.
    log_odds_hit: float = field(init=False)
    log_odds_miss: float = field(init=False)
    clamp_min: float = field(init=False)
    clamp_max: float = field(init=False)
    occupancy_threshold_log_odds: float = field(init=False)

    def __post_init__(self) -> None:
        self._validate()
        object.__setattr__(self, "log_odds_hit", log_odds(self.prob_hit))
        object.__setattr__(self, "log_odds_miss", log_odds(self.prob_miss))
        object.__setattr__(self, "clamp_min", log_odds(self.clamp_min_probability))
        object.__setattr__(self, "clamp_max", log_odds(self.clamp_max_probability))
        object.__setattr__(
            self,
            "occupancy_threshold_log_odds",
            log_odds(self.occupancy_threshold),
        )

    def _validate(self) -> None:
        for name in (
            "prob_hit",
            "prob_miss",
            "clamp_min_probability",
            "clamp_max_probability",
            "occupancy_threshold",
        ):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ValueError(f"{name} must be in (0, 1), got {value!r}")
        if self.prob_hit <= 0.5:
            raise ValueError("prob_hit must be > 0.5 (hits increase occupancy)")
        if self.prob_miss >= 0.5:
            raise ValueError("prob_miss must be < 0.5 (misses decrease occupancy)")
        if self.clamp_min_probability >= self.clamp_max_probability:
            raise ValueError("clamp_min_probability must be < clamp_max_probability")

    def clamp(self, log_odds_value: float) -> float:
        """Clamp a log-odds value to ``[clamp_min, clamp_max]``."""
        if log_odds_value < self.clamp_min:
            return self.clamp_min
        if log_odds_value > self.clamp_max:
            return self.clamp_max
        return log_odds_value

    def update(self, current_log_odds: float, hit: bool) -> float:
        """Apply one clamped Bayesian update (paper eq. (2)).

        Args:
            current_log_odds: the prior log-odds value of the voxel.
            hit: ``True`` for an endpoint (occupied) measurement, ``False``
                for a traversed (free) voxel.
        """
        delta = self.log_odds_hit if hit else self.log_odds_miss
        return self.clamp(current_log_odds + delta)

    def is_occupied(self, log_odds_value: float) -> bool:
        """Classify a log-odds value as occupied (above the threshold)."""
        return log_odds_value > self.occupancy_threshold_log_odds

    def is_at_clamping_limit(self, log_odds_value: float) -> bool:
        """Return True if the value sits at either clamping bound.

        Nodes at a clamping bound are *stable*: further updates in the same
        direction no longer change them, which is what makes whole subtrees
        identical and therefore prunable.
        """
        return log_odds_value <= self.clamp_min or log_odds_value >= self.clamp_max


DEFAULT_PARAMS = OccupancyParams()
"""Module-level default parameter set (OctoMap library defaults)."""
