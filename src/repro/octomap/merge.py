"""Merging occupancy octrees: shard stitching for the serving layer.

The serving layer partitions a map across several shard workers, each of
which exports its own :class:`~repro.octomap.octree.OccupancyOcTree` covering
a disjoint region of the key space.  :func:`merge_tree` grafts one tree's
leaves (including pruned homogeneous regions) into another so the session can
hand a single stitched map back to the client.

Merging is value-preserving, not probabilistic: a source leaf *overwrites*
the target voxel's value.  That is the right semantics for shard stitching
(the shards are spatially disjoint, so nothing is ever overwritten in
practice) and for replaying snapshots.  Combining two maps of the *same*
region probabilistically would instead add log-odds; that is a different
operation and deliberately not offered here.
"""

from __future__ import annotations

from repro.octomap.keys import OcTreeKey
from repro.octomap.node import OcTreeNode
from repro.octomap.octree import OccupancyOcTree

__all__ = ["graft_leaf", "merge_tree", "merge_trees"]


def _count_descendants(node: OcTreeNode) -> int:
    """Number of nodes strictly below ``node``."""
    count = 0
    for _, child in node.children():
        count += 1 + _count_descendants(child)
    return count


def graft_leaf(tree: OccupancyOcTree, key: OcTreeKey, depth: int, log_odds: float) -> None:
    """Write one (possibly coarse) leaf into a tree without propagating yet.

    Args:
        tree: target tree.
        key: leaf key; for ``depth < tree_depth`` the key of any voxel inside
            the covered region works (the centre key, as reported by
            :meth:`~repro.octomap.octree.OccupancyOcTree.iter_leafs`, is the
            conventional choice).
        depth: depth of the leaf (``tree_depth`` for a finest-resolution
            voxel, shallower for a pruned homogeneous region).
        log_odds: clamped occupancy value to store.

    The caller must run ``update_inner_occupancy()`` and ``prune()`` once the
    whole batch of grafts is done; :func:`merge_tree` does exactly that.
    """
    if not 0 <= depth <= tree.tree_depth:
        raise ValueError(f"depth {depth} outside [0, {tree.tree_depth}]")
    if tree.root is None:
        tree._root = OcTreeNode(0.0)
        tree._num_nodes = 1
        tree.counters.node_allocations += 1
    node = tree._root
    assert node is not None
    for child_index in key.path(tree.tree_depth, max_level=depth):
        if not node.child_exists(child_index):
            node.create_child(child_index, 0.0)
            tree._num_nodes += 1
            tree.counters.node_allocations += 1
        node = node.child(child_index)
    if node.has_children():
        # The grafted leaf replaces whatever finer structure was there.
        deleted = _count_descendants(node)
        node.delete_children()
        tree._num_nodes -= deleted
        tree.counters.node_deletions += deleted
    node.log_odds = tree.params.clamp(log_odds)
    tree.counters.leaf_updates += 1


def merge_tree(
    target: OccupancyOcTree, source: OccupancyOcTree, propagate: bool = True
) -> int:
    """Graft every leaf of ``source`` into ``target``; returns leaves merged.

    Both trees must share resolution and depth.  Inner occupancy is
    recomputed and the result pruned once at the end, so merging N shard
    exports costs one propagation pass each rather than one per leaf.
    :func:`merge_trees` defers even that with ``propagate=False`` and
    finishes the whole stitch with a single pass.
    """
    if abs(target.resolution - source.resolution) > 1e-12:
        raise ValueError(
            f"resolution mismatch: target {target.resolution} vs source {source.resolution}"
        )
    if target.tree_depth != source.tree_depth:
        raise ValueError(
            f"tree depth mismatch: target {target.tree_depth} vs source {source.tree_depth}"
        )
    merged = 0
    for leaf in source.iter_leafs():
        graft_leaf(target, leaf.key, leaf.depth, leaf.log_odds)
        merged += 1
    if propagate:
        target.update_inner_occupancy()
        target.prune()
    return merged


def merge_trees(trees, resolution: float | None = None, tree_depth: int | None = None,
                params=None) -> OccupancyOcTree:
    """Stitch several disjoint trees into one fresh tree.

    Args:
        trees: iterable of source trees (shard exports); must be non-empty
            unless ``resolution`` is given explicitly.
        resolution / tree_depth / params: parameters of the output tree;
            default to those of the first source.
    """
    sources = list(trees)
    if not sources and resolution is None:
        raise ValueError("merge_trees needs at least one source tree or an explicit resolution")
    first = sources[0] if sources else None
    resolution = resolution if resolution is not None else first.resolution
    tree_depth = tree_depth if tree_depth is not None else (
        first.tree_depth if first is not None else 16
    )
    if params is None and first is not None:
        params = first.params
    kwargs = {"params": params} if params is not None else {}
    stitched = OccupancyOcTree(resolution, tree_depth=tree_depth, **kwargs)
    # Shard exports are disjoint, so propagation can wait until every source
    # is grafted: one inner-occupancy pass + one prune for the whole stitch.
    for source in sources:
        merge_tree(stitched, source, propagate=False)
    stitched.update_inner_occupancy()
    stitched.prune()
    return stitched
