"""Octree node with the max-of-children occupancy policy.

A node stores a clamped log-odds occupancy value and, when it is an inner
node, references to up to eight children.  The parent occupancy policy is the
paper's eq. (3): a parent takes the *maximum* log-odds of its children, which
is the conservative choice for collision avoidance (a coarse query reports
"occupied" if any descendant is occupied).

A node is *prunable* when all eight children exist, none of them has children
of its own, and they all carry the same log-odds value -- in that case the
eight leaves can be deleted and the parent becomes a leaf with that shared
value (paper Fig. 2(b)), saving memory without changing any query result.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

__all__ = ["OcTreeNode", "PRUNE_EPSILON"]

PRUNE_EPSILON = 1e-9
"""Tolerance used when comparing children log-odds values for pruning.

The C++ OctoMap compares floats exactly; the clamping policy makes stable
values bit-identical so exact comparison works there.  The Python model keeps
a tiny epsilon to be robust to float round-trips through serialization while
remaining far below the smallest meaningful log-odds increment (~0.4).
"""


class OcTreeNode:
    """One node of the occupancy octree.

    Attributes:
        log_odds: clamped log-odds occupancy value of this node.  For inner
            nodes this is the aggregate (max of children) maintained by the
            tree's parent-update pass.
    """

    __slots__ = ("log_odds", "_children")

    def __init__(self, log_odds: float = 0.0) -> None:
        self.log_odds = float(log_odds)
        self._children: Optional[List[Optional["OcTreeNode"]]] = None

    # ------------------------------------------------------------------
    # Child management
    # ------------------------------------------------------------------
    def has_children(self) -> bool:
        """True if at least one child node exists."""
        if self._children is None:
            return False
        return any(child is not None for child in self._children)

    def child(self, index: int) -> Optional["OcTreeNode"]:
        """Return child ``index`` (0..7) or ``None`` if it does not exist."""
        self._check_index(index)
        if self._children is None:
            return None
        return self._children[index]

    def child_exists(self, index: int) -> bool:
        """True if child ``index`` has been created."""
        return self.child(index) is not None

    def create_child(self, index: int, log_odds: float = 0.0) -> "OcTreeNode":
        """Create (or return the existing) child at ``index``.

        New children inherit ``log_odds`` -- when expanding a pruned node the
        caller passes the parent's value so the expansion is lossless.
        """
        self._check_index(index)
        if self._children is None:
            self._children = [None] * 8
        existing = self._children[index]
        if existing is not None:
            return existing
        node = OcTreeNode(log_odds)
        self._children[index] = node
        return node

    def delete_child(self, index: int) -> None:
        """Remove child ``index`` (no-op if it does not exist)."""
        self._check_index(index)
        if self._children is None:
            return
        self._children[index] = None
        if all(child is None for child in self._children):
            self._children = None

    def delete_children(self) -> int:
        """Remove all children, returning how many nodes were deleted."""
        if self._children is None:
            return 0
        count = sum(1 for child in self._children if child is not None)
        self._children = None
        return count

    def children(self) -> Iterator[tuple[int, "OcTreeNode"]]:
        """Iterate over existing children as ``(index, node)`` pairs."""
        if self._children is None:
            return
        for index, child in enumerate(self._children):
            if child is not None:
                yield index, child

    def num_children(self) -> int:
        """Number of existing children (0..8)."""
        if self._children is None:
            return 0
        return sum(1 for child in self._children if child is not None)

    # ------------------------------------------------------------------
    # Occupancy aggregation (paper eq. (3)) and pruning predicate
    # ------------------------------------------------------------------
    def max_child_log_odds(self) -> float:
        """Maximum log-odds among existing children (paper eq. (3)).

        Raises:
            ValueError: if the node has no children.
        """
        values = [child.log_odds for _, child in self.children()]
        if not values:
            raise ValueError("max_child_log_odds called on a node without children")
        return max(values)

    def update_occupancy_from_children(self) -> None:
        """Set this node's log-odds to the maximum of its children."""
        self.log_odds = self.max_child_log_odds()

    def is_prunable(self) -> bool:
        """True if the eight children are identical leaves (paper Fig. 2(b))."""
        if self._children is None:
            return False
        first: Optional[OcTreeNode] = None
        for index in range(8):
            child = self._children[index]
            if child is None or child.has_children():
                return False
            if first is None:
                first = child
            elif abs(child.log_odds - first.log_odds) > PRUNE_EPSILON:
                return False
        return first is not None

    def prune(self) -> int:
        """Collapse identical children into this node.

        Returns the number of deleted child nodes (8 on success, 0 if the
        node was not prunable).
        """
        if not self.is_prunable():
            return 0
        self.log_odds = self._children[0].log_odds  # type: ignore[index]
        return self.delete_children()

    def expand(self) -> int:
        """Re-create eight children carrying this node's value.

        This is the inverse of :meth:`prune`, used when an update must touch a
        finer voxel inside a previously pruned (homogeneous) region.  Returns
        the number of created nodes.

        Raises:
            ValueError: if the node already has children.
        """
        if self.has_children():
            raise ValueError("expand called on a node that already has children")
        for index in range(8):
            self.create_child(index, self.log_odds)
        return 8

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _check_index(index: int) -> None:
        if not 0 <= index <= 7:
            raise IndexError(f"child index {index} outside [0, 7]")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "inner" if self.has_children() else "leaf"
        return f"OcTreeNode(log_odds={self.log_odds:.4f}, {kind})"
