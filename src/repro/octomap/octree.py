"""The probabilistic occupancy octree (software OctoMap).

:class:`OccupancyOcTree` is the Python equivalent of OctoMap's
``octomap::OcTree``: a depth-16 octree whose leaves carry clamped log-odds
occupancy values.  It implements the three basic operations the paper
describes in Section III-A:

1. **update leaf** -- add the measurement log-odds to the leaf found by the
   voxel key (eq. (2)),
2. **update parents** -- recursively propagate the max-of-children occupancy
   towards the root (eq. (3)),
3. **node prune / expand** -- collapse eight identical children into their
   parent, or re-expand a pruned node when a finer update arrives
   (Fig. 2(b)).

Every primitive operation is counted through an :class:`OperationCounters`
instance so that the paper's runtime breakdowns (Fig. 3 and Fig. 10) can be
reproduced by attaching per-operation costs afterwards.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.octomap.counters import OperationCounters
from repro.octomap.keys import KeyConverter, OcTreeKey
from repro.octomap.logodds import DEFAULT_PARAMS, OccupancyParams
from repro.octomap.node import OcTreeNode

__all__ = ["OccupancyOcTree", "LeafVoxel"]


class LeafVoxel:
    """A leaf reported by tree iteration: key, depth, size and value."""

    __slots__ = ("key", "depth", "log_odds", "size", "center")

    def __init__(
        self,
        key: OcTreeKey,
        depth: int,
        log_odds: float,
        size: float,
        center: Tuple[float, float, float],
    ) -> None:
        self.key = key
        self.depth = depth
        self.log_odds = log_odds
        self.size = size
        self.center = center

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LeafVoxel(center={self.center}, size={self.size:.3f}, "
            f"log_odds={self.log_odds:.3f}, depth={self.depth})"
        )


class OccupancyOcTree:
    """A probabilistic 3D occupancy map stored as an octree.

    Args:
        resolution: leaf voxel edge length in metres.
        tree_depth: number of levels below the root (16 in OctoMap and OMU).
        params: occupancy update / clamping parameters.
        counters: operation counter sink; a fresh one is created if omitted.
    """

    def __init__(
        self,
        resolution: float,
        tree_depth: int = 16,
        params: OccupancyParams = DEFAULT_PARAMS,
        counters: Optional[OperationCounters] = None,
    ) -> None:
        self._converter = KeyConverter(resolution, tree_depth)
        self._params = params
        self._counters = counters if counters is not None else OperationCounters()
        self._root: Optional[OcTreeNode] = None
        self._num_nodes = 0

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def resolution(self) -> float:
        """Leaf voxel edge length in metres."""
        return self._converter.resolution

    @property
    def tree_depth(self) -> int:
        """Number of tree levels below the root."""
        return self._converter.tree_depth

    @property
    def params(self) -> OccupancyParams:
        """Occupancy update parameters used by this tree."""
        return self._params

    @property
    def counters(self) -> OperationCounters:
        """Operation counters accumulated by this tree."""
        return self._counters

    @property
    def key_converter(self) -> KeyConverter:
        """The coordinate <-> key converter of this tree."""
        return self._converter

    @property
    def root(self) -> Optional[OcTreeNode]:
        """Root node, or ``None`` for an empty tree."""
        return self._root

    def size(self) -> int:
        """Total number of nodes currently allocated in the tree."""
        return self._num_nodes

    def __len__(self) -> int:
        return self._num_nodes

    def is_empty(self) -> bool:
        """True if no measurement has been integrated yet."""
        return self._root is None

    def clear(self) -> None:
        """Remove every node, returning the tree to its empty state."""
        self._root = None
        self._num_nodes = 0

    # ------------------------------------------------------------------
    # Key helpers (thin delegation, kept on the tree for API convenience)
    # ------------------------------------------------------------------
    def coord_to_key(self, x: float, y: float, z: float) -> OcTreeKey:
        """Discretise a metric point into a leaf key."""
        return self._converter.coord_to_key(x, y, z)

    def key_to_coord(self, key: OcTreeKey, depth: Optional[int] = None) -> Tuple[float, float, float]:
        """Metric centre of the voxel addressed by ``key``."""
        return self._converter.key_to_coord(key, depth)

    def node_size(self, depth: int) -> float:
        """Edge length of a node at the given depth."""
        return self._converter.node_size(depth)

    # ------------------------------------------------------------------
    # Map update
    # ------------------------------------------------------------------
    def update_node(
        self,
        key_or_x,
        y: Optional[float] = None,
        z: Optional[float] = None,
        *,
        occupied: bool,
        lazy_eval: bool = False,
    ) -> OcTreeNode:
        """Integrate one measurement for one voxel.

        Accepts either an :class:`OcTreeKey` or metric ``x, y, z`` coordinates.
        With ``lazy_eval=True`` the parent update and pruning are skipped;
        call :meth:`update_inner_occupancy` followed by :meth:`prune` once a
        whole batch has been inserted (this mirrors OctoMap's lazy insertion
        mode and is what the scan-insertion path uses).

        Returns the leaf node that received the update.
        """
        key = self._as_key(key_or_x, y, z)
        root_created = False
        if self._root is None:
            self._root = OcTreeNode(0.0)
            self._num_nodes = 1
            self._counters.node_allocations += 1
            root_created = True
        return self._update_node_recurs(self._root, root_created, key, 0, occupied, lazy_eval)

    def _update_node_recurs(
        self,
        node: OcTreeNode,
        node_just_created: bool,
        key: OcTreeKey,
        depth: int,
        occupied: bool,
        lazy_eval: bool,
    ) -> OcTreeNode:
        if depth == self.tree_depth:
            # Leaf: apply the clamped log-odds update (paper eq. (2)).
            node.log_odds = self._params.update(node.log_odds, occupied)
            self._counters.leaf_updates += 1
            return node

        child_index = key.child_index(depth, self.tree_depth)
        created_child = False
        if not node.child_exists(child_index):
            if not node.has_children() and not node_just_created:
                # The node is a pruned leaf covering a homogeneous region.
                # A finer update forces re-expansion (paper Fig. 2 inverse).
                node.expand()
                self._num_nodes += 8
                self._counters.expansions += 1
                self._counters.node_allocations += 8
            else:
                node.create_child(child_index, 0.0)
                self._num_nodes += 1
                self._counters.node_allocations += 1
                created_child = True

        child = node.child(child_index)
        assert child is not None
        leaf = self._update_node_recurs(child, created_child, key, depth + 1, occupied, lazy_eval)

        if lazy_eval:
            return leaf

        # Parent update (paper eq. (3)) and pruning check.  Reading the eight
        # children is the irregular-memory-access hot spot the paper measures.
        self._counters.child_reads += 8
        self._counters.prune_checks += 1
        if node.is_prunable():
            deleted = node.prune()
            self._num_nodes -= deleted
            self._counters.prunes += 1
            self._counters.node_deletions += deleted
        else:
            node.update_occupancy_from_children()
            self._counters.parent_updates += 1
        return leaf

    def set_node_log_odds(
        self, key: OcTreeKey, log_odds: float, propagate: bool = True
    ) -> OcTreeNode:
        """Force a leaf to an exact (clamped) log-odds value.

        Used by the verification harness to replay accelerator state into a
        software tree; counted as a leaf update.

        Args:
            key: leaf voxel to write.
            log_odds: value to store (clamped to the tree's bounds).
            propagate: when True (the default) inner occupancy is recomputed
                immediately.  Batch writers (accelerator export, shard
                stitching) pass False and call
                :meth:`update_inner_occupancy` once at the end -- the
                per-call propagation is a whole-tree pass, which turns an
                N-leaf replay quadratic.
        """
        just_created = False
        if self._root is None:
            self._root = OcTreeNode(0.0)
            self._num_nodes = 1
            self._counters.node_allocations += 1
            just_created = True
        node: OcTreeNode = self._root
        path = key.path(self.tree_depth)
        for depth, child_index in enumerate(path):
            if not node.child_exists(child_index):
                if not node.has_children() and not just_created:
                    node.expand()
                    self._num_nodes += 8
                    self._counters.expansions += 1
                    self._counters.node_allocations += 8
                    just_created = False
                else:
                    node.create_child(child_index, 0.0)
                    self._num_nodes += 1
                    self._counters.node_allocations += 1
                    just_created = True
            else:
                just_created = False
            node = node.child(child_index)  # type: ignore[assignment]
        node.log_odds = self._params.clamp(log_odds)
        self._counters.leaf_updates += 1
        if propagate:
            self.update_inner_occupancy()
        return node

    def update_inner_occupancy(self) -> None:
        """Recompute every inner node's occupancy from its children.

        Required after a batch of ``lazy_eval`` updates, before pruning.
        """
        if self._root is None or not self._root.has_children():
            return
        self._update_inner_occupancy_recurs(self._root)

    def _update_inner_occupancy_recurs(self, node: OcTreeNode) -> None:
        if not node.has_children():
            return
        for _, child in node.children():
            self._update_inner_occupancy_recurs(child)
        node.update_occupancy_from_children()
        self._counters.parent_updates += 1
        self._counters.child_reads += 8

    def prune(self) -> int:
        """Prune the whole tree bottom-up; returns the number of pruned subtrees.

        The paper reports that pruning reduces OctoMap memory by up to 44 %
        with no accuracy loss; :meth:`memory_usage` before/after shows the
        same effect on this implementation.
        """
        if self._root is None:
            return 0
        return self._prune_recurs(self._root)

    def _prune_recurs(self, node: OcTreeNode) -> int:
        if not node.has_children():
            return 0
        pruned = 0
        for _, child in node.children():
            pruned += self._prune_recurs(child)
        self._counters.prune_checks += 1
        self._counters.child_reads += 8
        if node.is_prunable():
            deleted = node.prune()
            self._num_nodes -= deleted
            self._counters.prunes += 1
            self._counters.node_deletions += deleted
            pruned += 1
        return pruned

    def expand(self) -> int:
        """Fully expand every pruned node down to leaf depth.

        Mainly used to measure the memory saving of pruning (the inverse of
        :meth:`prune`); returns the number of nodes created.
        """
        if self._root is None:
            return 0
        return self._expand_recurs(self._root, 0)

    def _expand_recurs(self, node: OcTreeNode, depth: int) -> int:
        if depth == self.tree_depth:
            return 0
        created = 0
        if not node.has_children():
            node.expand()
            created += 8
            self._num_nodes += 8
            self._counters.expansions += 1
            self._counters.node_allocations += 8
        for _, child in node.children():
            created += self._expand_recurs(child, depth + 1)
        return created

    # ------------------------------------------------------------------
    # Search and queries
    # ------------------------------------------------------------------
    def search(
        self,
        key_or_x,
        y: Optional[float] = None,
        z: Optional[float] = None,
        depth: int = 0,
    ) -> Optional[OcTreeNode]:
        """Find the node covering a voxel.

        Args:
            key_or_x: an :class:`OcTreeKey` or the x coordinate.
            y, z: remaining coordinates when metric values are given.
            depth: maximum depth to descend to (0 means full depth); the
                returned node may be shallower when the region is pruned.

        Returns the node (leaf or pruned ancestor) or ``None`` if the voxel
        lies in unknown space.
        """
        key = self._as_key(key_or_x, y, z)
        self._counters.queries += 1
        if self._root is None:
            return None
        max_depth = self.tree_depth if depth == 0 else min(depth, self.tree_depth)
        node = self._root
        for level in range(max_depth):
            child_index = key.child_index(level, self.tree_depth)
            if node.child_exists(child_index):
                node = node.child(child_index)  # type: ignore[assignment]
            elif node.has_children():
                # Some sibling exists but this octant was never observed.
                return None
            else:
                # Pruned homogeneous region: the ancestor answers the query.
                return node
        return node

    def is_node_occupied(self, node: OcTreeNode) -> bool:
        """Classify a node as occupied using the tree's threshold."""
        return self._params.is_occupied(node.log_odds)

    def occupancy_probability(self, node: OcTreeNode) -> float:
        """Occupancy probability of a node (inverse of the log-odds)."""
        from repro.octomap.logodds import probability

        return probability(node.log_odds)

    def classify(self, key_or_x, y: Optional[float] = None, z: Optional[float] = None) -> str:
        """Return ``"occupied"``, ``"free"`` or ``"unknown"`` for a voxel."""
        node = self.search(key_or_x, y, z)
        if node is None:
            return "unknown"
        return "occupied" if self.is_node_occupied(node) else "free"

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def iter_leafs(self, max_depth: int = 0) -> Iterator[LeafVoxel]:
        """Yield every leaf (including pruned homogeneous regions).

        Args:
            max_depth: stop descending at this depth (0 = full depth); nodes
                at the cut-off are reported as leaves of that size, which is
                how OctoMap serves multi-resolution queries.
        """
        if self._root is None:
            return
        limit = self.tree_depth if max_depth == 0 else min(max_depth, self.tree_depth)
        stack: List[Tuple[OcTreeNode, int, int, int, int]] = [(self._root, 0, 0, 0, 0)]
        while stack:
            node, depth, kx, ky, kz = stack.pop()
            if depth == limit or not node.has_children():
                key = self._leaf_key(kx, ky, kz, depth)
                yield LeafVoxel(
                    key=key,
                    depth=depth,
                    log_odds=node.log_odds,
                    size=self.node_size(depth),
                    center=self.key_to_coord(key, depth),
                )
                continue
            bit = self.tree_depth - 1 - depth
            for index, child in node.children():
                cx = kx | (((index >> 0) & 1) << bit)
                cy = ky | (((index >> 1) & 1) << bit)
                cz = kz | (((index >> 2) & 1) << bit)
                stack.append((child, depth + 1, cx, cy, cz))

    def _leaf_key(self, kx: int, ky: int, kz: int, depth: int) -> OcTreeKey:
        if depth == self.tree_depth:
            return OcTreeKey(kx, ky, kz)
        half = 1 << (self.tree_depth - depth - 1)
        return OcTreeKey(kx + half, ky + half, kz + half)

    def iter_occupied(self, max_depth: int = 0) -> Iterator[LeafVoxel]:
        """Yield only the leaves classified as occupied."""
        for leaf in self.iter_leafs(max_depth):
            if self._params.is_occupied(leaf.log_odds):
                yield leaf

    def iter_free(self, max_depth: int = 0) -> Iterator[LeafVoxel]:
        """Yield only the leaves classified as free."""
        for leaf in self.iter_leafs(max_depth):
            if not self._params.is_occupied(leaf.log_odds):
                yield leaf

    def num_leaf_nodes(self) -> int:
        """Number of leaves (pruned regions count once)."""
        return sum(1 for _ in self.iter_leafs())

    # ------------------------------------------------------------------
    # Memory accounting and metric extent
    # ------------------------------------------------------------------
    def memory_usage(self, per_node_bytes: int = 16) -> int:
        """Approximate heap usage of the tree in bytes.

        ``per_node_bytes`` defaults to the C++ OctoMap node footprint (a float
        value plus a children pointer on a 64-bit machine); the Python object
        overhead is irrelevant for reproducing the paper's memory argument,
        which is about node counts.
        """
        return self._num_nodes * per_node_bytes

    def memory_usage_unpruned(self, per_node_bytes: int = 16) -> int:
        """Heap usage the tree would need if every leaf were fully expanded.

        Comparing against :meth:`memory_usage` reproduces the "pruning saves
        up to 44 % memory" claim from the paper's Section III-A.
        """
        expanded_leaf_equivalents = 0
        for leaf in self.iter_leafs():
            depth_gap = self.tree_depth - leaf.depth
            # A pruned leaf at depth d stands for 8**gap fine leaves plus the
            # inner nodes linking them.
            leaves = 8 ** depth_gap
            inner = sum(8 ** level for level in range(1, depth_gap))
            expanded_leaf_equivalents += leaves + inner
        inner_nodes = self._num_nodes - sum(1 for _ in self.iter_leafs())
        return (inner_nodes + expanded_leaf_equivalents) * per_node_bytes

    def metric_bounds(self) -> Tuple[Tuple[float, float, float], Tuple[float, float, float]]:
        """Axis-aligned metric bounds of all known (observed) leaves.

        Raises:
            ValueError: if the tree is empty.
        """
        minimum = [float("inf")] * 3
        maximum = [float("-inf")] * 3
        found = False
        for leaf in self.iter_leafs():
            found = True
            half = leaf.size / 2.0
            for axis in range(3):
                minimum[axis] = min(minimum[axis], leaf.center[axis] - half)
                maximum[axis] = max(maximum[axis], leaf.center[axis] + half)
        if not found:
            raise ValueError("metric_bounds called on an empty tree")
        return (tuple(minimum), tuple(maximum))  # type: ignore[return-value]

    def occupancy_grid(self) -> Dict[Tuple[int, int, int], float]:
        """Flatten the map into a ``{key tuple: log-odds}`` dictionary.

        Pruned regions are expanded virtually so the dictionary always holds
        finest-resolution voxels; used by the verification harness to compare
        maps produced by different backends.
        """
        grid: Dict[Tuple[int, int, int], float] = {}
        for leaf in self.iter_leafs():
            if leaf.depth == self.tree_depth:
                grid[leaf.key.as_tuple()] = leaf.log_odds
                continue
            # Virtually expand the pruned region.
            span = 1 << (self.tree_depth - leaf.depth)
            base_x = leaf.key.x - span // 2
            base_y = leaf.key.y - span // 2
            base_z = leaf.key.z - span // 2
            for dx in range(span):
                for dy in range(span):
                    for dz in range(span):
                        grid[(base_x + dx, base_y + dy, base_z + dz)] = leaf.log_odds
        return grid

    # ------------------------------------------------------------------
    # Convenience wrappers around the ray-casting / scan-insertion modules
    # ------------------------------------------------------------------
    def insert_point_cloud(self, cloud, origin, max_range: float = -1.0, lazy_prune: bool = False) -> None:
        """Integrate a sensor scan; see :func:`repro.octomap.scan_insertion.insert_point_cloud`."""
        from repro.octomap.scan_insertion import insert_point_cloud

        insert_point_cloud(self, cloud, origin, max_range=max_range, lazy_prune=lazy_prune)

    def cast_ray(self, origin, direction, max_range: float = -1.0):
        """Cast a query ray; see :func:`repro.octomap.raycast.cast_ray`."""
        from repro.octomap.raycast import cast_ray

        return cast_ray(self, origin, direction, max_range=max_range)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _as_key(self, key_or_x, y: Optional[float], z: Optional[float]) -> OcTreeKey:
        if isinstance(key_or_x, OcTreeKey):
            return key_or_x
        if y is None or z is None:
            raise TypeError("metric lookup requires x, y and z coordinates")
        return self.coord_to_key(float(key_or_x), y, z)
