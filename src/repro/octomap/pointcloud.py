"""Point clouds, rigid-body poses, scan nodes and scan graphs.

These are the sensor-data containers the mapping pipeline consumes.  A
:class:`ScanGraph` mirrors the OctoMap ``.graph`` datasets used in the paper's
evaluation (FR-079 corridor, Freiburg campus, New College): a sequence of
:class:`ScanNode` entries, each pairing a point cloud in the sensor frame with
the 6-DoF pose of the sensor at capture time.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = ["PointCloud", "Pose6D", "ScanNode", "ScanGraph"]


class PointCloud:
    """A set of 3D points stored as an ``(N, 3)`` float64 array."""

    def __init__(self, points: Sequence[Sequence[float]] | np.ndarray | None = None) -> None:
        if points is None:
            self._points = np.empty((0, 3), dtype=np.float64)
        else:
            array = np.asarray(points, dtype=np.float64)
            if array.size == 0:
                array = array.reshape(0, 3)
            if array.ndim != 2 or array.shape[1] != 3:
                raise ValueError(f"points must have shape (N, 3), got {array.shape}")
            self._points = array.copy()

    @property
    def points(self) -> np.ndarray:
        """The underlying ``(N, 3)`` array (a copy is *not* made)."""
        return self._points

    def __len__(self) -> int:
        return int(self._points.shape[0])

    def __iter__(self) -> Iterator[Tuple[float, float, float]]:
        for row in self._points:
            yield (float(row[0]), float(row[1]), float(row[2]))

    def __getitem__(self, index: int) -> Tuple[float, float, float]:
        row = self._points[index]
        return (float(row[0]), float(row[1]), float(row[2]))

    def append(self, x: float, y: float, z: float) -> None:
        """Append a single point (O(N); prefer :meth:`extend` for batches)."""
        self._points = np.vstack([self._points, np.asarray([[x, y, z]], dtype=np.float64)])

    def extend(self, points: Iterable[Sequence[float]]) -> None:
        """Append many points at once."""
        array = np.asarray(list(points), dtype=np.float64)
        if array.size == 0:
            return
        if array.ndim != 2 or array.shape[1] != 3:
            raise ValueError(f"points must have shape (N, 3), got {array.shape}")
        self._points = np.vstack([self._points, array])

    def transformed(self, pose: "Pose6D") -> "PointCloud":
        """Return a new cloud with every point moved into the pose's frame."""
        if len(self) == 0:
            return PointCloud()
        rotated = self._points @ pose.rotation_matrix().T
        translated = rotated + np.asarray(pose.translation, dtype=np.float64)
        return PointCloud(translated)

    def subsampled(self, max_points: int, seed: int = 0) -> "PointCloud":
        """Return a uniform random subsample with at most ``max_points`` points."""
        if max_points <= 0:
            raise ValueError("max_points must be positive")
        if len(self) <= max_points:
            return PointCloud(self._points)
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(self), size=max_points, replace=False)
        return PointCloud(self._points[np.sort(chosen)])

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounds ``(min_xyz, max_xyz)`` of the cloud."""
        if len(self) == 0:
            raise ValueError("bounds of an empty point cloud are undefined")
        return self._points.min(axis=0), self._points.max(axis=0)


class Pose6D:
    """A rigid-body transform: translation plus roll / pitch / yaw (radians).

    The rotation convention is Z-Y-X intrinsic (yaw about z, then pitch about
    y, then roll about x), matching the OctoMap ``pose6d`` convention used by
    the scan-graph datasets.
    """

    __slots__ = ("translation", "roll", "pitch", "yaw")

    def __init__(
        self,
        translation: Sequence[float] = (0.0, 0.0, 0.0),
        roll: float = 0.0,
        pitch: float = 0.0,
        yaw: float = 0.0,
    ) -> None:
        if len(translation) != 3:
            raise ValueError("translation must have three components")
        self.translation = (float(translation[0]), float(translation[1]), float(translation[2]))
        self.roll = float(roll)
        self.pitch = float(pitch)
        self.yaw = float(yaw)

    def rotation_matrix(self) -> np.ndarray:
        """3x3 rotation matrix of this pose."""
        cr, sr = math.cos(self.roll), math.sin(self.roll)
        cp, sp = math.cos(self.pitch), math.sin(self.pitch)
        cy, sy = math.cos(self.yaw), math.sin(self.yaw)
        rotation_z = np.array([[cy, -sy, 0.0], [sy, cy, 0.0], [0.0, 0.0, 1.0]])
        rotation_y = np.array([[cp, 0.0, sp], [0.0, 1.0, 0.0], [-sp, 0.0, cp]])
        rotation_x = np.array([[1.0, 0.0, 0.0], [0.0, cr, -sr], [0.0, sr, cr]])
        return rotation_z @ rotation_y @ rotation_x

    def transform_point(self, point: Sequence[float]) -> Tuple[float, float, float]:
        """Apply the pose to a single point."""
        rotated = self.rotation_matrix() @ np.asarray(point, dtype=np.float64)
        moved = rotated + np.asarray(self.translation, dtype=np.float64)
        return (float(moved[0]), float(moved[1]), float(moved[2]))

    def compose(self, other: "Pose6D") -> "Pose6D":
        """Compose this pose with ``other`` (``self`` applied after ``other``).

        Only the yaw component composes exactly in Euler form for arbitrary
        rotations; the datasets in this repo use planar (yaw-only) motion, for
        which this composition is exact.
        """
        new_translation = self.transform_point(other.translation)
        return Pose6D(
            new_translation,
            roll=self.roll + other.roll,
            pitch=self.pitch + other.pitch,
            yaw=self.yaw + other.yaw,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Pose6D(translation={self.translation}, roll={self.roll:.3f}, "
            f"pitch={self.pitch:.3f}, yaw={self.yaw:.3f})"
        )


class ScanNode:
    """One sensor capture: a point cloud in the sensor frame plus its pose."""

    __slots__ = ("cloud", "pose", "scan_id")

    def __init__(self, cloud: PointCloud, pose: Pose6D, scan_id: int = 0) -> None:
        self.cloud = cloud
        self.pose = pose
        self.scan_id = int(scan_id)

    def world_cloud(self) -> PointCloud:
        """The point cloud transformed into the world frame."""
        return self.cloud.transformed(self.pose)

    def origin(self) -> Tuple[float, float, float]:
        """Sensor origin in the world frame."""
        return self.pose.translation

    def __len__(self) -> int:
        return len(self.cloud)


class ScanGraph:
    """An ordered collection of scans, equivalent to an OctoMap ``.graph`` file."""

    def __init__(self, scans: Iterable[ScanNode] | None = None, name: str = "") -> None:
        self._scans: List[ScanNode] = list(scans) if scans is not None else []
        self.name = name

    def add_scan(self, scan: ScanNode) -> None:
        """Append one scan to the graph."""
        self._scans.append(scan)

    def __len__(self) -> int:
        return len(self._scans)

    def __iter__(self) -> Iterator[ScanNode]:
        return iter(self._scans)

    def __getitem__(self, index: int) -> ScanNode:
        return self._scans[index]

    def total_points(self) -> int:
        """Total number of 3D points across all scans."""
        return sum(len(scan) for scan in self._scans)

    def average_points_per_scan(self) -> float:
        """Mean number of points per scan (0 for an empty graph)."""
        if not self._scans:
            return 0.0
        return self.total_points() / len(self._scans)

    def statistics(self) -> dict:
        """Summary statistics in the shape of the paper's Table II rows."""
        return {
            "name": self.name,
            "scan_number": len(self._scans),
            "average_points_per_scan": self.average_points_per_scan(),
            "point_cloud_total": self.total_points(),
        }
