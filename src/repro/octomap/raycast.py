"""3D ray traversal over the voxel grid (ray casting).

Ray casting turns one sensor beam into the set of voxels it traverses: every
voxel between the sensor origin and the measured endpoint is a *free-space*
observation, the endpoint voxel is an *occupied* observation (paper Fig. 1).
The traversal uses the Amanatides & Woo digital differential analyser (DDA),
the same algorithm OctoMap's ``computeRayKeys`` implements, stepping from
voxel boundary to voxel boundary without ever skipping a cell.

Two entry points are provided:

* :func:`compute_ray_keys` -- enumerate the voxel keys crossed by a segment
  (used during map *building*).
* :func:`cast_ray` -- walk a ray through an existing map until an occupied
  voxel is hit (used during map *querying*, e.g. for collision checks).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.octomap.keys import KeyConverter, OcTreeKey

__all__ = ["compute_ray_keys", "cast_ray", "RayCastResult"]

_EPSILON = 1e-12


def compute_ray_keys(
    converter: KeyConverter,
    origin: Sequence[float],
    end: Sequence[float],
    counters=None,
) -> List[OcTreeKey]:
    """Enumerate the voxels strictly between ``origin`` and ``end``.

    The endpoint voxel itself is *not* included (it is registered as occupied
    separately), matching OctoMap's ``computeRayKeys`` contract.

    Args:
        converter: key converter defining resolution and addressable volume.
        origin: sensor origin ``(x, y, z)`` in metres.
        end: beam endpoint ``(x, y, z)`` in metres.
        counters: optional :class:`OperationCounters`; each traversed voxel
            increments ``ray_steps``.

    Returns:
        The traversed voxel keys in order from the origin towards the end.
    """
    origin_key = converter.coord_to_key(*origin)
    end_key = converter.coord_to_key(*end)
    keys: List[OcTreeKey] = []
    if origin_key == end_key:
        return keys

    direction = [end[axis] - origin[axis] for axis in range(3)]
    length = math.sqrt(sum(component * component for component in direction))
    if length < _EPSILON:
        return keys
    direction = [component / length for component in direction]

    current = list(origin_key.as_tuple())
    end_components = end_key.as_tuple()
    resolution = converter.resolution

    step = [0, 0, 0]
    t_max = [float("inf")] * 3
    t_delta = [float("inf")] * 3
    voxel_border_offset = 0.5 * resolution

    origin_center = converter.key_to_coord(origin_key)
    for axis in range(3):
        if direction[axis] > _EPSILON:
            step[axis] = 1
        elif direction[axis] < -_EPSILON:
            step[axis] = -1
        else:
            step[axis] = 0
        if step[axis] != 0:
            border = origin_center[axis] + step[axis] * voxel_border_offset
            t_max[axis] = (border - origin[axis]) / direction[axis]
            t_delta[axis] = resolution / abs(direction[axis])

    max_steps = int(3 * (length / resolution + 2)) + 8
    for _ in range(max_steps):
        axis = t_max.index(min(t_max))
        if t_max[axis] > length:
            # The next voxel-boundary crossing lies beyond the endpoint, so
            # every free voxel of this beam has already been enumerated.
            break
        current[axis] += step[axis]
        t_max[axis] += t_delta[axis]
        if not 0 <= current[axis] <= 0xFFFF:
            break
        key = OcTreeKey(current[0], current[1], current[2])
        if key == end_key:
            break
        keys.append(key)
        if counters is not None:
            counters.ray_steps += 1
    return keys


class RayCastResult:
    """Outcome of :func:`cast_ray`.

    Attributes:
        hit: True if an occupied voxel was found before ``max_range``.
        end_key: key of the voxel where the walk stopped (occupied voxel on a
            hit, last traversed voxel otherwise), or None if the walk never
            left the origin voxel.
        end_point: metric centre of ``end_key``.
        distance: metric distance from the origin to ``end_point``.
        traversed: number of voxels stepped through.
    """

    __slots__ = ("hit", "end_key", "end_point", "distance", "traversed")

    def __init__(
        self,
        hit: bool,
        end_key: Optional[OcTreeKey],
        end_point: Optional[Tuple[float, float, float]],
        distance: float,
        traversed: int,
    ) -> None:
        self.hit = hit
        self.end_key = end_key
        self.end_point = end_point
        self.distance = distance
        self.traversed = traversed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RayCastResult(hit={self.hit}, end_point={self.end_point}, "
            f"distance={self.distance:.3f}, traversed={self.traversed})"
        )


def cast_ray(
    tree,
    origin: Sequence[float],
    direction: Sequence[float],
    max_range: float = -1.0,
    ignore_unknown: bool = True,
) -> RayCastResult:
    """Walk a ray through an existing map until it hits an occupied voxel.

    Args:
        tree: an :class:`repro.octomap.octree.OccupancyOcTree`.
        origin: ray origin in metres.
        direction: ray direction (need not be normalised).
        max_range: maximum metric range to walk; ``-1`` walks until the edge
            of the addressable volume.
        ignore_unknown: if False, the walk also stops at the first unknown
            (never observed) voxel and reports it as a non-hit termination.

    Returns:
        A :class:`RayCastResult` describing where and why the walk stopped.
    """
    length = math.sqrt(sum(component * component for component in direction))
    if length < _EPSILON:
        raise ValueError("direction must be a non-zero vector")
    unit = [component / length for component in direction]

    converter = tree.key_converter
    resolution = converter.resolution
    if max_range <= 0.0:
        max_range = 2.0 * converter.max_coordinate

    steps = int(max_range / resolution) + 2
    current = list(origin)
    previous_key: Optional[OcTreeKey] = None
    traversed = 0
    for _ in range(steps):
        for axis in range(3):
            current[axis] += unit[axis] * resolution
        if not converter.is_coordinate_in_range(*current):
            break
        key = converter.coord_to_key(*current)
        if previous_key is not None and key == previous_key:
            continue
        previous_key = key
        traversed += 1
        node = tree.search(key)
        if node is None:
            if not ignore_unknown:
                center = converter.key_to_coord(key)
                distance = _distance(origin, center)
                return RayCastResult(False, key, center, distance, traversed)
            continue
        if tree.is_node_occupied(node):
            center = converter.key_to_coord(key)
            distance = _distance(origin, center)
            return RayCastResult(True, key, center, distance, traversed)
        distance_walked = _distance(origin, current)
        if distance_walked > max_range:
            break

    if previous_key is None:
        return RayCastResult(False, None, None, 0.0, 0)
    center = converter.key_to_coord(previous_key)
    return RayCastResult(False, previous_key, center, _distance(origin, center), traversed)


def _distance(a: Sequence[float], b: Sequence[float]) -> float:
    return math.sqrt(sum((a[axis] - b[axis]) ** 2 for axis in range(3)))
