"""Vectorized scan front end: batched Amanatides-Woo traversal over numpy arrays.

:mod:`repro.octomap.raycast` steps one ray at a time in pure Python -- one
``OcTreeKey`` allocation and a handful of interpreter operations per traversed
voxel.  Profiling the serving layer showed that this serial front end (ray
casting plus key generation) starves the shard-apply parallelism behind it.
This module is the batched replacement: it traverses *all rays as arrays*,
carrying per-axis t-maxima/t-deltas as ``(N,)`` float arrays, compacting rays
out of the working set as they terminate, and emitting the visited voxel keys
as packed ``uint64`` codes that de-duplicate and sort with one ``np.unique``
per scan.  :func:`compute_batch_update_arrays` goes one step further and runs
every ray of a whole ingestion batch (several scans) through a single DDA
loop, with a scan-id lane keeping the de-duplication per scan -- the loop's
per-iteration Python overhead is paid once per batch instead of once per scan.

Equivalence contract: for any scan, the emitted free/occupied key sets equal
what the scalar
:func:`repro.octomap.scan_insertion.compute_update_keys_for_converter` emits,
key for key -- same max-range truncation, same endpoint clipping at the
addressable-volume boundary (clipped beams mark free space but register no
occupied endpoint), same per-scan occupied-beats-free de-duplication, and the
same pre-dedup visit count for the stats layer.  The arithmetic deliberately
mirrors the scalar path operation for operation (same epsilon, same division
order, same floor/truncation) so the property suite can pin the two paths
against each other bit for bit.  The scalar implementation stays as the
verification reference behind ``SessionConfig(scalar_frontend=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.octomap.keys import KeyConverter, OcTreeKey

__all__ = [
    "ScanUpdateArrays",
    "compute_batch_update_arrays",
    "compute_scan_update_arrays",
    "compute_update_keys_vectorized",
    "pack_key_array",
    "unpack_key_array",
]

#: Same epsilon the scalar DDA and the volume clipper use.
_EPSILON = 1e-12

_KEY_MASK = np.uint64(0xFFFF)
_SHIFT_X = np.uint64(32)
_SHIFT_Y = np.uint64(16)


def _empty_packed() -> np.ndarray:
    return np.empty(0, dtype=np.uint64)


def pack_key_array(keys: np.ndarray) -> np.ndarray:
    """Pack an ``(N, 3)`` key-component array into ``(N,)`` uint64 codes.

    The x component lands in the highest bits, so sorting packed codes orders
    exactly like ``sorted()`` on the equivalent
    :class:`~repro.octomap.keys.OcTreeKey` objects (lexicographic x, y, z) --
    the property the batching front end relies on to keep its vectorized
    update stream identical to the scalar one.
    """
    packed = keys.astype(np.uint64, copy=False)
    return (packed[:, 0] << _SHIFT_X) | (packed[:, 1] << _SHIFT_Y) | packed[:, 2]


def unpack_key_array(packed: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_key_array`: ``(N,)`` uint64 to ``(N, 3)`` int64."""
    x = (packed >> _SHIFT_X) & _KEY_MASK
    y = (packed >> _SHIFT_Y) & _KEY_MASK
    z = packed & _KEY_MASK
    return np.stack((x, y, z), axis=1).astype(np.int64)


@dataclass
class ScanUpdateArrays:
    """De-duplicated update keys of one scan, in packed-array form.

    Attributes:
        free_packed: sorted unique packed keys of the free-space voxels, with
            the scan's occupied voxels already removed (occupied beats free).
        occupied_packed: sorted unique packed keys of the endpoint voxels.
        ray_steps: free-voxel visits *before* de-duplication (one per DDA
            step), matching what the scalar path records in
            ``OperationCounters.ray_steps``.
    """

    free_packed: np.ndarray
    occupied_packed: np.ndarray
    ray_steps: int

    def free_keys(self) -> np.ndarray:
        """The free voxel keys as an ``(N, 3)`` int64 array (sorted)."""
        return unpack_key_array(self.free_packed)

    def occupied_keys(self) -> np.ndarray:
        """The occupied voxel keys as an ``(N, 3)`` int64 array (sorted)."""
        return unpack_key_array(self.occupied_packed)

    @property
    def update_count(self) -> int:
        """Updates the scan dispatches after de-duplication."""
        return int(self.free_packed.size + self.occupied_packed.size)


def _clip_endpoints_to_volume(
    converter: KeyConverter,
    origin: np.ndarray,
    endpoints: np.ndarray,
    rows: np.ndarray,
) -> None:
    """In-place array form of ``clip_segment_to_volume`` for the ``rows`` subset.

    The caller guarantees the (shared) origin is inside the addressable
    volume; each selected endpoint is pulled back along its beam until every
    component lies within ``+/- max_coordinate * 0.999``, using exactly the
    scalar clipper's per-axis scale minimisation.
    """
    limit = converter.max_coordinate * 0.999
    subset = endpoints[rows]
    delta = subset - origin
    scale = np.ones(len(rows), dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        for axis in range(3):
            component_delta = delta[:, axis]
            usable = ~(np.abs(component_delta) < _EPSILON)
            high = subset[:, axis] > limit
            low = (~high) & (subset[:, axis] < -limit)
            candidate = np.where(
                high,
                (limit - origin[axis]) / component_delta,
                (-limit - origin[axis]) / component_delta,
            )
            pick = usable & (high | low)
            scale = np.where(pick, np.minimum(scale, candidate), scale)
    scale = np.maximum(scale, 0.0)
    endpoints[rows] = origin + delta * scale[:, None]


@dataclass
class _PreparedScan:
    """One scan's rays after truncation/clipping, ready for the shared DDA."""

    endpoints: np.ndarray  # (M, 3) float64, all inside the volume
    truncated: np.ndarray  # (M,) bool -- no occupied endpoint for these
    end_keys: np.ndarray  # (M, 3) int64
    origin: np.ndarray  # (3,) float64
    origin_key: np.ndarray  # (3,) int64


def _prepare_scan(
    converter: KeyConverter,
    points: np.ndarray,
    origin: Sequence[float],
    max_range: float,
) -> Optional[_PreparedScan]:
    """Truncate, clip and discretise one scan; None when nothing survives.

    Raises:
        ValueError: if the origin lies outside the addressable volume while
            any beam endpoint lies inside it -- the same condition under
            which the scalar path raises from ``coord_to_key``.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.size == 0:
        return None
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"points must have shape (N, 3), got {points.shape}")
    origin_arr = np.asarray(origin, dtype=np.float64).reshape(3)

    endpoints = points.copy()
    truncated = np.zeros(len(points), dtype=bool)

    # --- max-range truncation (same arithmetic as the scalar path) --------
    if max_range > 0.0:
        delta = points - origin_arr
        distance = np.sqrt(
            delta[:, 0] * delta[:, 0] + delta[:, 1] * delta[:, 1] + delta[:, 2] * delta[:, 2]
        )
        over = distance > max_range
        if over.any():
            scale = max_range / distance[over]
            endpoints[over] = origin_arr + (points[over] - origin_arr) * scale[:, None]
            truncated |= over

    # --- endpoint clipping at the addressable-volume boundary -------------
    limit = converter.max_coordinate
    in_range = ((endpoints >= -limit) & (endpoints < limit)).all(axis=1)
    keep = np.ones(len(points), dtype=bool)
    if not in_range.all():
        if not converter.is_coordinate_in_range(*origin_arr):
            # clip_segment_to_volume returns None: those beams contribute
            # nothing at all.
            keep &= in_range
        else:
            rows = np.nonzero(~in_range)[0]
            _clip_endpoints_to_volume(converter, origin_arr, endpoints, rows)
            truncated[rows] = True

    endpoints = endpoints[keep]
    truncated = truncated[keep]
    if endpoints.shape[0] == 0:
        return None

    # Discretise the origin exactly like the scalar DDA's first step: an
    # out-of-range origin with a surviving in-range endpoint raises here.
    origin_key = converter.coord_to_key(*origin_arr)
    return _PreparedScan(
        endpoints=endpoints,
        truncated=truncated,
        end_keys=converter.coords_to_key_array(endpoints),
        origin=origin_arr,
        origin_key=np.array(origin_key.as_tuple(), dtype=np.int64),
    )


def compute_batch_update_arrays(
    converter: KeyConverter,
    scans: Sequence[Tuple[np.ndarray, Sequence[float], float]],
    counters=None,
) -> List[ScanUpdateArrays]:
    """Ray-cast several scans through ONE batched DDA; the front-end kernel.

    Args:
        converter: key converter defining resolution and addressable volume.
        scans: per scan, a ``(points, origin, max_range)`` triple --
            ``(N, 3)`` world-frame points, the shared sensor origin, and the
            beam truncation range (``-1`` disables truncation).
        counters: optional :class:`~repro.octomap.counters.OperationCounters`;
            receives the same ``ray_steps`` total the scalar DDA records over
            the same scans.

    Returns:
        One :class:`ScanUpdateArrays` per input scan (de-duplication and the
        occupied-beats-free rule applied per scan, never across scans).

    Raises:
        ValueError: under exactly the scalar path's conditions (malformed
            points array; origin outside the addressable volume while any of
            that scan's endpoints lies inside it).

    All rays of all scans march through a single compacting traversal loop:
    a ``scan_ids`` lane travels with the working set so every emitted voxel
    key is attributed to its scan, which keeps the per-scan de-duplication
    exact while the loop's per-iteration Python overhead is paid once per
    batch instead of once per scan.
    """
    prepared = [_prepare_scan(converter, *scan) for scan in scans]

    results: List[Optional[ScanUpdateArrays]] = [None] * len(prepared)
    occupied: List[np.ndarray] = [_empty_packed()] * len(prepared)
    ray_origins: List[np.ndarray] = []
    ray_origin_keys: List[np.ndarray] = []
    ray_endpoints: List[np.ndarray] = []
    ray_end_keys: List[np.ndarray] = []
    ray_scan_ids: List[np.ndarray] = []
    for scan_id, prep in enumerate(prepared):
        if prep is None:
            results[scan_id] = ScanUpdateArrays(_empty_packed(), _empty_packed(), 0)
            continue
        not_truncated = ~prep.truncated
        if not_truncated.any():
            occupied[scan_id] = np.unique(pack_key_array(prep.end_keys[not_truncated]))
        count = prep.endpoints.shape[0]
        ray_origins.append(np.broadcast_to(prep.origin, (count, 3)))
        ray_origin_keys.append(np.broadcast_to(prep.origin_key, (count, 3)))
        ray_endpoints.append(prep.endpoints)
        ray_end_keys.append(prep.end_keys)
        ray_scan_ids.append(np.full(count, scan_id, dtype=np.int64))

    emitted_packed: List[np.ndarray] = []
    emitted_scan: List[np.ndarray] = []
    if ray_endpoints:
        origins = np.concatenate(ray_origins)
        origin_keys = np.concatenate(ray_origin_keys)
        endpoints = np.concatenate(ray_endpoints)
        end_keys = np.concatenate(ray_end_keys)
        scan_ids = np.concatenate(ray_scan_ids)

        direction = endpoints - origins
        length = np.sqrt(
            direction[:, 0] * direction[:, 0]
            + direction[:, 1] * direction[:, 1]
            + direction[:, 2] * direction[:, 2]
        )
        active = (length >= _EPSILON) & ~(end_keys == origin_keys).all(axis=1)
        rows = np.nonzero(active)[0]
        if rows.size:
            resolution = converter.resolution
            unit = direction[rows] / length[rows, None]
            step = np.zeros((rows.size, 3), dtype=np.int64)
            step[unit > _EPSILON] = 1
            step[unit < -_EPSILON] = -1
            moving = step != 0
            origin_center = (
                origin_keys[rows] - converter.tree_max_val + 0.5
            ) * resolution
            border = origin_center + step * (0.5 * resolution)
            with np.errstate(divide="ignore", invalid="ignore"):
                t_max = np.where(moving, (border - origins[rows]) / unit, np.inf)
                t_delta = np.where(moving, resolution / np.abs(unit), np.inf)
            # The scalar loop bound, per ray: terminates pathological rays.
            remaining = (3.0 * (length[rows] / resolution + 2.0)).astype(np.int64) + 8
            current = origin_keys[rows].copy()
            end_k = end_keys[rows]
            ray_length = length[rows]
            lane = scan_ids[rows]
            index = np.arange(current.shape[0])

            while current.shape[0]:
                # First-minimum tie-break, matching the scalar list.index(min).
                axis = np.argmin(t_max, axis=1)
                advance = t_max[index, axis] <= ray_length
                if not advance.all():
                    # Rays whose next boundary crossing lies beyond the
                    # endpoint have enumerated every free voxel of their beam.
                    current = current[advance]
                    t_max = t_max[advance]
                    t_delta = t_delta[advance]
                    step = step[advance]
                    end_k = end_k[advance]
                    ray_length = ray_length[advance]
                    remaining = remaining[advance]
                    lane = lane[advance]
                    axis = axis[advance]
                    if current.shape[0] == 0:
                        break
                    index = np.arange(current.shape[0])
                current[index, axis] += step[index, axis]
                t_max[index, axis] += t_delta[index, axis]
                component = current[index, axis]
                in_bounds = (component >= 0) & (component <= 0xFFFF)
                at_end = (current == end_k).all(axis=1)
                emit = in_bounds & ~at_end
                if emit.any():
                    emitted_packed.append(pack_key_array(current[emit]))
                    emitted_scan.append(lane[emit])
                remaining -= 1
                alive = emit & (remaining > 0)
                if not alive.all():
                    current = current[alive]
                    t_max = t_max[alive]
                    t_delta = t_delta[alive]
                    step = step[alive]
                    end_k = end_k[alive]
                    ray_length = ray_length[alive]
                    remaining = remaining[alive]
                    lane = lane[alive]
                    index = np.arange(current.shape[0])

    if emitted_packed:
        all_packed = np.concatenate(emitted_packed)
        all_scan = np.concatenate(emitted_scan)
        steps_per_scan = np.bincount(all_scan, minlength=len(prepared))
    else:
        all_packed = _empty_packed()
        all_scan = np.empty(0, dtype=np.int64)
        steps_per_scan = np.zeros(len(prepared), dtype=np.int64)

    if counters is not None:
        counters.ray_steps += int(all_packed.size)

    for scan_id in range(len(prepared)):
        if results[scan_id] is not None:
            continue
        free = np.unique(all_packed[all_scan == scan_id])
        occ = occupied[scan_id]
        if free.size and occ.size:
            # Occupied beats free within the scan, exactly like the scalar
            # ``free_keys -= occupied_keys``.
            free = free[~np.isin(free, occ)]
        results[scan_id] = ScanUpdateArrays(free, occ, int(steps_per_scan[scan_id]))
    return results  # type: ignore[return-value]


def compute_scan_update_arrays(
    converter: KeyConverter,
    points: np.ndarray,
    origin: Sequence[float],
    max_range: float = -1.0,
    counters=None,
) -> ScanUpdateArrays:
    """Ray-cast one whole scan as arrays (single-scan view of the batch kernel).

    See :func:`compute_batch_update_arrays` for semantics; this convenience
    wrapper runs a one-scan batch and returns its only result.
    """
    return compute_batch_update_arrays(
        converter, [(points, origin, max_range)], counters=counters
    )[0]


def compute_update_keys_vectorized(
    converter: KeyConverter,
    cloud,
    origin: Sequence[float],
    max_range: float = -1.0,
    counters=None,
) -> Tuple[Set[OcTreeKey], Set[OcTreeKey]]:
    """Set-returning wrapper matching ``compute_update_keys_for_converter``.

    Accepts a :class:`~repro.octomap.pointcloud.PointCloud` or a raw
    ``(N, 3)`` array and returns ``(free_keys, occupied_keys)`` as
    :class:`OcTreeKey` sets -- the signature the scalar reference exposes, so
    the two front ends can be compared (and swapped) call for call.
    """
    points = getattr(cloud, "points", cloud)
    result = compute_scan_update_arrays(
        converter, points, origin, max_range=max_range, counters=counters
    )
    free = {OcTreeKey(x, y, z) for x, y, z in result.free_keys().tolist()}
    occupied = {OcTreeKey(x, y, z) for x, y, z in result.occupied_keys().tolist()}
    return free, occupied
