"""Batch insertion of sensor scans into the occupancy octree.

A scan is integrated in two phases, exactly as OctoMap's
``insertPointCloud`` does and as the paper's pipeline (Fig. 1) shows:

1. **Ray casting** -- every beam from the sensor origin to a measured point
   enumerates the free voxels it crosses; the endpoint voxel is occupied.
2. **Voxel update** -- the de-duplicated free and occupied voxel keys are
   applied to the tree (occupied updates win over free updates for the same
   voxel in the same scan, so thin obstacles are not erased by rays that
   terminate on them).

The de-duplication sets are also what the OMU accelerator's free/occupied
voxel queues carry (Fig. 7), so this module is shared by the software baseline
and by the accelerator front end.
"""

from __future__ import annotations

from typing import Sequence, Set, Tuple

from repro.octomap.keys import OcTreeKey
from repro.octomap.pointcloud import PointCloud
from repro.octomap.raycast import compute_ray_keys

__all__ = [
    "compute_update_keys",
    "compute_update_keys_for_converter",
    "insert_point_cloud",
    "clip_segment_to_volume",
]


def compute_update_keys(
    tree,
    cloud: PointCloud,
    origin: Sequence[float],
    max_range: float = -1.0,
) -> Tuple[Set[OcTreeKey], Set[OcTreeKey]]:
    """Ray-cast a scan and return the de-duplicated ``(free, occupied)`` key sets.

    Args:
        tree: the target :class:`repro.octomap.octree.OccupancyOcTree` (used
            for its key converter and counters).
        cloud: scan points already expressed in the world frame.
        origin: sensor origin in the world frame.
        max_range: beams longer than this are truncated -- the voxels up to
            ``max_range`` are marked free but no endpoint is registered
            (``-1`` disables truncation).

    Returns:
        ``(free_keys, occupied_keys)`` with occupied keys removed from the
        free set, so each voxel receives at most one update per scan.
    """
    return compute_update_keys_for_converter(
        tree.key_converter, cloud, origin, max_range=max_range, counters=tree.counters
    )


def compute_update_keys_for_converter(
    converter,
    cloud: PointCloud,
    origin: Sequence[float],
    max_range: float = -1.0,
    counters=None,
) -> Tuple[Set[OcTreeKey], Set[OcTreeKey]]:
    """Tree-independent variant of :func:`compute_update_keys`.

    The serving layer's ingestion pipeline ray-casts each scan once in a
    shared front end and dispatches the resulting key streams to shard
    workers, so it needs the free/occupied sets without owning a tree.  Only
    a :class:`~repro.octomap.keys.KeyConverter` (and optionally a counter
    sink) is required; the de-duplication policy is identical.
    """
    free_keys: Set[OcTreeKey] = set()
    occupied_keys: Set[OcTreeKey] = set()

    for point in cloud:
        truncated = False
        endpoint = point
        if max_range > 0.0:
            distance = _distance(origin, point)
            if distance > max_range:
                truncated = True
                scale = max_range / distance
                endpoint = tuple(
                    origin[axis] + (point[axis] - origin[axis]) * scale for axis in range(3)
                )
        if not converter.is_coordinate_in_range(*endpoint):
            # Clip beams leaving the addressable volume: mark what is inside.
            endpoint = clip_segment_to_volume(converter, origin, endpoint)
            truncated = True
            if endpoint is None:
                continue

        ray_keys = compute_ray_keys(converter, origin, endpoint, counters=counters)
        free_keys.update(ray_keys)
        if not truncated:
            occupied_keys.add(converter.coord_to_key(*endpoint))

    free_keys -= occupied_keys
    return free_keys, occupied_keys


def insert_point_cloud(
    tree,
    cloud: PointCloud,
    origin: Sequence[float],
    max_range: float = -1.0,
    lazy_prune: bool = False,
) -> Tuple[int, int]:
    """Integrate one scan into the tree.

    Args:
        tree: target occupancy octree.
        cloud: scan points in the world frame.
        origin: sensor origin in the world frame.
        max_range: see :func:`compute_update_keys`.
        lazy_prune: when True, leaf updates are applied with ``lazy_eval`` and
            a single ``update_inner_occupancy`` + ``prune`` pass runs at the
            end of the scan (OctoMap's batch mode).  When False every update
            maintains parents and pruning eagerly, which is the behaviour the
            paper profiles on the CPU.

    Returns:
        ``(num_free_updates, num_occupied_updates)`` applied to the tree.
    """
    free_keys, occupied_keys = compute_update_keys(tree, cloud, origin, max_range)

    for key in free_keys:
        tree.update_node(key, occupied=False, lazy_eval=lazy_prune)
    for key in occupied_keys:
        tree.update_node(key, occupied=True, lazy_eval=lazy_prune)

    if lazy_prune:
        tree.update_inner_occupancy()
        tree.prune()
    return len(free_keys), len(occupied_keys)


def _distance(a: Sequence[float], b: Sequence[float]) -> float:
    return sum((a[axis] - b[axis]) ** 2 for axis in range(3)) ** 0.5


def clip_segment_to_volume(converter, origin: Sequence[float], end: Sequence[float]):
    """Shorten a segment so its endpoint lies inside the addressable volume.

    Returns the clipped endpoint, or None when even the origin lies outside
    (in which case the beam contributes nothing).  Shared by the software
    insertion path and the accelerator's ray-casting unit so both backends
    treat out-of-range beams identically.
    """
    if not converter.is_coordinate_in_range(*origin):
        return None
    limit = converter.max_coordinate * 0.999
    scale = 1.0
    for axis in range(3):
        delta = end[axis] - origin[axis]
        if abs(delta) < 1e-12:
            continue
        if end[axis] > limit:
            scale = min(scale, (limit - origin[axis]) / delta)
        elif end[axis] < -limit:
            scale = min(scale, (-limit - origin[axis]) / delta)
    scale = max(scale, 0.0)
    return tuple(origin[axis] + (end[axis] - origin[axis]) * scale for axis in range(3))
