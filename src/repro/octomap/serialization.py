"""Compact binary serialization of occupancy octrees.

The format mirrors the spirit of OctoMap's ``.ot`` files: a small ASCII
header (resolution, tree depth, node count) followed by a pre-order recursive
encoding of the tree where every node contributes its float log-odds value and
one byte whose bits flag which of its eight children exist.

The format is self-contained and endian-fixed (little endian), so trees can be
written by one process and reloaded by another -- the benchmark harness uses
this to cache pre-built maps between runs.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import BinaryIO, Union

from repro.octomap.node import OcTreeNode
from repro.octomap.octree import OccupancyOcTree

__all__ = ["write_tree", "read_tree", "serialize_tree", "deserialize_tree"]

_MAGIC = b"# repro-octree v1\n"
_NODE_STRUCT = struct.Struct("<fB")  # log-odds float32, children bitmask


def serialize_tree(tree: OccupancyOcTree) -> bytes:
    """Serialise a tree to bytes (header + pre-order node records)."""
    buffer = io.BytesIO()
    _write_stream(tree, buffer)
    return buffer.getvalue()


def deserialize_tree(data: bytes) -> OccupancyOcTree:
    """Reconstruct a tree from bytes produced by :func:`serialize_tree`."""
    return _read_stream(io.BytesIO(data))


def write_tree(tree: OccupancyOcTree, path: Union[str, Path]) -> int:
    """Write a tree to ``path``; returns the number of bytes written."""
    data = serialize_tree(tree)
    Path(path).write_bytes(data)
    return len(data)


def read_tree(path: Union[str, Path]) -> OccupancyOcTree:
    """Load a tree previously written with :func:`write_tree`."""
    return deserialize_tree(Path(path).read_bytes())


def _write_stream(tree: OccupancyOcTree, stream: BinaryIO) -> None:
    stream.write(_MAGIC)
    header = f"res {tree.resolution!r}\ndepth {tree.tree_depth}\nsize {tree.size()}\ndata\n"
    stream.write(header.encode("ascii"))
    if tree.root is not None:
        _write_node(tree.root, stream)


def _write_node(node: OcTreeNode, stream: BinaryIO) -> None:
    mask = 0
    for index in range(8):
        if node.child_exists(index):
            mask |= 1 << index
    stream.write(_NODE_STRUCT.pack(node.log_odds, mask))
    for index in range(8):
        child = node.child(index)
        if child is not None:
            _write_node(child, stream)


def _read_stream(stream: BinaryIO) -> OccupancyOcTree:
    magic = stream.readline()
    if magic != _MAGIC:
        raise ValueError("not a repro-octree file (bad magic line)")
    resolution = None
    depth = None
    declared_size = None
    while True:
        line = stream.readline()
        if not line:
            raise ValueError("unexpected end of file while reading the header")
        text = line.decode("ascii").strip()
        if text == "data":
            break
        field, _, value = text.partition(" ")
        if field == "res":
            resolution = float(value)
        elif field == "depth":
            depth = int(value)
        elif field == "size":
            declared_size = int(value)
        else:
            raise ValueError(f"unknown header field {field!r}")
    if resolution is None or depth is None or declared_size is None:
        raise ValueError("incomplete header: res, depth and size are all required")

    tree = OccupancyOcTree(resolution, tree_depth=depth)
    if declared_size == 0:
        return tree

    root, count = _read_node(stream)
    tree._root = root  # reconstructing internals is this module's job
    tree._num_nodes = count
    if count != declared_size:
        raise ValueError(
            f"node count mismatch: header declares {declared_size}, stream holds {count}"
        )
    if stream.read(1):
        raise ValueError("trailing bytes after the encoded tree")
    return tree


def _read_node(stream: BinaryIO):
    record = stream.read(_NODE_STRUCT.size)
    if len(record) != _NODE_STRUCT.size:
        raise ValueError("truncated node record")
    log_odds, mask = _NODE_STRUCT.unpack(record)
    node = OcTreeNode(log_odds)
    count = 1
    for index in range(8):
        if mask & (1 << index):
            child, child_count = _read_node(stream)
            node._children = node._children or [None] * 8
            node._children[index] = child
            count += child_count
    return node, count
