"""Multi-session occupancy-mapping service layer.

The paper's accelerator maps one scene for one caller; this package turns it
into a *service*: many named map sessions, each sharded over a pool of
:class:`~repro.core.accelerator.OMUAccelerator` workers, behind a batched
ingestion pipeline and a cached query engine.

* :mod:`repro.serving.types` -- request / response dataclasses
  (:class:`ScanRequest`, :class:`QueryResponse`, ...).
* :mod:`repro.serving.sharding` -- octree-key-prefix shard routing and the
  :class:`MapShardWorker` accelerator wrapper.
* :mod:`repro.serving.schedulers` -- pluggable ingestion ordering (FIFO,
  priority, earliest-deadline-first).
* :mod:`repro.serving.batching` -- the ingestion pipeline: admission queue,
  shared ray-casting front end, overlapping-ray de-duplication, per-shard
  dispatch.
* :mod:`repro.serving.cache` -- the generation-stamped LRU query cache with
  per-shard invalidation.
* :mod:`repro.serving.query_engine` -- cached point / batch / bounding-box /
  collision-raycast queries.
* :mod:`repro.serving.stats` -- per-session latency, throughput and cache
  counters, rendered in the :mod:`repro.analysis` table style.
* :mod:`repro.serving.session` -- :class:`MapSession`, one tenant's sharded
  map.
* :mod:`repro.serving.manager` -- :class:`MapSessionManager`, the service
  front door.
* :mod:`repro.serving.cli` -- the ``repro-serve`` demo driver.

Quickstart::

    from repro.serving import MapSessionManager, ScanRequest, SessionConfig

    manager = MapSessionManager(SessionConfig(num_shards=4, scheduler_policy="priority"))
    manager.ingest(ScanRequest.from_scan_node("warehouse", scan, max_range=15.0))
    if manager.query("warehouse", 1.0, 0.0, 0.5).occupied:
        ...
"""

from repro.serving.batching import IngestionPipeline
from repro.serving.cache import CacheStats, GenerationLRUCache
from repro.serving.manager import MapSessionManager
from repro.serving.query_engine import QueryEngine
from repro.serving.schedulers import (
    SCHEDULER_POLICIES,
    DeadlineScheduler,
    FifoScheduler,
    IngestScheduler,
    PriorityScheduler,
    make_scheduler,
)
from repro.serving.session import MapSession, SessionConfig
from repro.serving.sharding import MapShardWorker, ShardRouter
from repro.serving.stats import ServiceStats, SessionStats
from repro.serving.types import (
    BatchReport,
    BoxOccupancySummary,
    IngestReceipt,
    QueryResponse,
    RaycastResponse,
    ScanRequest,
)

__all__ = [
    "BatchReport",
    "BoxOccupancySummary",
    "CacheStats",
    "DeadlineScheduler",
    "FifoScheduler",
    "GenerationLRUCache",
    "IngestReceipt",
    "IngestScheduler",
    "IngestionPipeline",
    "MapSession",
    "MapSessionManager",
    "MapShardWorker",
    "PriorityScheduler",
    "QueryEngine",
    "QueryResponse",
    "RaycastResponse",
    "SCHEDULER_POLICIES",
    "ScanRequest",
    "ServiceStats",
    "SessionConfig",
    "SessionStats",
    "ShardRouter",
    "make_scheduler",
]
