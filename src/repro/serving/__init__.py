"""Multi-session occupancy-mapping service layer.

The paper's accelerator maps one scene for one caller; this package turns it
into a *service*: many named map sessions, each sharded over a pool of
:class:`~repro.core.accelerator.OMUAccelerator` workers, behind a batched
ingestion pipeline and a cached query engine.

* :mod:`repro.serving.types` -- request / response dataclasses
  (:class:`ScanRequest`, :class:`QueryResponse`, ...) plus the pickle-safe
  ``Shard*`` messages the execution backends exchange with shard workers.
* :mod:`repro.serving.sharding` -- octree-key-prefix shard routing and the
  :class:`MapShardWorker` accelerator wrapper.
* :mod:`repro.serving.backends` -- pluggable shard execution
  (:class:`InlineBackend`, :class:`ThreadPoolBackend`,
  :class:`ProcessPoolBackend`).
* :mod:`repro.serving.remote` -- the socket-transport backend
  (:class:`SocketBackend`): shard workers behind TCP endpoints
  (``repro-serve-worker``), with heartbeat liveness probes, periodic shard
  snapshots, and live failover onto standby or surviving workers.
* :mod:`repro.serving.schedulers` -- pluggable ingestion ordering (FIFO,
  priority, earliest-deadline-first).
* :mod:`repro.serving.batching` -- the ingestion pipeline: admission queue,
  shared ray-casting front end, overlapping-ray de-duplication, per-shard
  dispatch.
* :mod:`repro.serving.cache` -- the generation-stamped LRU query cache with
  per-shard invalidation, TTL-bounded negative entries for unknown space,
  and whole box-sweep result caching keyed by the shard generation vector.
* :mod:`repro.serving.fleet` -- the shared backend fleet:
  :class:`BackendPool` owns one fixed set of execution workers and hands
  each session a lease (:class:`SessionBackendView`), so hundreds of
  sessions share O(fleet size) OS resources instead of each owning workers.
* :mod:`repro.serving.query_engine` -- cached point / batch / bounding-box /
  collision-raycast queries.
* :mod:`repro.serving.stats` -- per-session latency, throughput and cache
  counters, rendered in the :mod:`repro.analysis` table style.
* :mod:`repro.serving.metrics` -- the queryable metrics pipeline: per-request
  records, fixed-bucket latency histograms (p50/p95/p99 without raw-sample
  sorting), the bounded windowed-rollup store behind ``GET /v1/metrics`` and
  ``repro-serve --metrics-json``, and the admission QoS policies (per-tenant
  token-bucket quotas, deadline-miss shedding).
* :mod:`repro.serving.session` -- :class:`MapSession`, one tenant's sharded
  map.
* :mod:`repro.serving.manager` -- :class:`MapSessionManager`, the service
  front door.
* :mod:`repro.serving.aio` -- :class:`AsyncMapService`, the asyncio
  admission front end: bounded per-session admission queues with
  backpressure, background flusher tasks driving ingestion off the event
  loop, and non-blocking query coroutines.
* :mod:`repro.serving.http` -- the network API: a stdlib-asyncio HTTP/1.1
  server over :class:`AsyncMapService` (REST routes, resumable chunked
  uploads, background jobs with polling) plus a small client.
* :mod:`repro.serving.cli` -- the ``repro-serve`` demo driver (``--async``
  runs the asyncio front end under a multi-client driver; ``--http`` serves
  the network API until SIGINT/SIGTERM).

Execution backends
------------------

Every session executes its shard work through a pluggable
:class:`~repro.serving.backends.ShardBackend`, selected by
``SessionConfig(backend=...)`` (or ``repro-serve --backend ...``):

* ``"inline"`` (default) -- workers run serially in the calling thread.
  Zero overhead and fully deterministic scheduling: pick it for tests,
  debugging, single-shard sessions, and latency-sensitive small batches
  where fan-out overhead would dominate.
* ``"thread"`` -- shard slices are applied concurrently on a thread pool.
  The pure-Python accelerator model is GIL-bound, so this buys little
  wall-clock speedup today; pick it to exercise concurrent fan-out without
  process isolation, or once the update kernels release the GIL.
* ``"process"`` -- one OS process per shard, each owning its shard's
  accelerator; flushes fan update batches out to all shards at once and
  exports gather in parallel.  Pick it for throughput: sustained multi-scan
  ingestion on multi-core hosts (it overtakes ``inline`` from ~4 shards on
  the default workload -- see ``python -m repro.analysis.service``).  Worker
  start-up and per-batch pickling make it a poor fit for tiny maps or
  one-scan sessions.
* ``"socket"`` -- one shard per TCP worker endpoint
  (``repro-serve-worker``), reachable across process or machine boundaries
  over a length-prefixed socket RPC.  The only backend that survives worker
  loss: heartbeat probes detect dead workers, periodic shard snapshots plus
  a replay tail bound the state at risk, and a dead shard re-homes onto a
  standby (or surviving) worker with a bounded stall instead of killing the
  session.  See :mod:`repro.serving.remote`.

All four produce leaf-for-leaf identical maps (a property-based test pins
this, including across a mid-ingest worker kill on the socket backend), and
the generation-stamped query cache stays correct across process boundaries
because every apply acknowledgement carries the worker's write generation.

Pipelined ingestion
-------------------

``SessionConfig(pipelined=True)`` (or ``repro-serve --pipeline``) turns on
double-buffered ingestion: while the backend applies batch N, the pipeline
already ray-casts and routes batch N+1, so the serial front end and the
shard apply overlap instead of alternating.  Two rules keep this
leaf-for-leaf faithful to the paper's sequential update semantics:

* **One in flight.**  A backend holds at most one dispatched batch (one
  :class:`~repro.serving.types.ApplyTicket`) at a time --
  :meth:`~repro.serving.backends.ShardBackend.apply_async` raises rather
  than deepen the pipeline.  Per-shard apply order therefore stays exactly
  the dispatch order, which is what the sequential-equivalence property
  rests on; generation stamps are adopted atomically only when the ticket is
  drained, never mid-apply.
* **Queries barrier.**  Every read path -- point/batch/bbox/raycast queries,
  cache validation, exports -- first settles in-flight work for the shards
  it touches (:meth:`~repro.serving.backends.ShardBackend.barrier`), so no
  reader can observe a half-applied flush, and a cache hit can never be
  validated against a stamp an already-dispatched flush is invalidating.

On the inline backend the "async" apply runs eagerly, so pipelined
ingestion degenerates to the serial reference; the process backend is where
the overlap buys wall-clock throughput (given spare cores).  Crash semantics
are unchanged: a worker that dies with a batch in flight surfaces as
:class:`ShardBackendError` on the next submit/flush/query and fail-stops the
backend.

Quickstart::

    from repro.serving import MapSessionManager, ScanRequest, SessionConfig

    manager = MapSessionManager(SessionConfig(num_shards=4, scheduler_policy="priority"))
    manager.ingest(ScanRequest.from_scan_node("warehouse", scan, max_range=15.0))
    if manager.query("warehouse", 1.0, 0.0, 0.5).occupied:
        ...
    manager.shutdown()  # releases worker processes for pool backends
"""

from repro.serving.aio import AdmissionQueueFull, AsyncMapService, submit_interleaved_stream
from repro.serving.backends import (
    BACKEND_NAMES,
    ApplyTicket,
    InlineBackend,
    ProcessPoolBackend,
    ShardBackend,
    ShardBackendError,
    ThreadPoolBackend,
    make_backend,
)
from repro.serving.batching import IngestionPipeline
from repro.serving.fleet import BackendPool, SessionBackendView
from repro.serving.http import HttpMapServer, MapServiceClient
from repro.serving.cache import BboxResultCache, CacheStats, GenerationLRUCache
from repro.serving.manager import MapSessionManager
from repro.serving.metrics import (
    DeadlineShed,
    DeadlineShedPolicy,
    LatencyHistogram,
    MetricsStore,
    OperationRollup,
    RequestRecord,
    TenantQuota,
    TenantQuotaExceeded,
    TenantQuotaRegistry,
    write_metrics_json,
)
from repro.serving.query_engine import QueryEngine
from repro.serving.remote import (
    LocalWorkerHandle,
    ShardWorkerServer,
    SocketBackend,
    WorkerRegistry,
    spawn_local_worker,
    spawn_worker_process,
)
from repro.serving.schedulers import (
    SCHEDULER_POLICIES,
    DeadlineScheduler,
    FifoScheduler,
    IngestScheduler,
    PriorityScheduler,
    make_scheduler,
)
from repro.serving.session import MapSession, SessionConfig
from repro.serving.sharding import MapShardWorker, ShardRouter
from repro.serving.stats import ServiceStats, SessionStats
from repro.serving.types import (
    BatchReport,
    BboxChunk,
    BoxOccupancySummary,
    IngestReceipt,
    QueryResponse,
    RaycastResponse,
    ScanRequest,
    ShardApplyResult,
    ShardExportResult,
    ShardQueryRequest,
    ShardQueryResult,
    ShardSnapshot,
    ShardUpdateBatch,
)

__all__ = [
    "AdmissionQueueFull",
    "ApplyTicket",
    "AsyncMapService",
    "BACKEND_NAMES",
    "BackendPool",
    "BatchReport",
    "BboxChunk",
    "BboxResultCache",
    "BoxOccupancySummary",
    "CacheStats",
    "DeadlineScheduler",
    "DeadlineShed",
    "DeadlineShedPolicy",
    "FifoScheduler",
    "GenerationLRUCache",
    "HttpMapServer",
    "IngestReceipt",
    "IngestScheduler",
    "IngestionPipeline",
    "InlineBackend",
    "LatencyHistogram",
    "LocalWorkerHandle",
    "MapSession",
    "MapSessionManager",
    "MapServiceClient",
    "MapShardWorker",
    "MetricsStore",
    "OperationRollup",
    "PriorityScheduler",
    "ProcessPoolBackend",
    "QueryEngine",
    "RequestRecord",
    "QueryResponse",
    "RaycastResponse",
    "SCHEDULER_POLICIES",
    "ScanRequest",
    "ServiceStats",
    "SessionBackendView",
    "SessionConfig",
    "SessionStats",
    "ShardApplyResult",
    "ShardBackend",
    "ShardBackendError",
    "ShardExportResult",
    "ShardQueryRequest",
    "ShardQueryResult",
    "ShardRouter",
    "ShardSnapshot",
    "ShardUpdateBatch",
    "ShardWorkerServer",
    "SocketBackend",
    "TenantQuota",
    "TenantQuotaExceeded",
    "TenantQuotaRegistry",
    "ThreadPoolBackend",
    "WorkerRegistry",
    "make_backend",
    "make_scheduler",
    "spawn_local_worker",
    "spawn_worker_process",
    "submit_interleaved_stream",
    "write_metrics_json",
]
