"""Asyncio admission front end: non-blocking submit/flush/query coroutines.

The synchronous :class:`~repro.serving.manager.MapSessionManager` front door
has one structural flaw for a network service: admission *is* ingestion.  A
``submit`` that triggers a flush holds the caller for the whole ray-casting
front end plus the shard apply, so one slow client (or one slow shard) stalls
every other client of the process.  :class:`AsyncMapService` decouples the
two:

* **Admission is queueing.**  :meth:`AsyncMapService.submit` stamps the
  request id and drops the request into a *bounded* per-session
  :class:`asyncio.Queue` (depth ``SessionConfig.admission_queue_limit``).
  A full queue exerts backpressure -- the submitter either awaits space
  (the wait is metered into
  :attr:`~repro.serving.stats.SessionStats.admission_wait_seconds`) or, with
  ``wait=False``, gets an immediate :class:`AdmissionQueueFull` and a bumped
  :attr:`~repro.serving.stats.SessionStats.queue_rejects` counter.  Nothing
  here touches the session, so admission latency is queue latency.

* **Ingestion is background work.**  ``SessionConfig.flusher_concurrency``
  flusher tasks per session (default 1) pull admitted requests, coalesce up
  to ``batch_size`` of them, and drive the session's (optionally pipelined)
  :class:`~repro.serving.batching.IngestionPipeline` inside
  ``loop.run_in_executor`` -- the event loop never blocks on ray casting or
  shard applies, and sessions ingest concurrently with each other (the GIL
  permitting; the process backend's shard applies genuinely overlap).  With
  K > 1 one session overlaps up to K flush cycles: while cycle N's ingest
  holds the session lock on the executor, cycle N+1 is already popped and
  coalesced, so the lock is handed over with zero idle gap.  The bound is
  per session, so a heavy session can occupy at most K executor threads and
  cannot starve its neighbours on a shared fleet.

* **Reads share the executor.**  :meth:`query` / :meth:`query_batch` /
  :meth:`raycast` / :meth:`query_bbox` run the session's query engine on the
  executor under the same per-session lock the flusher holds, so the
  non-thread-safe session internals (backend pipes, LRU cache) are only ever
  touched by one executor thread at a time while different sessions still
  proceed in parallel.

Equivalence: with the default single flusher each session preserves submit
order (one FIFO queue, one consumer), so async multi-client ingestion of a
request sequence produces a map equivalent to sequential insertion in
dispatch order -- the same property the synchronous serving layer
guarantees, verified by ``tests/serving/test_aio.py`` across the execution
backends.  With ``flusher_concurrency > 1`` batches from the same session
may interleave (per-batch order still holds), which occupancy mapping
tolerates: log-odds updates commute, so the final map is insensitive to
batch ordering.

Worker-process caveat: with ``backend="process"`` and the default ``fork``
start method, create the sessions *before* the first await that touches the
executor (e.g. via :meth:`AsyncMapService.get_or_create_session` or an eager
``manager.get_or_create_session``) so shard workers are forked while no
executor threads are running; or pick ``mp_start_method="spawn"``.
Session creation deliberately happens on the event-loop thread for this
reason.

Usage::

    async with AsyncMapService(default_config=SessionConfig(num_shards=4)) as service:
        receipt = await service.submit(request)          # returns immediately
        await service.flush(request.session_id)          # drain this session
        response = await service.query(request.session_id, 1.0, 0.0, 0.5)
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, List, Optional, Sequence

from repro.serving.backends import ShardBackendError
from repro.serving.manager import MapSessionManager
from repro.serving.metrics import (
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_REJECTED,
    OUTCOME_SHED,
    DeadlineShed,
    DeadlineShedPolicy,
    MetricsStore,
    TenantQuotaExceeded,
    TenantQuotaRegistry,
)
from repro.serving.session import MapSession, SessionConfig
from repro.serving.stats import ServiceStats
from repro.serving.types import (
    BatchReport,
    BboxChunk,
    BoxOccupancySummary,
    IngestReceipt,
    QueryResponse,
    RaycastResponse,
    ScanRequest,
)

__all__ = ["AdmissionQueueFull", "AsyncMapService", "submit_interleaved_stream"]


def _describe_failure(failure: BaseException) -> str:
    """Render a stored ingestion failure for a surfaced RuntimeError.

    Backend errors know which shard and worker died
    (:meth:`ShardBackendError.describe`); everything else falls back to
    ``repr``.
    """
    if isinstance(failure, ShardBackendError):
        return failure.describe()
    return repr(failure)


class AdmissionQueueFull(RuntimeError):
    """A ``wait=False`` submit found the session's admission queue full."""

    def __init__(self, session_id: str, limit: int) -> None:
        super().__init__(
            f"admission queue of session {session_id!r} is full "
            f"({limit} requests); retry later or submit with wait=True"
        )
        self.session_id = session_id
        self.limit = limit


@dataclass
class _SessionEntry:
    """Per-session async state: the admission queue and its flusher tasks."""

    session: MapSession
    queue: "asyncio.Queue[ScanRequest]"
    #: ``config.flusher_concurrency`` consumer tasks sharing the queue.
    flushers: List["asyncio.Task"]
    #: serialises executor access to the (non-thread-safe) session between
    #: the flushers and the query coroutines.
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    #: flusher tasks currently inside a flush cycle (pop -> ingest done);
    #: its high-water mark lands in ``stats.flusher_overlap_high_water``.
    active_flushes: int = 0
    #: first ingestion failure; the entry is fail-stopped once set.
    failure: Optional[BaseException] = None
    #: deadline-miss shedding: EMA of per-request ingest cost, fed by the
    #: flusher, consulted at admission (see repro.serving.metrics.qos).
    shed_policy: DeadlineShedPolicy = field(default_factory=DeadlineShedPolicy)


class AsyncMapService:
    """Non-blocking front end over a :class:`MapSessionManager`.

    Args:
        manager: service instance to front; a fresh one is created when
            omitted.  The manager's *read-only* surface (stats, session
            lookup, rendered tables) stays usable at any time, but
            synchronous writes (``manager.submit``/``flush``/``ingest``) or
            queries against a session must not run concurrently with async
            activity on that same session: they would bypass the per-session
            lock that keeps the non-thread-safe session internals
            single-threaded.  Mixing is safe sequentially -- e.g. sync
            ingestion before the service starts, or after :meth:`close`.
        default_config: forwarded to the created manager (ignored when
            ``manager`` is given).
        queue_limit: admission queue depth override; defaults to each
            session's ``config.admission_queue_limit``.
        max_workers: executor threads shared by flushers and queries
            (default: the stdlib heuristic, ``min(32, cpu_count + 4)``).
            Sessions needing concurrent ingestion beyond this run fine but
            time-share the pool.

    Must be constructed (and used) inside a running event loop; flusher
    tasks are spawned lazily per session.  Always :meth:`close` (or use
    ``async with``) -- that cancels the flushers and releases the manager's
    execution backends, leaving no orphan tasks or worker processes.
    """

    def __init__(
        self,
        manager: Optional[MapSessionManager] = None,
        *,
        default_config: Optional[SessionConfig] = None,
        queue_limit: Optional[int] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        if queue_limit is not None and queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.manager = manager if manager is not None else MapSessionManager(default_config)
        self.queue_limit = queue_limit
        #: one token bucket per tenant, shared by every session billing to
        #: it; consulted (and lazily created) at submit admission.
        self.quotas = TenantQuotaRegistry()
        self._entries: Dict[str, _SessionEntry] = {}
        # Sized up front (the stdlib default heuristic) rather than from the
        # session count, which is unknowable at construction time; the pool
        # only *creates* threads on demand, so process-backend sessions made
        # before the first executor use still fork thread-free.
        if max_workers is None:
            max_workers = min(32, (os.cpu_count() or 1) + 4)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="aio-serve"
        )
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def __aenter__(self) -> "AsyncMapService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self, drain: bool = True) -> None:
        """Stop the flushers and release the manager's execution backends.

        With ``drain=True`` (default) every admission queue is emptied
        first, so all accepted requests reach their maps; ``drain=False``
        abandons queued requests (the graceful-cancellation path).  Either
        way every flusher task is awaited to completion and every backend
        worker is reaped -- no orphan tasks, threads or processes survive.
        Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        try:
            if drain:
                for entry in list(self._entries.values()):
                    if entry.failure is None:
                        await entry.queue.join()
                        # Settle a pipelined session's in-flight tail so its
                        # last batch is applied *and accounted* before the
                        # backend goes away.
                        pipeline = entry.session.pipeline
                        if (
                            entry.failure is None
                            and (pipeline.pending() > 0 or pipeline.has_inflight)
                        ):
                            await self._run_locked(entry, entry.session.flush_all)
            for entry in self._entries.values():
                for flusher in entry.flushers:
                    flusher.cancel()
            if self._entries:
                await asyncio.gather(
                    *(
                        flusher
                        for entry in self._entries.values()
                        for flusher in entry.flushers
                    ),
                    return_exceptions=True,
                )
            # Empty the dead queues: each get wakes any submitter still
            # parked in queue.put(), whose submit then observes the closed
            # flag and raises instead of blocking forever.
            for entry in self._entries.values():
                while True:
                    try:
                        entry.queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
        finally:
            # All flushers are done, so no work is pending; this returns
            # promptly and guarantees the worker threads are gone.
            self._executor.shutdown(wait=True)
            # Releases pool-backend worker processes/threads.  Runs on the
            # loop thread; by now nothing else can touch the sessions.
            self.manager.shutdown()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has begun."""
        return self._closed

    # ------------------------------------------------------------------
    # Session plumbing
    # ------------------------------------------------------------------
    def get_or_create_session(
        self, session_id: str, config: Optional[SessionConfig] = None
    ) -> MapSession:
        """Create (or look up) a session and its admission machinery.

        Runs synchronously on the event-loop thread on purpose: process
        backends fork their shard workers at session construction, and
        forking from the loop thread before executor threads pile up is the
        safe default (see the module docstring).
        """
        self._ensure_open()
        # Validate through the manager even when the async entry already
        # exists: a conflicting config must raise, not silently hand back a
        # session with different settings.
        self.manager.get_or_create_session(session_id, config)
        return self._entry(session_id, config=config, create=True).session

    def _entry(
        self,
        session_id: str,
        config: Optional[SessionConfig] = None,
        create: bool = False,
    ) -> _SessionEntry:
        entry = self._entries.get(session_id)
        if entry is not None:
            if entry.failure is not None:
                raise RuntimeError(
                    f"session {session_id!r} fail-stopped after an ingestion "
                    f"error: {_describe_failure(entry.failure)}"
                ) from entry.failure
            return entry
        if create:
            session = self.manager.get_or_create_session(session_id, config)
        else:
            session = self.manager.get_session(session_id)
        limit = (
            self.queue_limit
            if self.queue_limit is not None
            else session.config.admission_queue_limit
        )
        entry = _SessionEntry(
            session=session,
            queue=asyncio.Queue(maxsize=limit),
            flushers=[],
        )
        loop = asyncio.get_running_loop()
        entry.flushers = [
            loop.create_task(
                self._flusher_loop(entry), name=f"aio-flusher-{session_id}-{index}"
            )
            for index in range(session.config.flusher_concurrency)
        ]
        self._entries[session_id] = entry
        return entry

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("AsyncMapService is closed")

    # ------------------------------------------------------------------
    # Metrics plumbing
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> MetricsStore:
        """The fronted manager's metrics store (one sink per service)."""
        return self.manager.metrics

    def _timer(self):
        """Operation start on (store clock, perf clock); None when disabled.

        The instrumentation hooks pay for two clock reads per request only
        while the store is enabled -- the disabled half of the
        ``metrics_overhead`` benchmark skips even that.
        """
        store = self.manager.metrics
        if not store.enabled:
            return None
        return (store.clock(), time.perf_counter())

    def _record(
        self,
        entry: _SessionEntry,
        operation: str,
        outcome: str,
        timer,
        *,
        num_bytes: int = 0,
        batch_size: int = 1,
        queue_depth: int = 0,
        request_id: int = -1,
    ) -> None:
        """Emit one request record for an instrumented coroutine."""
        if timer is None:
            return
        started_s, started_pc = timer
        self.manager.metrics.observe(
            tenant=entry.session.tenant,
            session_id=entry.session.session_id,
            operation=operation,
            outcome=outcome,
            started_s=started_s,
            duration_s=time.perf_counter() - started_pc,
            num_bytes=num_bytes,
            batch_size=batch_size,
            queue_depth=queue_depth,
            request_id=request_id,
        )

    async def _instrumented(self, entry: _SessionEntry, operation: str, fn, *args):
        """Run session work under the lock, recording outcome and latency."""
        timer = self._timer()
        try:
            result = await self._run_locked(entry, fn, *args)
        except Exception:
            self._record(entry, operation, OUTCOME_ERROR, timer)
            raise
        self._record(entry, operation, OUTCOME_OK, timer)
        return result

    async def _run_locked(self, entry: _SessionEntry, fn, *args):
        """Run session work on the executor under the session's lock."""
        loop = asyncio.get_running_loop()
        async with entry.lock:
            return await loop.run_in_executor(self._executor, fn, *args)

    # ------------------------------------------------------------------
    # Background flusher
    # ------------------------------------------------------------------
    async def _flusher_loop(self, entry: _SessionEntry) -> None:
        """Drain the admission queue into the session, batch by batch.

        ``flusher_concurrency`` instances of this loop share one queue; the
        session lock inside :meth:`_run_locked` keeps the actual ingest
        serial, so extra instances buy pop/coalesce overlap, not parallel
        session mutation.
        """
        batch_size = entry.session.config.batch_size
        stats = entry.session.stats
        while True:
            request = await entry.queue.get()
            batch = [request]
            while len(batch) < batch_size and not entry.queue.empty():
                batch.append(entry.queue.get_nowait())
            entry.active_flushes += 1
            stats.flusher_overlap_high_water = max(
                stats.flusher_overlap_high_water, entry.active_flushes
            )
            ingest_started = time.perf_counter()
            try:
                await self._run_locked(entry, self._ingest_batch, entry.session, batch)
            except asyncio.CancelledError:
                entry.active_flushes -= 1
                for _ in batch:
                    entry.queue.task_done()
                raise
            except Exception as error:  # noqa: BLE001 - fail-stop the session
                entry.active_flushes -= 1
                entry.failure = error
                for _ in batch:
                    entry.queue.task_done()
                # Keep consuming (and discarding) so nothing can deadlock on
                # this queue: a submitter parked in queue.put() is woken by
                # the drain and must not leave an orphaned item behind that
                # would hang a later queue.join().  The requests are lost,
                # but so is the session (the backend fail-stopped) --
                # submit/flush surface the stored failure from here on.
                while True:
                    await entry.queue.get()
                    entry.queue.task_done()
            else:
                entry.active_flushes -= 1
                stats.flusher_cycles += 1
                # Feed the shed policy's per-request cost estimate so the
                # admission-time feasibility check tracks observed capacity.
                entry.shed_policy.observe_batch(
                    time.perf_counter() - ingest_started, len(batch)
                )
                for _ in batch:
                    entry.queue.task_done()

    @staticmethod
    def _ingest_batch(session: MapSession, batch: Sequence[ScanRequest]) -> None:
        """Executor-side ingestion: admit the batch and drive the pipeline.

        Dispatches until the scheduler is empty but deliberately does *not*
        drain a pipelined session's in-flight tail: leaving the last batch
        in flight keeps the double-buffering window open across flusher
        wake-ups, so the next batch's ray-casting front end still overlaps
        it.  :meth:`AsyncMapService.flush` (and queries, via the backend's
        read barrier) settle the tail when someone actually needs it.
        """
        for request in batch:
            session.submit(request)
        while session.pipeline.pending() > 0:
            session.flush()

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    async def submit(
        self,
        request: ScanRequest,
        *,
        wait: bool = True,
        auto_create: bool = True,
    ) -> IngestReceipt:
        """Admit one scan request without blocking on ingestion.

        Returns as soon as the request sits in the session's bounded
        admission queue.  A full queue backpressures: with ``wait=True``
        (default) the coroutine awaits a slot -- and the wait is recorded in
        the session's admission-wait counters -- while ``wait=False`` raises
        :class:`AdmissionQueueFull` immediately and bumps the reject
        counter.  The returned receipt's ``queue_depth`` is the queue depth
        observed right after admission.

        Two QoS gates run *before* queueing, so refused work never costs
        backend time:

        * a session whose config sets ``quota_points_per_s`` charges
          ``len(request.cloud)`` points against its tenant's token bucket;
          an exhausted bucket raises
          :class:`~repro.serving.metrics.qos.TenantQuotaExceeded` (counted
          as ``quota_rejects`` / metrics outcome ``rejected``);
        * a request with a finite ``deadline_s`` that already cannot be met
          -- given the queue depth and the observed per-request ingest cost
          -- is dropped with
          :class:`~repro.serving.metrics.qos.DeadlineShed` (counted as
          ``shed_requests`` / metrics outcome ``shed``).
        """
        self._ensure_open()
        entry = self._entry(request.session_id, create=auto_create)
        stats = entry.session.stats
        config = entry.session.config
        timer = self._timer()
        num_points = len(request.cloud)
        if config.quota_points_per_s > 0.0:
            try:
                self.quotas.charge(
                    entry.session.tenant,
                    float(num_points),
                    config.quota_points_per_s,
                    burst_s=config.quota_burst_s,
                )
            except TenantQuotaExceeded:
                stats.quota_rejects += 1
                self._record(
                    entry,
                    "submit",
                    OUTCOME_REJECTED,
                    timer,
                    num_bytes=num_points,
                    queue_depth=entry.queue.qsize(),
                )
                raise
        try:
            entry.shed_policy.check(
                request.session_id, request.deadline_s, entry.queue.qsize()
            )
        except DeadlineShed:
            stats.shed_requests += 1
            self._record(
                entry,
                "submit",
                OUTCOME_SHED,
                timer,
                num_bytes=num_points,
                queue_depth=entry.queue.qsize(),
            )
            raise
        stamped = self.manager.stamp_request(request)
        try:
            entry.queue.put_nowait(stamped)
        except asyncio.QueueFull:
            if not wait:
                stats.queue_rejects += 1
                self._record(
                    entry,
                    "submit",
                    OUTCOME_REJECTED,
                    timer,
                    num_bytes=num_points,
                    queue_depth=entry.queue.qsize(),
                    request_id=stamped.request_id,
                )
                raise AdmissionQueueFull(
                    request.session_id, entry.queue.maxsize
                ) from None
            started = time.perf_counter()
            await entry.queue.put(stamped)
            stats.admission_waits += 1
            stats.admission_wait_seconds += time.perf_counter() - started
        if self._closed:
            # The service closed while we were parked on the full queue; the
            # flushers are gone, so the request just enqueued will never be
            # ingested -- fail the submit rather than hand out a receipt for
            # a dropped request.
            raise RuntimeError(
                "AsyncMapService closed while the submit was waiting for "
                f"admission-queue space in session {request.session_id!r}"
            )
        if entry.failure is not None:
            # The session fail-stopped while we were parked on the full
            # queue; the request was (or will be) discarded by the failure
            # drain -- surface that instead of returning a receipt for a
            # request that will never be ingested.
            raise RuntimeError(
                f"session {request.session_id!r} fail-stopped after an "
                f"ingestion error: {_describe_failure(entry.failure)}"
            ) from entry.failure
        stats.async_submits += 1
        depth = entry.queue.qsize()
        stats.admission_queue_high_water = max(stats.admission_queue_high_water, depth)
        self._record(
            entry,
            "submit",
            OUTCOME_OK,
            timer,
            num_bytes=num_points,
            queue_depth=depth,
            request_id=stamped.request_id,
        )
        return IngestReceipt(
            request_id=stamped.request_id,
            session_id=stamped.session_id,
            num_points=len(stamped.cloud),
            queue_depth=depth,
        )

    async def flush(self, session_id: str) -> List[BatchReport]:
        """Wait until the session's admitted requests are in the map.

        Drains the admission queue (the flusher does the work), then runs a
        final pipeline ``flush_all`` for anything admitted through the
        synchronous path, and returns the batch reports produced since the
        call began.
        """
        self._ensure_open()
        entry = self._entry(session_id)
        timer = self._timer()
        already = len(entry.session.pipeline.reports)
        try:
            await entry.queue.join()
            # Surface a flusher failure that happened during the drain.
            self._entry(session_id)
            pipeline = entry.session.pipeline
            if pipeline.pending() > 0 or pipeline.has_inflight:
                await self._run_locked(entry, entry.session.flush_all)
        except Exception:
            self._record(entry, "flush", OUTCOME_ERROR, timer)
            raise
        reports = list(entry.session.pipeline.reports[already:])
        self._record(entry, "flush", OUTCOME_OK, timer, batch_size=len(reports))
        return reports

    async def flush_all(self) -> List[BatchReport]:
        """Drain every async session's admission queue; gather the reports."""
        reports: List[BatchReport] = []
        for session_id in sorted(self._entries):
            reports.extend(await self.flush(session_id))
        return reports

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    async def query(self, session_id: str, x: float, y: float, z: float) -> QueryResponse:
        """Point occupancy query served off the event loop."""
        self._ensure_open()
        entry = self._entry(session_id)
        return await self._instrumented(entry, "query", entry.session.query, x, y, z)

    async def query_batch(
        self, session_id: str, points: Sequence[Sequence[float]]
    ) -> Sequence[QueryResponse]:
        """Batch point query served off the event loop."""
        self._ensure_open()
        entry = self._entry(session_id)
        return await self._instrumented(
            entry, "query_batch", entry.session.query_batch, points
        )

    async def query_bbox(
        self, session_id: str, minimum: Sequence[float], maximum: Sequence[float]
    ) -> BoxOccupancySummary:
        """Bounding-box sweep served off the event loop."""
        self._ensure_open()
        entry = self._entry(session_id)
        return await self._instrumented(
            entry, "query_bbox", entry.session.query_bbox, minimum, maximum
        )

    async def raycast(
        self,
        session_id: str,
        origin: Sequence[float],
        direction: Sequence[float],
        max_range: float,
    ) -> RaycastResponse:
        """Collision raycast served off the event loop."""
        self._ensure_open()
        entry = self._entry(session_id)
        return await self._instrumented(
            entry, "raycast", entry.session.raycast, origin, direction, max_range
        )

    async def stream_bbox(
        self,
        session_id: str,
        minimum: Sequence[float],
        maximum: Sequence[float],
        *,
        chunk_voxels: int = 1024,
        include_voxels: bool = True,
    ) -> AsyncIterator[BboxChunk]:
        """Stream a bounding-box sweep as bounded-size classified chunks.

        The async-generator variant of :meth:`query_bbox`: each
        :class:`~repro.serving.types.BboxChunk` is computed on the executor
        under the session lock, but the lock is *released between chunks*, so
        a long sweep interleaves with ingestion instead of stalling it (and a
        network front end can relay each chunk as one chunked-transfer frame
        without materialising the whole box).  Consequence: unlike
        :meth:`query_bbox`, a streamed sweep is not a point-in-time snapshot
        -- chunks observe any flushes that landed between them, though each
        chunk is individually consistent (the backend read barriers hold).

        Validation (inverted box, the ``max_box_voxels`` guardrail) raises
        before the first chunk is yielded.
        """
        self._ensure_open()
        entry = self._entry(session_id)
        iterator = entry.session.query_engine.iter_bbox(
            minimum, maximum, chunk_voxels=chunk_voxels, include_voxels=include_voxels
        )
        sentinel = object()
        timer = self._timer()
        chunks = 0
        try:
            while True:
                self._ensure_open()
                chunk = await self._run_locked(entry, next, iterator, sentinel)
                if chunk is sentinel:
                    # One record per completed stream, chunks as batch size.
                    self._record(
                        entry, "stream_bbox", OUTCOME_OK, timer, batch_size=chunks
                    )
                    return
                chunks += 1
                yield chunk
        except (GeneratorExit, asyncio.CancelledError):
            # The consumer walked away; not the service's error to report.
            raise
        except Exception:
            self._record(entry, "stream_bbox", OUTCOME_ERROR, timer, batch_size=chunks)
            raise

    async def export_octree(self, session_id: str):
        """Stitch the session's shards into one software octree, off the loop.

        Runs :meth:`MapSession.export_octree` on the executor under the
        session lock; callers that need every *admitted* request in the
        export should :meth:`flush` first (the export itself only barriers
        on work already dispatched to the backend).
        """
        self._ensure_open()
        entry = self._entry(session_id)
        return await self._instrumented(entry, "export", entry.session.export_octree)

    async def close_session(self, session_id: str, drain: bool = True) -> None:
        """Retire one session: stop its flusher and release its backend.

        With ``drain=True`` (default) the admission queue is flushed into
        the map first; ``drain=False`` abandons queued requests.  The
        session is removed from the manager (its stats stop aggregating) and
        its execution backend is closed -- no orphan task, thread or worker
        process survives.  Unknown sessions raise ``KeyError``.
        """
        self._ensure_open()
        if session_id not in self._entries:
            # Known to the manager but never touched asynchronously: retire
            # the synchronous way.  (Raises KeyError when fully unknown.)
            session = self.manager.close_session(session_id)
            session.close()
            return
        entry = self._entries[session_id]
        if drain and entry.failure is None:
            try:
                await self.flush(session_id)
            except RuntimeError:
                # Fail-stopped while draining: nothing more can reach the
                # map; proceed to teardown.
                pass
        for flusher in entry.flushers:
            flusher.cancel()
        await asyncio.gather(*entry.flushers, return_exceptions=True)
        if entry.failure is None:
            # A submitter still parked on a full queue must surface an error
            # when its put lands in the retired queue, not receive a receipt
            # for a request that can never be ingested.
            entry.failure = RuntimeError(f"session {session_id!r} was closed")
        while True:  # wake any submitter parked on a full queue
            try:
                entry.queue.get_nowait()
            except asyncio.QueueEmpty:
                break
        del self._entries[session_id]
        session = self.manager.close_session(session_id)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._executor, session.close)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def service_stats(self) -> ServiceStats:
        """The fronted manager's aggregated per-session counters."""
        return self.manager.service_stats

    def session_ids(self) -> Sequence[str]:
        """Names of the sessions with live async admission machinery."""
        return tuple(sorted(self._entries))

    def admission_queue_depth(self, session_id: str) -> int:
        """Requests currently waiting in a session's admission queue."""
        return self._entries[session_id].queue.qsize()

    def pending_requests(self) -> int:
        """Requests admitted (queued or scheduled) but not yet in a map."""
        queued = sum(entry.queue.qsize() for entry in self._entries.values())
        return queued + self.manager.pending_requests()

    def render_stats(self) -> str:
        """The aggregated counter tables, admission table included."""
        return self.manager.render_stats()


async def submit_interleaved_stream(
    service: AsyncMapService,
    events,
    on_receipt=None,
) -> int:
    """Replay a multi-client scan stream as concurrent submitter coroutines.

    The canonical async driver shared by ``repro-serve --async`` and the
    :mod:`repro.analysis.service` front-end sweep: ``events`` is an iterable
    of :class:`~repro.datasets.streams.StreamEvent`-shaped records (anything
    with ``client_id`` / ``session_id`` / ``scan`` / ``max_range_m`` /
    ``priority``); each client becomes one coroutine submitting its own
    events in order and yielding between submits, so clients genuinely
    interleave with each other and with the flusher tasks.  ``on_receipt``
    (if given) is called after every admission as ``on_receipt(event,
    receipt, admit_seconds)`` -- the hook the latency-metering sweep uses.
    Returns the number of requests submitted; does not flush.
    """
    per_client: Dict[str, List] = {}
    for event in events:
        per_client.setdefault(event.client_id, []).append(event)

    async def run_client(client_events) -> None:
        for event in client_events:
            request = ScanRequest.from_scan_node(
                event.session_id,
                event.scan,
                max_range=event.max_range_m,
                priority=event.priority,
                client_id=event.client_id,
            )
            started = time.perf_counter()
            receipt = await service.submit(request)
            if on_receipt is not None:
                on_receipt(event, receipt, time.perf_counter() - started)
            await asyncio.sleep(0)

    await asyncio.gather(*(run_client(ev) for ev in per_client.values()))
    return sum(len(ev) for ev in per_client.values())
