"""Pluggable shard execution backends: inline, thread pool, process pool.

PR 2 sharded each map session over :class:`~repro.serving.sharding.
MapShardWorker` accelerators, but every worker still executed serially in the
caller's thread -- sharding bought modelled-hardware parallelism and zero
wall-clock speedup.  This module makes the execution substrate pluggable:

* :class:`InlineBackend` -- the reference.  Workers live in the calling
  thread and apply their slices one after another.  Zero overhead, zero
  parallelism; every other backend must be leaf-for-leaf identical to it.
* :class:`ThreadPoolBackend` -- workers live in the calling process but each
  shard's slice is applied on a thread pool.  The GIL serialises the pure-
  Python accelerator model, so this backend mainly exercises the concurrent
  fan-out/gather machinery (and would win if the update path grew C/numpy
  kernels that release the GIL).
* :class:`ProcessPoolBackend` -- one OS process per shard, each owning its
  shard's :class:`~repro.core.accelerator.OMUAccelerator`.  The session's
  flush fans update batches out to all shard processes and gathers their
  acknowledgements, so ingestion finally scales with cores.

Every backend speaks the same pickle-safe ``Shard*`` message vocabulary from
:mod:`repro.serving.types` and routes it through the same
:meth:`MapShardWorker.apply_message` handlers, which is what keeps the three
execution paths byte-identical (the serving equivalence property is tested
over all of them).

Cache correctness across process boundaries: the generation-stamped query
cache needs the *parent* to know each shard's write generation.  Shard state
only ever changes inside an ``apply`` round-trip (blocking, or the
``apply_async``/``drain`` pair), and every
:class:`~repro.serving.types.ShardApplyResult` carries the worker's
generation after the apply; the backend adopts that value as the parent-side
stamp when the round-trip settles.  Queries therefore validate against
exactly the generation the owning worker reported last, no matter which side
of a process boundary it lives on.

A worker process that dies (crash, OOM kill, ``terminate()``) surfaces as a
:class:`ShardBackendError` on the next interaction instead of a hang, and
:meth:`ShardBackend.close` always reaps every child, so no orphan processes
outlive the session.

Pipelined (double-buffered) dispatch: besides the blocking
:meth:`ShardBackend.apply_shard_batches`, every backend offers a
non-blocking :meth:`ShardBackend.apply_async` /
:meth:`ShardBackend.drain` pair.  ``apply_async`` hands each shard its slice
and immediately returns an :class:`~repro.serving.types.ApplyTicket` while
the workers apply in the background; ``drain`` redeems the ticket for the
acknowledgements and only then adopts the workers' write generations into
the parent-side cache bookkeeping.  At most one ticket is ever in flight
(the one-in-flight invariant); a second ``apply_async`` before the drain
raises.  Every read path -- ``query_key``, ``generation_of``,
``export_all`` -- first :meth:`ShardBackend.barrier`\\ s on the in-flight
ticket when it touches the shards being read, so no reader can observe a
half-applied generation (and, for the process backend, no query can cut in
front of a pending apply acknowledgement on the same pipe).  The inline
backend applies eagerly inside ``apply_async``, so pipelined ingestion on it
degenerates to exactly the serial reference semantics.
"""

from __future__ import annotations

import multiprocessing
import traceback
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.core.config import OMUConfig
from repro.octomap.octree import OccupancyOcTree
from repro.serving.sharding import MapShardWorker
from repro.serving.types import (
    ApplyTicket,
    ShardApplyResult,
    ShardExportResult,
    ShardQueryRequest,
    ShardQueryResult,
    ShardUpdateBatch,
)

__all__ = [
    "BACKEND_NAMES",
    "ApplyTicket",
    "InlineBackend",
    "ProcessPoolBackend",
    "ShardBackend",
    "ShardBackendError",
    "ThreadPoolBackend",
    "make_backend",
]


class ShardBackendError(RuntimeError):
    """A shard execution backend failed (worker crash, use after close).

    Carries enough structure for callers to tell *which* shard died and
    where it lived, instead of parsing the message:

    Attributes:
        shard_id: index of the failed shard, or ``None`` when the failure is
            not attributable to one shard (close/fail-stop guards, dispatch
            protocol violations).
        worker_id: identity of the worker that served the shard (e.g.
            ``"process:12345"`` or ``"127.0.0.1:41234"``), or ``None``.
        remote_traceback: the worker-side traceback string when the failure
            was an exception reported across the process/socket boundary.
    """

    def __init__(
        self,
        message: str,
        *,
        shard_id: Optional[int] = None,
        worker_id: Optional[str] = None,
        remote_traceback: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.worker_id = worker_id
        self.remote_traceback = remote_traceback

    def describe(self) -> str:
        """The message annotated with the shard/worker identity when known."""
        message = str(self)
        details = []
        if self.shard_id is not None:
            details.append(f"shard {self.shard_id}")
        if self.worker_id is not None:
            details.append(f"worker {self.worker_id}")
        if details:
            return f"{message} [{', '.join(details)}]"
        return message


class ShardBackend(ABC):
    """Executes shard work for one session; the session's only way to touch shards.

    The write path calls :meth:`apply_shard_batches` once per flushed
    ingestion batch with one :class:`ShardUpdateBatch` per shard slice -- or,
    pipelined, the non-blocking :meth:`apply_async` / :meth:`drain` pair with
    at most one :class:`~repro.serving.types.ApplyTicket` in flight.  The
    read path calls :meth:`query_key`; export stitching calls
    :meth:`export_all`; both barrier on in-flight tickets for the shards they
    touch.  Subclasses implement the ``_``-prefixed hooks; the base class
    owns the parent-side accounting (generations, per-shard update counts,
    ticket bookkeeping) so every backend reports identically.
    """

    #: registry name, e.g. ``"process"``; used by config / CLI / stats.
    name: str = "abstract"

    def __init__(self, config: OMUConfig, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.config = config
        self.num_shards = num_shards
        self.closed = False
        #: set to the failure description once a shard apply failed; the
        #: backend then refuses further use (fail-stop) because a partially
        #: applied flush leaves the sharded map inconsistent.
        self.failed: Optional[str] = None
        self._generations = [0] * num_shards
        self._updates_applied = [0] * num_shards
        self._next_ticket_id = 0
        #: the one ticket allowed in flight, paired with the subclass handle
        #: returned by :meth:`_apply_begin` (double-buffering depth of one).
        self._inflight: Optional[Tuple[ApplyTicket, object]] = None
        #: acknowledgements of the ticket settled by a barrier (or an
        #: all-empty flush) before its owner drained it: ``(ticket_id,
        #: results)``.  One slot suffices -- the one-in-flight invariant
        #: means at most one settled ticket can await its owner; a new
        #: dispatch overwrites the slot, abandoning acks nobody came for.
        self._parked: Optional[Tuple[int, List[ShardApplyResult]]] = None

    # ------------------------------------------------------------------
    # Public API (what sessions call)
    # ------------------------------------------------------------------
    def apply_shard_batches(
        self, batches: Sequence[ShardUpdateBatch]
    ) -> List[ShardApplyResult]:
        """Fan one flush's per-shard slices out to the workers and gather.

        The blocking reference path: ``apply_async`` immediately followed by
        ``drain``.  Empty slices are filtered out before dispatch; results
        come back in ``batches`` order.  Parent-side accounting (generation
        stamps, per-shard counters) is updated from the acknowledgements.

        An apply failure on any shard is fail-stop: some shards may already
        have mutated their map region while others have not, so the backend
        marks itself failed and every later interaction raises
        :class:`ShardBackendError` instead of silently serving a map that no
        longer matches the sequential reference.
        """
        ticket = self.apply_async(batches)
        return self.drain(ticket)

    def apply_async(self, batches: Sequence[ShardUpdateBatch]) -> ApplyTicket:
        """Dispatch one flush's slices without waiting for the workers.

        Returns an :class:`~repro.serving.types.ApplyTicket` the caller later
        redeems with :meth:`drain`.  Generation stamps and per-shard counters
        are *not* touched here -- they are adopted atomically at settle time,
        so a reader can never see a half-applied flush.  At most one ticket
        may be in flight; dispatching a second one raises instead of silently
        deepening the pipeline (per-shard apply order must stay the dispatch
        order for the sequential-equivalence property to hold).
        """
        self._ensure_open()
        # Health check before the empty-slice filter: a flush whose slices
        # are all empty must still surface a dead worker rather than report
        # success on a session that has lost a shard.
        self._health_check()
        if self._inflight is not None:
            raise ShardBackendError(
                f"{self.name} backend already has ticket "
                f"{self._inflight[0].ticket_id} in flight; drain it before "
                "dispatching another batch (one-in-flight invariant)"
            )
        live = [batch for batch in batches if batch.entries]
        ticket = ApplyTicket(
            ticket_id=self._next_ticket_id,
            shard_ids=tuple(batch.shard_id for batch in live),
        )
        self._next_ticket_id += 1
        if not live:
            # Nothing to apply: settle immediately so drain finds it.
            self._parked = (ticket.ticket_id, [])
            return ticket
        try:
            handle = self._apply_begin(live)
        except ShardBackendError as error:
            self.failed = str(error)
            raise
        except Exception as error:
            self.failed = f"{type(error).__name__}: {error}"
            raise ShardBackendError(
                f"shard dispatch failed on the {self.name} backend: {self.failed}"
            ) from error
        self._inflight = (ticket, handle)
        return ticket

    def drain(self, ticket: Optional[ApplyTicket] = None) -> List[ShardApplyResult]:
        """Redeem a ticket for its per-shard acknowledgements (blocking).

        With ``ticket=None`` the in-flight ticket (if any) is drained and
        ``[]`` is returned when nothing is in flight.  A ticket may be
        drained exactly once, even if a query barrier settled its results in
        the meantime (the results are held for the owner).  A worker that
        died with the batch in flight surfaces here as
        :class:`ShardBackendError` and fail-stops the backend.
        """
        self._ensure_open()
        if ticket is not None and self._parked is not None and self._parked[0] == ticket.ticket_id:
            results = self._parked[1]
            self._parked = None
            return results
        if self._inflight is None:
            if ticket is None:
                # Acknowledgements parked by a barrier stay reserved for
                # their ticket's owner (e.g. a pipelined ingestion pipeline
                # that has not finalized the batch yet); a ticketless drain
                # must not steal them.  An abandoned slot is overwritten by
                # the next settle instead of leaking.
                return []
            raise ShardBackendError(
                f"ticket {ticket.ticket_id} is not in flight on the "
                f"{self.name} backend (already drained, or never issued here)"
            )
        inflight_ticket = self._inflight[0]
        if ticket is not None and ticket.ticket_id != inflight_ticket.ticket_id:
            raise ShardBackendError(
                f"ticket {ticket.ticket_id} is not in flight on the "
                f"{self.name} backend (ticket {inflight_ticket.ticket_id} is)"
            )
        self._settle()
        results = self._parked[1]
        self._parked = None
        return results

    def barrier(self, shard_ids: Optional[Sequence[int]] = None) -> None:
        """Settle in-flight work touching the given shards (all when None).

        The read-side half of the one-in-flight invariant: every read path
        calls this before trusting generation stamps (or, for the process
        backend, before sharing a pipe with a pending apply), so no query,
        export or cache validation can observe a half-applied flush.  The
        settled acknowledgements stay parked for the ticket owner's later
        :meth:`drain`.  A no-op when nothing relevant is in flight.
        """
        self._ensure_open()
        if self._inflight is None:
            return
        ticket = self._inflight[0]
        if shard_ids is None or set(shard_ids).intersection(ticket.shard_ids):
            self._settle()

    @property
    def in_flight(self) -> Optional[ApplyTicket]:
        """The ticket currently in flight, if any (observability/tests)."""
        return self._inflight[0] if self._inflight is not None else None

    def _settle(self) -> None:
        """Collect the in-flight acknowledgements and adopt them atomically."""
        ticket, handle = self._inflight
        self._inflight = None
        try:
            results = self._apply_collect(handle)
        except ShardBackendError as error:
            self.failed = str(error)
            raise
        except Exception as error:
            self.failed = f"{type(error).__name__}: {error}"
            raise ShardBackendError(
                f"shard apply failed on the {self.name} backend: {self.failed}"
            ) from error
        for result in results:
            self._generations[result.shard_id] = result.generation
            self._updates_applied[result.shard_id] += result.updates_applied
        self._parked = (ticket.ticket_id, results)

    def query_key(self, request: ShardQueryRequest) -> ShardQueryResult:
        """Serve one voxel-key lookup from the owning shard worker.

        Barriers first when the owning shard has a batch in flight, so the
        answer always reflects every previously dispatched flush.
        """
        self._ensure_open()
        self.barrier((request.shard_id,))
        return self._query(request)

    def export_all(self) -> List[OccupancyOcTree]:
        """Gather every shard's exported subtree (concurrently where possible).

        Barriers on all in-flight work first: an export must stitch a map
        that includes every dispatched flush.
        """
        self._ensure_open()
        self.barrier()
        exports = self._export()
        return [export.tree for export in sorted(exports, key=lambda e: e.shard_id)]

    def generation_of(self, shard_id: int) -> int:
        """Parent-side write-generation stamp of one shard (cache validity).

        Guarded like every other interaction: a cache *hit* never does a
        worker round-trip, so this is the only gate that keeps cached reads
        from silently outliving a closed or fail-stopped backend.  Barriers
        on in-flight work touching the shard, so cache validation never
        accepts an entry that an already-dispatched flush is invalidating.
        """
        self._ensure_open()
        self.barrier((shard_id,))
        return self._generations[shard_id]

    @property
    def workers(self) -> List[MapShardWorker]:
        """In-process shard workers; backends without them raise.

        Raises AttributeError (not :class:`ShardBackendError`) so
        ``hasattr``/``getattr`` probing keeps its usual semantics -- but with
        a message that explains where the workers actually live.
        """
        raise AttributeError(
            f"{self.name} backend workers are not in-process; "
            "use the Shard* message API instead"
        )

    def shard_load(self) -> Tuple[int, ...]:
        """Updates applied per shard (parent-side accounting)."""
        return tuple(self._updates_applied)

    def failover_stats(self) -> Dict[str, float]:
        """Liveness/recovery counters of the backend (all zero by default).

        Backends without detect-and-recover machinery (everything in this
        module) report zeros; :class:`~repro.serving.remote.SocketBackend`
        overrides this with its snapshot/failover accounting.  The ingestion
        pipeline copies the dict into :class:`~repro.serving.stats.
        SessionStats` after every finalized batch, the same way it adopts
        ``shard_load``.
        """
        return {
            "snapshots_taken": 0,
            "failovers": 0,
            "replayed_batches": 0,
            "replayed_updates": 0,
            "recovery_wall_seconds": 0.0,
            "heartbeat_probes": 0,
            "heartbeat_failures": 0,
        }

    def close(self) -> None:
        """Release workers (processes, threads).  Idempotent.

        Safe to call with a batch in flight: the in-flight ticket is
        abandoned (its results are never adopted) and every child is still
        reaped -- a crashing session must not leak worker processes.
        """
        if not self.closed:
            self._inflight = None
            self._parked = None
            self._close()
            self.closed = True

    def __enter__(self) -> "ShardBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _apply_begin(self, batches: Sequence[ShardUpdateBatch]) -> object:
        """Start applying non-empty shard slices; return an opaque handle.

        A backend with real concurrency dispatches here and returns without
        waiting (futures, pipe sends); the inline reference applies eagerly
        and returns the finished results as the handle.
        """

    @abstractmethod
    def _apply_collect(self, handle: object) -> List[ShardApplyResult]:
        """Wait for a ``_apply_begin`` handle; return acks in dispatch order."""

    @abstractmethod
    def _query(self, request: ShardQueryRequest) -> ShardQueryResult:
        """Serve one lookup on the owning worker."""

    @abstractmethod
    def _export(self) -> List[ShardExportResult]:
        """Export every shard's subtree and accounting snapshot."""

    def _close(self) -> None:
        """Release backend resources (default: nothing to release)."""

    def _health_check(self) -> None:
        """Hook: raise if a worker is known-dead (no-op for in-process workers)."""

    def _ensure_open(self) -> None:
        if self.closed:
            raise ShardBackendError(f"{self.name} backend is closed")
        if self.failed is not None:
            raise ShardBackendError(
                f"{self.name} backend failed earlier and is fail-stopped: {self.failed}"
            )


class _LocalWorkersMixin:
    """Shared plumbing of the backends whose workers live in-process."""

    def _make_workers(self) -> List[MapShardWorker]:
        return [
            MapShardWorker(shard_id, self.config) for shard_id in range(self.num_shards)
        ]

    @property
    def workers(self) -> List[MapShardWorker]:
        """The in-process shard workers (tests and tools may inspect them)."""
        return self._workers

    def generation_of(self, shard_id: int) -> int:
        """Live worker generation: in-process workers can be read directly,
        which also keeps out-of-band writes (tests poking a worker) visible
        to the cache.  Still guarded, so cached reads cannot outlive a
        closed or fail-stopped backend, and still barriered, so a thread
        still applying an in-flight slice cannot leak a half-bumped
        generation to cache validation."""
        self._ensure_open()
        self.barrier((shard_id,))
        return self._workers[shard_id].generation

    def _query(self, request: ShardQueryRequest) -> ShardQueryResult:
        return self._workers[request.shard_id].query_message(request)

    def _export(self) -> List[ShardExportResult]:
        return [worker.export_message() for worker in self._workers]


class InlineBackend(_LocalWorkersMixin, ShardBackend):
    """The reference backend: serial execution in the calling thread.

    ``apply_async`` applies eagerly (there is nothing to overlap with), so
    pipelined ingestion on this backend degenerates to exactly the serial
    reference semantics -- same apply order, same generations, zero
    concurrency.
    """

    name = "inline"

    def __init__(self, config: OMUConfig, num_shards: int) -> None:
        super().__init__(config, num_shards)
        self._workers = self._make_workers()

    def _apply_begin(self, batches: Sequence[ShardUpdateBatch]) -> object:
        return [self._workers[batch.shard_id].apply_message(batch) for batch in batches]

    def _apply_collect(self, handle: object) -> List[ShardApplyResult]:
        return handle


class ThreadPoolBackend(_LocalWorkersMixin, ShardBackend):
    """In-process workers fed concurrently from a thread pool.

    Each shard slice of a flush is applied on its own pool thread; slices
    never share a worker, so no locking is needed.  Queries and exports run
    on the calling thread (they are read-only between flushes).
    """

    name = "thread"

    def __init__(self, config: OMUConfig, num_shards: int) -> None:
        super().__init__(config, num_shards)
        self._workers = self._make_workers()
        self._executor = ThreadPoolExecutor(
            max_workers=num_shards, thread_name_prefix="shard"
        )

    def _apply_begin(self, batches: Sequence[ShardUpdateBatch]) -> object:
        return [
            self._executor.submit(self._workers[batch.shard_id].apply_message, batch)
            for batch in batches
        ]

    def _apply_collect(self, handle: object) -> List[ShardApplyResult]:
        return [future.result() for future in handle]

    def _close(self) -> None:
        # wait=True also settles an abandoned in-flight slice: the pool
        # threads finish before their workers are released.
        self._executor.shutdown(wait=True)


# ---------------------------------------------------------------------------
# Process pool
# ---------------------------------------------------------------------------
def _shard_worker_main(connection, shard_id: int, config: OMUConfig) -> None:
    """Entry point of one shard worker process.

    Owns this shard's accelerator and serves ``(verb, payload)`` commands
    from the parent until told to stop.  Every reply is ``("ok", payload)``
    or ``("error", message)``; an unexpected exception is reported rather
    than killing the process, so a poisoned request cannot silently lose a
    shard.
    """
    worker = MapShardWorker(shard_id, config)
    while True:
        try:
            verb, payload = connection.recv()
        except (EOFError, OSError):  # parent died: nothing left to serve
            break
        if verb == "stop":
            connection.send(("ok", None))
            break
        try:
            if verb == "apply":
                reply = worker.apply_message(payload)
            elif verb == "query":
                reply = worker.query_message(payload)
            elif verb == "export":
                reply = worker.export_message()
            else:
                raise ValueError(f"unknown shard command {verb!r}")
            connection.send(("ok", reply))
        except Exception as error:  # noqa: BLE001 - report, don't die
            connection.send(
                ("error", (f"{type(error).__name__}: {error}", traceback.format_exc()))
            )
    connection.close()


class ProcessPoolBackend(ShardBackend):
    """One OS process per shard; the only backend with true CPU parallelism.

    The parent keeps a duplex pipe per shard.  A flush *sends* every shard's
    slice before *receiving* any acknowledgement, so all shard processes
    compute concurrently while the parent waits; export gathers the same way.
    Worker death is detected on the next interaction (a broken pipe plus the
    child's exit code) and raised as :class:`ShardBackendError`.

    Args:
        config: accelerator configuration replicated into every worker.
        num_shards: worker process count.
        start_method: ``multiprocessing`` start method; defaults to ``fork``
            where available (fastest startup, works from unguarded scripts
            and the REPL) and the platform default elsewhere.  Caveat of the
            default: forking a process with *running* extra threads can
            deadlock the child on a lock another thread held at fork time --
            a parent that mixes live worker threads with this backend should
            pass ``"forkserver"`` or ``"spawn"`` explicitly (both require
            the importable-``__main__`` discipline of the multiprocessing
            docs).
    """

    name = "process"

    def __init__(
        self,
        config: OMUConfig,
        num_shards: int,
        start_method: Optional[str] = None,
    ) -> None:
        super().__init__(config, num_shards)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        context = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self._connections = []
        self.processes = []
        try:
            for shard_id in range(num_shards):
                parent_end, child_end = context.Pipe(duplex=True)
                process = context.Process(
                    target=_shard_worker_main,
                    args=(child_end, shard_id, config),
                    name=f"shard-{shard_id}",
                    daemon=True,
                )
                process.start()
                child_end.close()  # the child keeps its own handle
                self._connections.append(parent_end)
                self.processes.append(process)
        except Exception:
            self._close()
            raise

    # ------------------------------------------------------------------
    # Round-trip plumbing
    # ------------------------------------------------------------------
    def _send(self, shard_id: int, verb: str, payload) -> None:
        try:
            self._connections[shard_id].send((verb, payload))
        except (BrokenPipeError, OSError) as error:
            raise self._worker_lost(shard_id, error) from error

    def _recv(self, shard_id: int):
        try:
            status, payload = self._connections[shard_id].recv()
        except (EOFError, OSError) as error:
            raise self._worker_lost(shard_id, error) from error
        if status != "ok":
            message, remote_traceback = payload
            raise ShardBackendError(
                f"shard {shard_id} worker failed: {message}",
                shard_id=shard_id,
                worker_id=self._worker_id(shard_id),
                remote_traceback=remote_traceback,
            )
        return payload

    def _worker_id(self, shard_id: int) -> str:
        return f"process:{self.processes[shard_id].pid}"

    def _worker_lost(self, shard_id: int, error: Exception) -> ShardBackendError:
        process = self.processes[shard_id]
        process.join(timeout=1.0)
        return ShardBackendError(
            f"shard {shard_id} worker process died "
            f"(exit code {process.exitcode}): {error}",
            shard_id=shard_id,
            worker_id=self._worker_id(shard_id),
        )

    def _health_check(self) -> None:
        """Surface a dead worker *now*, even if the current interaction
        would not touch it: a session missing a shard is broken for every
        future query of that shard's region, so no interaction may silently
        succeed.  ``apply_shard_batches`` runs this hook before the
        empty-slice filter, so even an all-empty flush reports the loss."""
        for shard_id, process in enumerate(self.processes):
            if not process.is_alive():
                raise ShardBackendError(
                    f"shard {shard_id} worker process died "
                    f"(exit code {process.exitcode})",
                    shard_id=shard_id,
                    worker_id=self._worker_id(shard_id),
                )

    def _gather(self, shard_ids: Sequence[int]) -> List:
        """Receive one reply per shard, draining *every* pipe even when one
        shard reports an error -- an unread acknowledgement left behind would
        desynchronise that shard's request/reply stream for all later
        round-trips.  The first error is re-raised after the drain."""
        results: List = []
        first_error: Optional[ShardBackendError] = None
        for shard_id in shard_ids:
            try:
                results.append(self._recv(shard_id))
            except ShardBackendError as error:
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return results

    def _apply_begin(self, batches: Sequence[ShardUpdateBatch]) -> object:
        # Send everything without receiving: this is the fan-out that lets
        # all shard processes chew on their slices at the same time -- and,
        # pipelined, lets the parent ray-cast the next batch meanwhile.
        # (The public wrapper already ran _health_check.)
        for batch in batches:
            self._send(batch.shard_id, "apply", batch)
        return [batch.shard_id for batch in batches]

    def _apply_collect(self, handle: object) -> List[ShardApplyResult]:
        return self._gather(handle)

    def _query(self, request: ShardQueryRequest) -> ShardQueryResult:
        # The public query_key already barriered on the owning shard, so the
        # pipe cannot hold a pending apply acknowledgement that this
        # request/reply round-trip would desynchronise.
        self._health_check()
        self._send(request.shard_id, "query", request)
        return self._recv(request.shard_id)

    def _export(self) -> List[ShardExportResult]:
        self._health_check()
        for shard_id in range(self.num_shards):
            self._send(shard_id, "export", None)
        return self._gather(list(range(self.num_shards)))

    def _close(self) -> None:
        for shard_id, connection in enumerate(self._connections):
            try:
                connection.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for shard_id, process in enumerate(self.processes):
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=2.0)
        for connection in self._connections:
            try:
                connection.close()
            except OSError:  # pragma: no cover
                pass


BACKENDS: Dict[str, Type[ShardBackend]] = {
    InlineBackend.name: InlineBackend,
    ThreadPoolBackend.name: ThreadPoolBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
}

#: The socket-transport backend lives in :mod:`repro.serving.remote` and is
#: registered by name only: importing it here would pull the whole remote
#: stack (and its worker server) into every session, so ``make_backend``
#: imports it lazily on first use.
SOCKET_BACKEND_NAME = "socket"

#: Names accepted by :class:`~repro.serving.session.SessionConfig` / the CLI.
BACKEND_NAMES: Tuple[str, ...] = tuple(sorted((*BACKENDS, SOCKET_BACKEND_NAME)))


def make_backend(
    name: str,
    config: OMUConfig,
    num_shards: int,
    start_method: Optional[str] = None,
    workers: Sequence[str] = (),
    standby_workers: int = 1,
    snapshot_every_batches: int = 8,
    heartbeat_interval_s: float = 1.0,
    heartbeat_timeout_s: float = 5.0,
    fleet=None,
    session_id: str = "",
) -> ShardBackend:
    """Instantiate a shard execution backend by registry name.

    ``start_method`` applies to the process backend only; ``workers`` (and
    the snapshot/heartbeat knobs) to the socket backend only -- an empty
    ``workers`` tuple makes the socket backend spawn local in-process
    workers, so tests and demos need no manual orchestration.

    ``fleet`` flips the ownership model: instead of constructing a backend
    this session owns, the session *leases* execution from the given
    :class:`~repro.serving.fleet.BackendPool` and gets back a
    :class:`~repro.serving.fleet.SessionBackendView` (which must match
    ``name`` -- mixing a thread fleet into a process-backend session would
    silently change the execution substrate).
    """
    if fleet is not None:
        if fleet.backend != name:
            raise ValueError(
                f"session wants the {name!r} backend but the shared fleet "
                f"runs {fleet.backend!r} workers"
            )
        return fleet.lease(session_id, config, num_shards)
    if name == SOCKET_BACKEND_NAME:
        from repro.serving.remote import SocketBackend

        return SocketBackend(
            config,
            num_shards,
            endpoints=workers,
            standby_workers=standby_workers,
            snapshot_every_batches=snapshot_every_batches,
            heartbeat_interval_s=heartbeat_interval_s,
            heartbeat_timeout_s=heartbeat_timeout_s,
        )
    try:
        backend_type = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown shard backend {name!r}; choose from {', '.join(BACKEND_NAMES)}"
        ) from None
    if backend_type is ProcessPoolBackend:
        return ProcessPoolBackend(config, num_shards, start_method=start_method)
    return backend_type(config, num_shards)
