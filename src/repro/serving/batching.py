"""Batched ingestion: coalesce scan requests into per-shard update streams.

The pipeline sits between request admission and the shard workers:

1. admitted :class:`~repro.serving.types.ScanRequest`\\ s wait in the
   pluggable scheduler (FIFO / priority / deadline);
2. a *flush* pops up to ``batch_size`` requests in scheduler order,
   ray-casts each scan once in the shared front end and de-duplicates
   overlapping rays within the scan (occupied beats free, each voxel at most
   one update per scan -- the exact OctoMap ``insertPointCloud`` policy);
3. the surviving updates are concatenated in dispatch order, partitioned
   into per-shard streams, and fanned out to every shard at once through the
   session's :class:`~repro.serving.backends.ShardBackend` (serially for the
   inline reference backend, concurrently for the pool backends).

The front end is the batched numpy pipeline of
:mod:`repro.octomap.raycast_vec` by default: all rays of *every scan in the
flush* step through one batched DDA as arrays (a scan-id lane keeps
de-duplication per scan) and de-duplicate with one ``np.unique`` per scan.
``scalar_frontend=True`` (``SessionConfig.scalar_frontend`` /
``repro-serve --scalar-frontend``) routes flushes through the per-ray scalar
reference instead; both paths emit byte-identical per-shard update streams,
which the front-end equivalence property suite pins.

De-duplication is deliberately *per scan*, not per batch: the clamped
log-odds update saturates, so collapsing two same-voxel updates from
different scans into one would change the map whenever a value sits at a
clamp bound.  Keeping each scan's single update per voxel, in scan order,
makes batched + sharded ingestion bit-equivalent to sequential insertion of
the same request sequence (the property the serving tests verify).

Pipelined (double-buffered) mode: with ``pipelined=True`` the pipeline keeps
one dispatched batch *in flight* on the backend while it ray-casts the next
one, so the serial front end and the shard apply overlap instead of
alternating.  Internally every flush is split into three phases -- *prepare*
(pop + ray-cast + partition), *dispatch*
(:meth:`~repro.serving.backends.ShardBackend.apply_async`), and *finalize*
(:meth:`~repro.serving.backends.ShardBackend.drain` + report + accounting).
Blocking mode runs the three phases back to back; pipelined mode prepares
batch N+1 *before* finalizing batch N, which is exactly the overlap window.
Each :meth:`IngestionPipeline.flush` still returns one completed
:class:`~repro.serving.types.BatchReport` (the previously in-flight batch's),
so callers that loop ``flush()`` until ``None`` -- including the session
manager's round-robin -- drain pipelined sessions without changes.  The
first pipelined flush primes the pipe by dispatching one batch and
preparing the next, so it may consume up to ``2 * batch_size`` requests.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.scheduler import VoxelUpdateRequest
from repro.octomap.counters import OperationCounters
from repro.octomap.raycast_vec import compute_batch_update_arrays, unpack_key_array
from repro.octomap.scan_insertion import compute_update_keys_for_converter
from repro.serving.backends import ShardBackend
from repro.serving.schedulers import IngestScheduler
from repro.serving.sharding import ShardRouter
from repro.serving.stats import SessionStats
from repro.serving.types import (
    ApplyTicket,
    BatchReport,
    IngestReceipt,
    ScanRequest,
    ShardUpdateBatch,
)

__all__ = ["IngestionPipeline"]


@dataclass
class _PreparedBatch:
    """Front-end output of one batch: everything known before the apply."""

    request_ids: List[int]
    scans: int
    points: int
    rays: int
    visits: int
    voxel_updates: int
    shard_updates: Tuple[int, ...]
    batches: List[ShardUpdateBatch]
    frontend_seconds: float
    #: True when the front end ran while a previous batch was still in
    #: flight on the workers -- the overlap the pipelined mode exists for.
    overlapped: bool
    #: requests already past their deadline when popped for this batch.
    deadline_misses: int


@dataclass
class _InFlightBatch:
    """A dispatched batch awaiting its drain (at most one exists)."""

    prepared: _PreparedBatch
    ticket: ApplyTicket
    batch_id: int
    dispatch_seconds: float


class IngestionPipeline:
    """Admission queue + shared ray-casting front end + shard dispatcher."""

    def __init__(
        self,
        session_id: str,
        router: ShardRouter,
        backend: ShardBackend,
        scheduler: IngestScheduler,
        stats: SessionStats,
        batch_size: int = 8,
        pipelined: bool = False,
        metrics=None,
        tenant: Optional[str] = None,
        scalar_frontend: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if backend.num_shards != router.num_shards:
            raise ValueError(
                f"router expects {router.num_shards} shards but the backend "
                f"executes {backend.num_shards}"
            )
        self.session_id = session_id
        self.router = router
        self.backend = backend
        self.scheduler = scheduler
        self.stats = stats
        self.batch_size = batch_size
        self.pipelined = pipelined
        #: optional :class:`~repro.serving.metrics.MetricsStore`; every
        #: finalized batch emits one ``batch_apply`` record into it.
        self.metrics = metrics
        self.tenant = tenant if tenant is not None else session_id
        #: True routes every flush through the scalar reference front end
        #: (:func:`compute_update_keys_for_converter`); False (the default)
        #: uses the batched numpy front end of :mod:`repro.octomap.raycast_vec`.
        self.scalar_frontend = scalar_frontend
        # The key converter is derived from the router once per session, not
        # once per flush; the stats counter makes a regression back to
        # per-flush derivation visible.
        self.converter = router.converter
        stats.frontend_converter_builds += 1
        self.batches_flushed = 0
        self.reports: List[BatchReport] = []
        self._inflight: Optional[_InFlightBatch] = None

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, request: ScanRequest) -> IngestReceipt:
        """Admit one scan request into the scheduler."""
        self.scheduler.push(request)
        depth = len(self.scheduler)
        self.stats.queue_high_water = max(self.stats.queue_high_water, depth)
        return IngestReceipt(
            request_id=request.request_id,
            session_id=self.session_id,
            num_points=len(request.cloud),
            queue_depth=depth,
        )

    def pending(self) -> int:
        """Requests admitted but not yet dispatched (excludes in-flight)."""
        return len(self.scheduler)

    def in_flight_requests(self) -> int:
        """Requests dispatched to the workers but not yet acknowledged."""
        return len(self._inflight.prepared.request_ids) if self._inflight else 0

    @property
    def has_inflight(self) -> bool:
        """True when a dispatched batch still awaits its drain (pipelined).

        Callers that drive the pipeline incrementally (the asyncio flusher)
        use this to decide whether a final :meth:`flush_all` is needed to
        drain the tail before the session can be considered quiescent.
        """
        return self._inflight is not None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def flush(self, max_requests: Optional[int] = None) -> Optional[BatchReport]:
        """Dispatch one batch (up to ``batch_size`` requests); None if idle.

        Blocking mode returns the report of the batch just dispatched.
        Pipelined mode returns the report of the *previously* in-flight
        batch (finalized after the new batch's front end overlapped its
        apply) and leaves the new batch in flight; once the admission queue
        is empty, one final ``flush()`` drains the tail.  Either way a
        ``None`` return means no progress was possible.
        """
        budget = self.batch_size if max_requests is None else max_requests
        if not self.pipelined:
            if budget < 1 or not self.scheduler:
                return None
            return self._finalize(self._dispatch(self._prepare(budget)))
        if budget < 1 or not self.scheduler:
            return self._finalize_tail()
        if self._inflight is None:
            # Prime the pipe: dispatch the first batch without waiting.
            self._inflight = self._dispatch(self._prepare(budget))
            if not self.scheduler:
                return self._finalize_tail()
        # Steady state: front-end of batch N+1 runs while batch N applies.
        prepared = self._prepare(budget)
        inflight, self._inflight = self._inflight, None
        report = self._finalize(inflight)
        self._inflight = self._dispatch(prepared)
        return report

    def flush_all(self) -> List[BatchReport]:
        """Dispatch batches until the admission queue and the pipe are empty."""
        reports: List[BatchReport] = []
        while self.scheduler:
            report = self.flush()
            if report is None:
                break
            reports.append(report)
        tail = self.flush()  # pipelined mode: drain the final in-flight batch
        if tail is not None:
            reports.append(tail)
        return reports

    # ------------------------------------------------------------------
    # Flush phases
    # ------------------------------------------------------------------
    def _prepare(self, budget: int) -> _PreparedBatch:
        """Pop up to ``budget`` requests and run the ray-casting front end."""
        # Overlap means apply work was *actually* in flight on the backend
        # while this front end ran -- ask the backend, not our own dispatch
        # record: a query barrier between flushes settles the apply early,
        # and crediting front-end time as overlapped after that would
        # inflate the overlap ratio the stats exist to report.
        overlapped = self.backend.in_flight is not None
        started = time.perf_counter()
        requests: List[ScanRequest] = []
        request_ids: List[int] = []
        scans = points = rays = visits = 0
        converter = self.converter
        dda_counters = OperationCounters()
        deadline_misses = 0
        while self.scheduler and len(request_ids) < budget:
            request = self.scheduler.pop()
            # Missed-deadline accounting: a finite deadline (time.monotonic
            # clock) that has passed by the time the scheduler hands the
            # request over counts as a miss, whatever the policy -- the
            # deadline scheduler minimises this figure, the others expose it.
            if request.deadline_s != math.inf and request.deadline_s < time.monotonic():
                deadline_misses += 1
            request_ids.append(request.request_id)
            requests.append(request)
            scans += 1
            points += len(request.cloud)
            rays += len(request.cloud)

        if self.scalar_frontend:
            stream: List[VoxelUpdateRequest] = []
            for request in requests:
                free_keys, occupied_keys = compute_update_keys_for_converter(
                    converter,
                    request.cloud,
                    request.origin,
                    max_range=request.max_range,
                    counters=dda_counters,
                )
                # Pre-dedup visits: every DDA step is one free-voxel visit,
                # and each surviving endpoint voxel is one occupied visit.
                visits += len(occupied_keys)
                # The per-scan segment mirrors the accelerator's own issue
                # order: free voxels first, occupied voxels last, both in
                # sorted key order (occupied keys were already removed from
                # the free set).
                stream.extend(
                    VoxelUpdateRequest(key, occupied=False) for key in sorted(free_keys)
                )
                stream.extend(
                    VoxelUpdateRequest(key, occupied=True) for key in sorted(occupied_keys)
                )
        else:
            # All popped scans ride one batched DDA: the loop overhead of the
            # traversal is paid once per flush, not once per scan.
            scan_arrays = compute_batch_update_arrays(
                converter,
                [(request.cloud.points, request.origin, request.max_range) for request in requests],
                counters=dda_counters,
            )
            segments: List[np.ndarray] = []
            segment_flags: List[np.ndarray] = []
            for scan in scan_arrays:
                visits += int(scan.occupied_packed.size)
                # Packed codes sort exactly like OcTreeKeys, and np.unique
                # already sorted both halves, so this segment is the same
                # free-then-occupied sorted order the scalar branch emits.
                segments.append(np.concatenate((scan.free_packed, scan.occupied_packed)))
                flags = np.zeros(segments[-1].size, dtype=bool)
                flags[scan.free_packed.size :] = True
                segment_flags.append(flags)
        visits += dda_counters.ray_steps

        if self.scalar_frontend:
            per_shard = self.router.partition(stream)
            batches = [
                ShardUpdateBatch.from_updates(shard_id, shard_stream)
                for shard_id, shard_stream in enumerate(per_shard)
            ]
            voxel_updates = len(stream)
            shard_updates = tuple(len(shard_stream) for shard_stream in per_shard)
        else:
            if segments:
                keys = unpack_key_array(np.concatenate(segments))
                flags = np.concatenate(segment_flags)
            else:
                keys = np.empty((0, 3), dtype=np.int64)
                flags = np.empty(0, dtype=bool)
            per_shard_arrays = self.router.partition_key_arrays(keys, flags)
            batches = [
                ShardUpdateBatch.from_key_arrays(shard_id, shard_keys, shard_flags)
                for shard_id, (shard_keys, shard_flags) in enumerate(per_shard_arrays)
            ]
            voxel_updates = int(keys.shape[0])
            shard_updates = tuple(
                int(shard_keys.shape[0]) for shard_keys, _ in per_shard_arrays
            )
        return _PreparedBatch(
            request_ids=request_ids,
            scans=scans,
            points=points,
            rays=rays,
            visits=visits,
            voxel_updates=voxel_updates,
            shard_updates=shard_updates,
            batches=batches,
            frontend_seconds=time.perf_counter() - started,
            overlapped=overlapped,
            deadline_misses=deadline_misses,
        )

    def _dispatch(self, prepared: _PreparedBatch) -> _InFlightBatch:
        """Hand a prepared batch to the backend without waiting for acks."""
        started = time.perf_counter()
        ticket = self.backend.apply_async(prepared.batches)
        inflight = _InFlightBatch(
            prepared=prepared,
            ticket=ticket,
            batch_id=self.batches_flushed,
            dispatch_seconds=time.perf_counter() - started,
        )
        self.batches_flushed += 1
        return inflight

    def _finalize(self, inflight: _InFlightBatch) -> BatchReport:
        """Drain a dispatched batch, build its report, account the stats."""
        wait_started = time.perf_counter()
        results = self.backend.drain(inflight.ticket)
        drain_wait = time.perf_counter() - wait_started
        shard_cycles = [result.critical_path_cycles for result in results]
        prepared = inflight.prepared
        report = BatchReport(
            session_id=self.session_id,
            batch_id=inflight.batch_id,
            request_ids=tuple(prepared.request_ids),
            scans=prepared.scans,
            rays_cast=prepared.rays,
            ray_voxels_visited=prepared.visits,
            voxel_updates=prepared.voxel_updates,
            duplicates_removed=prepared.visits - prepared.voxel_updates,
            shard_updates=prepared.shard_updates,
            modelled_cycles=max(shard_cycles, default=0),
            wall_seconds=prepared.frontend_seconds + inflight.dispatch_seconds + drain_wait,
            fanout_seconds=inflight.dispatch_seconds + drain_wait,
            frontend_seconds=prepared.frontend_seconds,
            drain_wait_seconds=drain_wait,
            pipelined=self.pipelined,
            overlapped=prepared.overlapped,
            backend=self.backend.name,
            deadline_misses=prepared.deadline_misses,
        )
        self.reports.append(report)
        self._account(report, prepared.points)
        return report

    def _finalize_tail(self) -> Optional[BatchReport]:
        """Drain the in-flight batch when the admission queue has emptied."""
        if self._inflight is None:
            return None
        inflight, self._inflight = self._inflight, None
        return self._finalize(inflight)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _account(self, report: BatchReport, points: int) -> None:
        self.stats.scans_ingested += report.scans
        self.stats.points_ingested += points
        self.stats.rays_cast += report.rays_cast
        self.stats.ray_voxels_visited += report.ray_voxels_visited
        self.stats.voxel_updates += report.voxel_updates
        self.stats.duplicates_removed += report.duplicates_removed
        self.stats.deadline_misses += report.deadline_misses
        self.stats.batches_dispatched += 1
        self.stats.modelled_ingest_cycles += report.modelled_cycles
        self.stats.ingest_wall_seconds += report.wall_seconds
        self.stats.fanout_wall_seconds += report.fanout_seconds
        self.stats.frontend_wall_seconds += report.frontend_seconds
        self.stats.drain_wait_seconds += report.drain_wait_seconds
        if report.pipelined:
            self.stats.pipelined_batches += 1
            if report.overlapped:
                self.stats.overlapped_frontend_seconds += report.frontend_seconds
        self.stats.shard_updates = list(self.backend.shard_load())
        # Absolute counters owned by the backend (non-zero on the socket
        # backend only), mirrored into the stats block like shard_updates.
        for counter, value in self.backend.failover_stats().items():
            setattr(self.stats, counter, value)
        if self.metrics is not None and self.metrics.enabled:
            # One record per dispatched batch: the apply/drain leg of the
            # ingest path, on the store's clock (finalize time minus wall).
            self.metrics.observe(
                tenant=self.tenant,
                session_id=self.session_id,
                operation="batch_apply",
                outcome="ok",
                started_s=self.metrics.clock() - report.wall_seconds,
                duration_s=report.wall_seconds,
                num_bytes=report.voxel_updates,
                batch_size=report.scans,
                queue_depth=len(self.scheduler),
            )
