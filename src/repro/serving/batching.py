"""Batched ingestion: coalesce scan requests into per-shard update streams.

The pipeline sits between request admission and the shard workers:

1. admitted :class:`~repro.serving.types.ScanRequest`\\ s wait in the
   pluggable scheduler (FIFO / priority / deadline);
2. a *flush* pops up to ``batch_size`` requests in scheduler order,
   ray-casts each scan once in the shared front end and de-duplicates
   overlapping rays within the scan (occupied beats free, each voxel at most
   one update per scan -- the exact OctoMap ``insertPointCloud`` policy);
3. the surviving updates are concatenated in dispatch order, partitioned
   into per-shard streams, and fanned out to every shard at once through the
   session's :class:`~repro.serving.backends.ShardBackend` (serially for the
   inline reference backend, concurrently for the pool backends).

De-duplication is deliberately *per scan*, not per batch: the clamped
log-odds update saturates, so collapsing two same-voxel updates from
different scans into one would change the map whenever a value sits at a
clamp bound.  Keeping each scan's single update per voxel, in scan order,
makes batched + sharded ingestion bit-equivalent to sequential insertion of
the same request sequence (the property the serving tests verify).
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.core.scheduler import VoxelUpdateRequest
from repro.octomap.counters import OperationCounters
from repro.octomap.scan_insertion import compute_update_keys_for_converter
from repro.serving.backends import ShardBackend
from repro.serving.schedulers import IngestScheduler
from repro.serving.sharding import ShardRouter
from repro.serving.stats import SessionStats
from repro.serving.types import BatchReport, IngestReceipt, ScanRequest, ShardUpdateBatch

__all__ = ["IngestionPipeline"]


class IngestionPipeline:
    """Admission queue + shared ray-casting front end + shard dispatcher."""

    def __init__(
        self,
        session_id: str,
        router: ShardRouter,
        backend: ShardBackend,
        scheduler: IngestScheduler,
        stats: SessionStats,
        batch_size: int = 8,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if backend.num_shards != router.num_shards:
            raise ValueError(
                f"router expects {router.num_shards} shards but the backend "
                f"executes {backend.num_shards}"
            )
        self.session_id = session_id
        self.router = router
        self.backend = backend
        self.scheduler = scheduler
        self.stats = stats
        self.batch_size = batch_size
        self.batches_flushed = 0
        self.reports: List[BatchReport] = []

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, request: ScanRequest) -> IngestReceipt:
        """Admit one scan request into the scheduler."""
        self.scheduler.push(request)
        depth = len(self.scheduler)
        self.stats.queue_high_water = max(self.stats.queue_high_water, depth)
        return IngestReceipt(
            request_id=request.request_id,
            session_id=self.session_id,
            num_points=len(request.cloud),
            queue_depth=depth,
        )

    def pending(self) -> int:
        """Requests admitted but not yet dispatched."""
        return len(self.scheduler)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def flush(self, max_requests: Optional[int] = None) -> Optional[BatchReport]:
        """Dispatch one batch (up to ``batch_size`` requests); None if idle."""
        budget = self.batch_size if max_requests is None else max_requests
        if budget < 1 or not self.scheduler:
            return None
        started = time.perf_counter()

        stream: List[VoxelUpdateRequest] = []
        request_ids: List[int] = []
        scans = points = rays = visits = 0
        converter = self.router.converter
        dda_counters = OperationCounters()
        while self.scheduler and len(request_ids) < budget:
            request = self.scheduler.pop()
            request_ids.append(request.request_id)
            scans += 1
            points += len(request.cloud)
            rays += len(request.cloud)
            free_keys, occupied_keys = compute_update_keys_for_converter(
                converter,
                request.cloud,
                request.origin,
                max_range=request.max_range,
                counters=dda_counters,
            )
            # Pre-dedup visits: every DDA step is one free-voxel visit, and
            # each surviving endpoint voxel is one occupied visit.
            visits += len(occupied_keys)
            # The per-scan segment mirrors the accelerator's own issue order:
            # free voxels first, occupied voxels last, both in sorted key
            # order (occupied keys were already removed from the free set).
            stream.extend(
                VoxelUpdateRequest(key, occupied=False) for key in sorted(free_keys)
            )
            stream.extend(
                VoxelUpdateRequest(key, occupied=True) for key in sorted(occupied_keys)
            )
        visits += dda_counters.ray_steps

        per_shard = self.router.partition(stream)
        batches = [
            ShardUpdateBatch.from_updates(shard_id, shard_stream)
            for shard_id, shard_stream in enumerate(per_shard)
        ]
        fanout_started = time.perf_counter()
        results = self.backend.apply_shard_batches(batches)
        fanout = time.perf_counter() - fanout_started
        shard_cycles = [result.critical_path_cycles for result in results]

        wall = time.perf_counter() - started
        report = BatchReport(
            session_id=self.session_id,
            batch_id=self.batches_flushed,
            request_ids=tuple(request_ids),
            scans=scans,
            rays_cast=rays,
            ray_voxels_visited=visits,
            voxel_updates=len(stream),
            duplicates_removed=visits - len(stream),
            shard_updates=tuple(len(shard_stream) for shard_stream in per_shard),
            modelled_cycles=max(shard_cycles, default=0),
            wall_seconds=wall,
            fanout_seconds=fanout,
            backend=self.backend.name,
        )
        self.batches_flushed += 1
        self.reports.append(report)
        self._account(report, points)
        return report

    def flush_all(self) -> List[BatchReport]:
        """Dispatch batches until the admission queue is empty."""
        reports: List[BatchReport] = []
        while self.scheduler:
            report = self.flush()
            if report is None:
                break
            reports.append(report)
        return reports

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _account(self, report: BatchReport, points: int) -> None:
        self.stats.scans_ingested += report.scans
        self.stats.points_ingested += points
        self.stats.rays_cast += report.rays_cast
        self.stats.ray_voxels_visited += report.ray_voxels_visited
        self.stats.voxel_updates += report.voxel_updates
        self.stats.duplicates_removed += report.duplicates_removed
        self.stats.batches_dispatched += 1
        self.stats.modelled_ingest_cycles += report.modelled_cycles
        self.stats.ingest_wall_seconds += report.wall_seconds
        self.stats.fanout_wall_seconds += report.fanout_seconds
        self.stats.shard_updates = list(self.backend.shard_load())
