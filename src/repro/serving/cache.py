"""Generation-stamped LRU cache fronting the query engine.

Collision checking and planning hammer the same voxels over and over (a
planner samples the corridor ahead thousands of times per replan), so the
query engine keeps recent answers in an LRU cache.  Correctness under
concurrent ingestion comes from *generation stamping*: every cached entry
records the owning shard's write generation at fill time, and every lookup
compares it against the shard's current generation.  A write to a shard bumps
only that shard's generation, so it invalidates exactly that shard's cached
entries -- lazily, with no scan over the cache -- while the other shards'
entries keep serving hits.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

__all__ = ["CacheStats", "GenerationLRUCache"]


@dataclass
class CacheStats:
    """Counter block of one cache instance."""

    hits: int = 0
    misses: int = 0
    stale_hits: int = 0
    evictions: int = 0
    puts: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served (hits + misses; stale hits count as misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when idle)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class GenerationLRUCache:
    """An LRU cache whose entries expire when their shard is written.

    Args:
        capacity: maximum number of live entries; the least recently used
            entry is evicted on overflow.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.stats = CacheStats()
        # key -> (shard_id, generation, value); move_to_end keeps LRU order.
        self._entries: "OrderedDict[Hashable, Tuple[int, int, object]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, current_generation_for_shard) -> Optional[object]:
        """Look up a key; ``current_generation_for_shard`` maps shard id -> gen.

        Accepts any callable so the query engine can pass a bound method that
        reads the live worker generations.  Returns the cached value, or
        ``None`` on a miss (including a stale entry, which is evicted).
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        shard_id, generation, value = entry
        if generation != current_generation_for_shard(shard_id):
            # The owning shard was written since this entry was cached.
            del self._entries[key]
            self.stats.stale_hits += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, shard_id: int, generation: int, value: object) -> None:
        """Insert or refresh an entry stamped with its shard's generation."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (shard_id, generation, value)
        self.stats.puts += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def live_entries(self, current_generation_for_shard) -> int:
        """Number of entries that would still hit (without touching LRU order)."""
        return sum(
            1
            for shard_id, generation, _ in self._entries.values()
            if generation == current_generation_for_shard(shard_id)
        )

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()
