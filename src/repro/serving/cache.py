"""Generation-stamped LRU cache fronting the query engine.

Collision checking and planning hammer the same voxels over and over (a
planner samples the corridor ahead thousands of times per replan), so the
query engine keeps recent answers in an LRU cache.  Correctness under
concurrent ingestion comes from *generation stamping*: every cached entry
records the owning shard's write generation at fill time, and every lookup
compares it against the shard's current generation.  A write to a shard bumps
only that shard's generation, so it invalidates exactly that shard's cached
entries -- lazily, with no scan over the cache -- while the other shards'
entries keep serving hits.

Two refinements for read-heavy multi-tenant serving:

* **Negative TTL entries** (:meth:`GenerationLRUCache.put_negative`).  Most
  of any map is unknown space, and a planner probing ahead of the robot asks
  about it constantly.  A strict generation stamp invalidates every unknown
  answer the moment *anything* lands on the owning shard -- even though a
  write almost never converts the particular distant voxel that was probed.
  With ``negative_ttl_s > 0`` an "unknown" answer instead stays servable for
  a bounded wall-clock window across generation bumps, trading bounded
  staleness (an occupied voxel may read unknown for at most the TTL) for hit
  rate.  The default TTL of ``0.0`` disables the relaxation: negative
  entries then behave exactly like positive ones.

* **Box-sweep result caching** (:class:`BboxResultCache`).  A bbox sweep is
  thousands of point lookups; planners re-issue the same corridor boxes every
  replan tick.  The bbox cache keys a whole
  :class:`~repro.serving.types.BoxOccupancySummary` by the query box and
  validates it against the *full generation vector* of the map, so it is
  exact: any write to any shard invalidates the summary (lazily, on lookup).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Optional, Tuple

__all__ = ["BboxResultCache", "CacheStats", "GenerationLRUCache"]


@dataclass
class CacheStats:
    """Counter block of one cache instance (point and bbox sides)."""

    hits: int = 0
    misses: int = 0
    stale_hits: int = 0
    evictions: int = 0
    puts: int = 0
    # --- negative (unknown-space) entries ---
    #: lookups answered by a live negative-TTL entry (also counted in hits).
    negative_hits: int = 0
    #: negative entries found past their TTL and discarded (counted in misses).
    negative_expired: int = 0
    #: negative-TTL entries inserted (also counted in puts).
    negative_puts: int = 0
    # --- bbox summary cache ---
    bbox_hits: int = 0
    bbox_misses: int = 0
    bbox_puts: int = 0
    bbox_evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served (hits + misses; stale hits count as misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when idle)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    @property
    def bbox_lookups(self) -> int:
        """Total bbox-summary lookups."""
        return self.bbox_hits + self.bbox_misses

    @property
    def bbox_hit_rate(self) -> float:
        """Fraction of bbox sweeps answered whole from the summary cache."""
        if self.bbox_lookups == 0:
            return 0.0
        return self.bbox_hits / self.bbox_lookups


class GenerationLRUCache:
    """An LRU cache whose entries expire when their shard is written.

    Args:
        capacity: maximum number of live entries; the least recently used
            entry is evicted on overflow.
        negative_ttl_s: wall-clock lifetime of *negative* entries (inserted
            via :meth:`put_negative`).  While live, a negative entry answers
            across generation bumps; ``0.0`` (default) disables the
            relaxation and makes :meth:`put_negative` behave like
            :meth:`put`.
        clock: monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        capacity: int = 4096,
        negative_ttl_s: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if negative_ttl_s < 0.0:
            raise ValueError("negative_ttl_s must be non-negative")
        self.capacity = capacity
        self.negative_ttl_s = negative_ttl_s
        self.clock = clock
        self.stats = CacheStats()
        # key -> (shard_id, generation, value, expiry); expiry is None for
        # positive entries and an absolute clock() deadline for negative
        # ones.  move_to_end keeps LRU order.
        self._entries: "OrderedDict[Hashable, Tuple[int, int, object, Optional[float]]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, current_generation_for_shard) -> Optional[object]:
        """Look up a key; ``current_generation_for_shard`` maps shard id -> gen.

        Accepts any callable so the query engine can pass a bound method that
        reads the live worker generations.  Returns the cached value, or
        ``None`` on a miss (including a stale entry, which is evicted).
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        shard_id, generation, value, expiry = entry
        if expiry is not None:
            # Negative entry: valid until its TTL deadline, across writes.
            if self.clock() >= expiry:
                del self._entries[key]
                self.stats.negative_expired += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self.stats.negative_hits += 1
            return value
        if generation != current_generation_for_shard(shard_id):
            # The owning shard was written since this entry was cached.
            del self._entries[key]
            self.stats.stale_hits += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, shard_id: int, generation: int, value: object) -> None:
        """Insert or refresh an entry stamped with its shard's generation."""
        self._insert(key, (shard_id, generation, value, None))

    def put_negative(
        self, key: Hashable, shard_id: int, generation: int, value: object
    ) -> None:
        """Insert an unknown-space answer, TTL-bounded when the TTL is set.

        With ``negative_ttl_s == 0`` this is exactly :meth:`put` -- the entry
        lives and dies by its generation stamp.
        """
        if self.negative_ttl_s <= 0.0:
            self.put(key, shard_id, generation, value)
            return
        self._insert(key, (shard_id, generation, value, self.clock() + self.negative_ttl_s))
        self.stats.negative_puts += 1

    def _insert(
        self, key: Hashable, entry: Tuple[int, int, object, Optional[float]]
    ) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = entry
        self.stats.puts += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def live_entries(self, current_generation_for_shard) -> int:
        """Number of entries that would still hit (without touching LRU order)."""
        now = self.clock()
        live = 0
        for shard_id, generation, _, expiry in self._entries.values():
            if expiry is not None:
                live += 1 if now < expiry else 0
            elif generation == current_generation_for_shard(shard_id):
                live += 1
        return live

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()


class BboxResultCache:
    """LRU cache of whole box-sweep summaries, validated by generation vector.

    Each entry stores the generation of *every* shard at fill time; a lookup
    hits only when the current vector matches exactly, so a cached summary
    can never reflect a map state other than the present one.  The cache is
    tiny (summaries, not voxels) and shares its counter block with the point
    cache when constructed with one.

    Args:
        capacity: maximum cached summaries; ``0`` disables the cache (every
            lookup misses, puts are dropped).
        stats: counter block to record into (a fresh one when omitted).
    """

    def __init__(self, capacity: int = 64, stats: Optional[CacheStats] = None) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self.stats = stats if stats is not None else CacheStats()
        # key -> (generation vector, summary)
        self._entries: "OrderedDict[Hashable, Tuple[Tuple[int, ...], object]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, generations: Tuple[int, ...]) -> Optional[object]:
        """The cached summary for this box at exactly these generations."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.bbox_misses += 1
            return None
        cached_generations, summary = entry
        if cached_generations != tuple(generations):
            del self._entries[key]
            self.stats.bbox_misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.bbox_hits += 1
        return summary

    def put(self, key: Hashable, generations: Tuple[int, ...], summary: object) -> None:
        """Cache one sweep's summary stamped with the full generation vector."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (tuple(generations), summary)
        self.stats.bbox_puts += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.bbox_evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()
