"""``repro-serve``: a command-line demo of the mapping service.

Generates a multi-client scan stream, pushes it through a
:class:`~repro.serving.manager.MapSessionManager` with the chosen execution
backend / scheduler / shard-count / batch-size, fires a few collision queries
per session (twice, so the second round shows cache hits), and prints the
per-session :class:`~repro.serving.stats.ServiceStats` tables.

``--async`` swaps the synchronous loop for the asyncio admission front end
(:class:`~repro.serving.aio.AsyncMapService`): every client becomes its own
coroutine submitting into bounded per-session admission queues while
background flusher tasks ingest concurrently, and the stats gain the
admission-wait table.

``--http`` turns the demo into a long-running server: the network API of
:mod:`repro.serving.http` on ``--host``/``--port``, no generated workload,
serving until SIGINT/SIGTERM.  Both the async demo and the HTTP server shut
down gracefully on those signals -- admitted scans are drained into their
maps (``AsyncMapService.close(drain=True)``) before the process exits 0.

Run ``repro-serve --help`` for the knobs; the demo defaults finish in a few
seconds on a laptop.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import List, Optional, Sequence

from repro.datasets.streams import ClientSpec, StreamEvent, generate_interleaved_stream
from repro.serving.aio import AsyncMapService, submit_interleaved_stream
from repro.serving.backends import BACKEND_NAMES
from repro.serving.manager import MapSessionManager
from repro.serving.schedulers import SCHEDULER_POLICIES
from repro.serving.session import SessionConfig
from repro.serving.types import ScanRequest

__all__ = ["build_parser", "main"]

QUERY_POINTS = (
    (1.0, 0.0, 0.0),
    (0.0, 1.4, 0.3),
    (2.5, -1.0, 0.2),
    (8.0, 8.0, 1.0),
)


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-serve`` argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Demo of the multi-session occupancy-mapping service layer.",
    )
    parser.add_argument("--sessions", type=int, default=2, help="number of map sessions (default 2)")
    parser.add_argument("--scans", type=int, default=3, help="scans per client (default 3)")
    parser.add_argument(
        "--scheduler",
        choices=sorted(SCHEDULER_POLICIES),
        default="fifo",
        help="ingestion scheduling policy (default fifo)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="inline",
        help=(
            "shard execution backend (default inline; 'process' runs one worker "
            "process per shard; 'socket' serves shards from repro-serve-worker "
            "TCP endpoints with snapshots and live failover)"
        ),
    )
    parser.add_argument(
        "--workers",
        default="",
        help=(
            "socket backend: comma-separated host:port endpoints of running "
            "repro-serve-worker processes, in shard order (extras become "
            "failover standbys); empty spawns local workers automatically"
        ),
    )
    parser.add_argument(
        "--standby-workers",
        type=int,
        default=1,
        help="socket backend: extra auto-spawned standby workers (default 1)",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=8,
        help=(
            "socket backend: shard snapshot cadence in acknowledged batches; "
            "smaller bounds failover replay tighter (default 8)"
        ),
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        help="socket backend: quiet seconds before a liveness ping (default 1.0)",
    )
    parser.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=5.0,
        help="socket backend: ping reply deadline in seconds (default 5.0)",
    )
    parser.add_argument(
        "--pipeline",
        action="store_true",
        help=(
            "double-buffered ingestion: ray-cast batch N+1 while the backend "
            "applies batch N (one batch in flight; same maps, better overlap "
            "on multi-core hosts with the process backend)"
        ),
    )
    parser.add_argument(
        "--scalar-frontend",
        action="store_true",
        help=(
            "route ingestion through the per-ray scalar reference front end "
            "instead of the batched numpy pipeline (same maps, ~10x slower; "
            "the A/B escape hatch for verification and benchmarking)"
        ),
    )
    parser.add_argument("--shards", type=int, default=2, help="shard workers per session (default 2)")
    parser.add_argument(
        "--fleet-workers",
        type=int,
        default=0,
        help=(
            "size of the shared backend fleet: sessions lease execution "
            "slots from one pool of this many workers instead of each "
            "owning num-shards workers (0 = classic per-session ownership)"
        ),
    )
    parser.add_argument(
        "--flusher-concurrency",
        type=int,
        default=1,
        help=(
            "async mode: background flusher tasks per session; K > 1 "
            "overlaps up to K flush cycles of one session (default 1)"
        ),
    )
    parser.add_argument(
        "--prefix-levels",
        type=int,
        default=12,
        help="octree-key prefix depth for shard routing (default 12: 16^3-voxel blocks)",
    )
    parser.add_argument("--batch-size", type=int, default=4, help="scans per ingestion batch (default 4)")
    parser.add_argument("--resolution", type=float, default=0.2, help="map resolution in metres (default 0.2)")
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed of the scan stream (default 0)")
    parser.add_argument(
        "--queries",
        type=int,
        default=2,
        help="collision-query rounds per session after ingestion (default 2)",
    )
    parser.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help=(
            "serve through the asyncio admission front end: one submitter "
            "coroutine per client, bounded per-session admission queues with "
            "backpressure, background flusher tasks ingesting off the event loop"
        ),
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="async mode: admission queue depth per session (default 16)",
    )
    parser.add_argument(
        "--http",
        dest="use_http",
        action="store_true",
        help=(
            "serve the network API (REST + chunked uploads + background jobs) "
            "instead of running the demo workload; runs until SIGINT/SIGTERM, "
            "then drains admitted scans and exits 0"
        ),
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="HTTP mode: bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8080,
        help="HTTP mode: bind port; 0 picks a free one (default 8080)",
    )
    parser.add_argument(
        "--metrics-json",
        metavar="PATH",
        default=None,
        help=(
            "write the final metrics snapshot (windowed rollups, percentile "
            "latencies, per-tenant accounting) plus the ServiceStats counters "
            "as JSON to PATH on exit -- clean exits and SIGTERM alike"
        ),
    )
    return parser


def _write_metrics(args: argparse.Namespace, manager: MapSessionManager) -> None:
    """Dump the ``--metrics-json`` snapshot, if the flag was given."""
    if not getattr(args, "metrics_json", None):
        return
    from repro.serving.metrics import write_metrics_json

    path = write_metrics_json(args.metrics_json, manager.metrics, manager.service_stats)
    print(f"Metrics snapshot written to {path}")


def _raise_system_exit(signum, frame):  # pragma: no cover - signal path
    """Sync-mode SIGTERM handler: unwind through ``finally`` blocks.

    The asyncio modes route signals into a stop event; the synchronous demo
    has no loop, so SIGTERM instead raises ``SystemExit`` -- the workload's
    ``finally`` then releases the backends and writes the metrics snapshot
    before the process exits with the conventional ``128 + signum`` code.
    """
    raise SystemExit(128 + signum)


def _install_signal_handlers(stop: "asyncio.Event") -> List[int]:
    """Route SIGINT/SIGTERM into ``stop`` (returns the signals hooked).

    Registered through the running loop so the handler executes as loop
    work, where setting the event is safe; the caller restores the default
    disposition afterwards so a second signal can still kill a wedged
    shutdown the hard way.
    """
    loop = asyncio.get_running_loop()
    hooked: List[int] = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-POSIX
            continue
        hooked.append(signum)
    return hooked


def _remove_signal_handlers(hooked: List[int]) -> None:
    loop = asyncio.get_running_loop()
    for signum in hooked:
        loop.remove_signal_handler(signum)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-serve`` console script."""
    args = build_parser().parse_args(argv)
    if args.sessions < 1:
        print("error: --sessions must be at least 1", file=sys.stderr)
        return 2
    if args.use_async and args.queue_limit < 1:
        print("error: --queue-limit must be at least 1", file=sys.stderr)
        return 2
    if args.use_http and not 0 <= args.port <= 65535:
        print("error: --port must be in [0, 65535]", file=sys.stderr)
        return 2

    try:
        config = SessionConfig(
            num_shards=args.shards,
            shard_prefix_levels=args.prefix_levels,
            backend=args.backend,
            pipelined=args.pipeline,
            scheduler_policy=args.scheduler,
            batch_size=args.batch_size,
            scalar_frontend=args.scalar_frontend,
            workers=tuple(
                endpoint.strip()
                for endpoint in args.workers.split(",")
                if endpoint.strip()
            ),
            standby_workers=args.standby_workers,
            snapshot_every_batches=args.snapshot_every,
            heartbeat_interval_s=args.heartbeat_interval,
            heartbeat_timeout_s=args.heartbeat_timeout,
            fleet_workers=args.fleet_workers,
            flusher_concurrency=args.flusher_concurrency,
        ).with_resolution(args.resolution)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.use_http:
        return asyncio.run(_http_main(config, args))

    try:
        scenes = ("corridor", "campus", "college")
        clients: List[ClientSpec] = [
            ClientSpec(
                client_id=f"client-{index}",
                session_id=f"session-{index}",
                scene=scenes[index % len(scenes)],
                num_scans=args.scans,
                max_range_m=15.0,
                priority=index,
            )
            for index in range(args.sessions)
        ]
        manager = MapSessionManager(default_config=config)
        # Session construction validates the shard/prefix combination.
        for index in range(args.sessions):
            manager.get_or_create_session(f"session-{index}")
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    stream = generate_interleaved_stream(clients, seed=args.seed)
    mode = "pipelined" if args.pipeline else "blocking"
    frontend = "async" if args.use_async else "sync"
    print(
        f"Streaming {len(stream)} scans from {len(clients)} clients "
        f"({frontend} front end, {args.backend} backend, {mode} ingestion, "
        f"{args.scheduler} scheduler, {args.shards} shards, batch {args.batch_size})"
    )

    if args.use_async:
        return asyncio.run(_async_main(manager, stream, args))

    try:
        previous_sigterm = signal.signal(signal.SIGTERM, _raise_system_exit)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        previous_sigterm = None
    try:
        for event in stream:
            manager.submit(
                ScanRequest.from_scan_node(
                    event.session_id,
                    event.scan,
                    max_range=event.max_range_m,
                    priority=event.priority,
                    client_id=event.client_id,
                )
            )
        reports = manager.flush_all()
        print(f"Dispatched {len(reports)} batches, {manager.service_stats.total_voxel_updates()} voxel updates")

        for _ in range(max(0, args.queries)):
            for session_id in manager.session_ids():
                for point in QUERY_POINTS:
                    manager.query(session_id, *point)
        for session_id in manager.session_ids():
            response = manager.raycast(session_id, (0.0, 0.0, 0.2), (1.0, 0.0, 0.0), 12.0)
            hit = f"hit at {response.hit_point}" if response.hit else "no hit"
            print(f"  {session_id}: forward collision ray -> {hit} ({response.voxels_traversed} voxels)")

        print()
        print(manager.render_stats())
        hit_rate = 100.0 * manager.service_stats.overall_hit_rate()
        print(f"\nOverall cache hit rate: {hit_rate:.1f}%")
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)
        # Pool backends hold worker processes/threads; always release them.
        manager.shutdown()
        _write_metrics(args, manager)
    return 0


async def _async_main(
    manager: MapSessionManager, stream: Sequence[StreamEvent], args: argparse.Namespace
) -> int:
    """Drive the scan stream through the asyncio admission front end.

    One coroutine per client submits that client's events in order (the
    interleaving across clients is whatever the event loop schedules); the
    service's flusher tasks ingest concurrently off the loop.  Sessions were
    created eagerly by :func:`main`, so process-backend workers forked
    before any executor thread existed.

    SIGINT/SIGTERM shut down gracefully: the submitters stop, admitted scans
    are drained into their maps (``close(drain=True)``), and the process
    exits 0 with the stats of whatever was ingested.  The handlers stay
    installed through the drain itself -- most of the ingest work happens
    *after* the submitters finish, and a signal landing there must still
    produce the stats and the ``--metrics-json`` snapshot instead of
    killing the process mid-flush.
    """
    stop = asyncio.Event()
    hooked = _install_signal_handlers(stop)
    try:
        async with AsyncMapService(manager, queue_limit=args.queue_limit) as service:
            for session_id in manager.session_ids():
                service.get_or_create_session(session_id)
            driver = asyncio.ensure_future(submit_interleaved_stream(service, stream))
            waiter = asyncio.ensure_future(stop.wait())
            await asyncio.wait({driver, waiter}, return_when=asyncio.FIRST_COMPLETED)
            if stop.is_set():
                driver.cancel()
                await asyncio.gather(driver, return_exceptions=True)
                print("\nSignal received: draining admitted scans, then exiting")
            else:
                await driver  # surface submitter errors
            waiter.cancel()
            await asyncio.gather(waiter, return_exceptions=True)
            await service.flush_all()
            # Count every batch the background flushers dispatched, not just
            # the residual tail the final flush drained.
            batches = sum(s.batches_dispatched for s in manager.service_stats)
            print(
                f"Dispatched {batches} batches, "
                f"{manager.service_stats.total_voxel_updates()} voxel updates "
                f"({sum(s.admission_waits for s in manager.service_stats)} backpressured submits)"
            )

            if not stop.is_set():
                for _ in range(max(0, args.queries)):
                    for session_id in manager.session_ids():
                        for point in QUERY_POINTS:
                            await service.query(session_id, *point)
                for session_id in manager.session_ids():
                    response = await service.raycast(session_id, (0.0, 0.0, 0.2), (1.0, 0.0, 0.0), 12.0)
                    hit = f"hit at {response.hit_point}" if response.hit else "no hit"
                    print(f"  {session_id}: forward collision ray -> {hit} ({response.voxels_traversed} voxels)")

            print()
            print(service.render_stats())
            hit_rate = 100.0 * manager.service_stats.overall_hit_rate()
            print(f"\nOverall cache hit rate: {hit_rate:.1f}%")
    finally:
        _remove_signal_handlers(hooked)
        _write_metrics(args, manager)
    return 0


async def _http_main(config: SessionConfig, args: argparse.Namespace) -> int:
    """Serve the network API until SIGINT/SIGTERM, then drain and exit 0.

    The shutdown order matters: stop accepting (and drop live connections)
    first, *then* ``close(drain=True)`` the service so every scan a client
    got a 202 for reaches its map before the process exits.
    """
    from repro.serving.http.server import HttpMapServer

    stop = asyncio.Event()
    hooked = _install_signal_handlers(stop)
    service = AsyncMapService(default_config=config)
    server = HttpMapServer(service, host=args.host, port=args.port)
    try:
        try:
            await server.start()
        except OSError as error:
            print(f"error: cannot bind {args.host}:{args.port}: {error}", file=sys.stderr)
            await service.close(drain=False)
            return 2
        host, port = server.address
        print(
            f"Serving the map API on http://{host}:{port} "
            f"({args.backend} backend, {args.scheduler} scheduler, "
            f"{args.shards} shards per session); Ctrl-C to stop"
        )
        sys.stdout.flush()
        await stop.wait()
        print("\nSignal received: draining admitted scans, then exiting")
    finally:
        _remove_signal_handlers(hooked)
        await server.close()
        await service.close(drain=True)
    if len(service.manager.service_stats):
        print()
        print(service.render_stats())
    _write_metrics(args, service.manager)
    print("Shutdown complete")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
