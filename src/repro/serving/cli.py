"""``repro-serve``: a command-line demo of the mapping service.

Generates a multi-client scan stream, pushes it through a
:class:`~repro.serving.manager.MapSessionManager` with the chosen execution
backend / scheduler / shard-count / batch-size, fires a few collision queries
per session (twice, so the second round shows cache hits), and prints the
per-session :class:`~repro.serving.stats.ServiceStats` tables.

Run ``repro-serve --help`` for the knobs; the defaults finish in a few
seconds on a laptop.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.datasets.streams import ClientSpec, generate_interleaved_stream
from repro.serving.backends import BACKEND_NAMES
from repro.serving.manager import MapSessionManager
from repro.serving.schedulers import SCHEDULER_POLICIES
from repro.serving.session import SessionConfig
from repro.serving.types import ScanRequest

__all__ = ["build_parser", "main"]

QUERY_POINTS = (
    (1.0, 0.0, 0.0),
    (0.0, 1.4, 0.3),
    (2.5, -1.0, 0.2),
    (8.0, 8.0, 1.0),
)


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-serve`` argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Demo of the multi-session occupancy-mapping service layer.",
    )
    parser.add_argument("--sessions", type=int, default=2, help="number of map sessions (default 2)")
    parser.add_argument("--scans", type=int, default=3, help="scans per client (default 3)")
    parser.add_argument(
        "--scheduler",
        choices=sorted(SCHEDULER_POLICIES),
        default="fifo",
        help="ingestion scheduling policy (default fifo)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="inline",
        help="shard execution backend (default inline; 'process' runs one worker process per shard)",
    )
    parser.add_argument(
        "--pipeline",
        action="store_true",
        help=(
            "double-buffered ingestion: ray-cast batch N+1 while the backend "
            "applies batch N (one batch in flight; same maps, better overlap "
            "on multi-core hosts with the process backend)"
        ),
    )
    parser.add_argument("--shards", type=int, default=2, help="shard workers per session (default 2)")
    parser.add_argument(
        "--prefix-levels",
        type=int,
        default=12,
        help="octree-key prefix depth for shard routing (default 12: 16^3-voxel blocks)",
    )
    parser.add_argument("--batch-size", type=int, default=4, help="scans per ingestion batch (default 4)")
    parser.add_argument("--resolution", type=float, default=0.2, help="map resolution in metres (default 0.2)")
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed of the scan stream (default 0)")
    parser.add_argument(
        "--queries",
        type=int,
        default=2,
        help="collision-query rounds per session after ingestion (default 2)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-serve`` console script."""
    args = build_parser().parse_args(argv)
    if args.sessions < 1:
        print("error: --sessions must be at least 1", file=sys.stderr)
        return 2

    try:
        config = SessionConfig(
            num_shards=args.shards,
            shard_prefix_levels=args.prefix_levels,
            backend=args.backend,
            pipelined=args.pipeline,
            scheduler_policy=args.scheduler,
            batch_size=args.batch_size,
        ).with_resolution(args.resolution)
        scenes = ("corridor", "campus", "college")
        clients: List[ClientSpec] = [
            ClientSpec(
                client_id=f"client-{index}",
                session_id=f"session-{index}",
                scene=scenes[index % len(scenes)],
                num_scans=args.scans,
                max_range_m=15.0,
                priority=index,
            )
            for index in range(args.sessions)
        ]
        manager = MapSessionManager(default_config=config)
        # Session construction validates the shard/prefix combination.
        for index in range(args.sessions):
            manager.get_or_create_session(f"session-{index}")
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    stream = generate_interleaved_stream(clients, seed=args.seed)
    mode = "pipelined" if args.pipeline else "blocking"
    print(
        f"Streaming {len(stream)} scans from {len(clients)} clients "
        f"({args.backend} backend, {mode} ingestion, {args.scheduler} scheduler, "
        f"{args.shards} shards, batch {args.batch_size})"
    )

    try:
        for event in stream:
            manager.submit(
                ScanRequest.from_scan_node(
                    event.session_id,
                    event.scan,
                    max_range=event.max_range_m,
                    priority=event.priority,
                    client_id=event.client_id,
                )
            )
        reports = manager.flush_all()
        print(f"Dispatched {len(reports)} batches, {manager.service_stats.total_voxel_updates()} voxel updates")

        for _ in range(max(0, args.queries)):
            for session_id in manager.session_ids():
                for point in QUERY_POINTS:
                    manager.query(session_id, *point)
        for session_id in manager.session_ids():
            response = manager.raycast(session_id, (0.0, 0.0, 0.2), (1.0, 0.0, 0.0), 12.0)
            hit = f"hit at {response.hit_point}" if response.hit else "no hit"
            print(f"  {session_id}: forward collision ray -> {hit} ({response.voxels_traversed} voxels)")

        print()
        print(manager.render_stats())
        hit_rate = 100.0 * manager.service_stats.overall_hit_rate()
        print(f"\nOverall cache hit rate: {hit_rate:.1f}%")
    finally:
        # Pool backends hold worker processes/threads; always release them.
        manager.shutdown()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
