"""``repro-serve``: a command-line demo of the mapping service.

Generates a multi-client scan stream, pushes it through a
:class:`~repro.serving.manager.MapSessionManager` with the chosen execution
backend / scheduler / shard-count / batch-size, fires a few collision queries
per session (twice, so the second round shows cache hits), and prints the
per-session :class:`~repro.serving.stats.ServiceStats` tables.

``--async`` swaps the synchronous loop for the asyncio admission front end
(:class:`~repro.serving.aio.AsyncMapService`): every client becomes its own
coroutine submitting into bounded per-session admission queues while
background flusher tasks ingest concurrently, and the stats gain the
admission-wait table.

Run ``repro-serve --help`` for the knobs; the defaults finish in a few
seconds on a laptop.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional, Sequence

from repro.datasets.streams import ClientSpec, StreamEvent, generate_interleaved_stream
from repro.serving.aio import AsyncMapService, submit_interleaved_stream
from repro.serving.backends import BACKEND_NAMES
from repro.serving.manager import MapSessionManager
from repro.serving.schedulers import SCHEDULER_POLICIES
from repro.serving.session import SessionConfig
from repro.serving.types import ScanRequest

__all__ = ["build_parser", "main"]

QUERY_POINTS = (
    (1.0, 0.0, 0.0),
    (0.0, 1.4, 0.3),
    (2.5, -1.0, 0.2),
    (8.0, 8.0, 1.0),
)


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-serve`` argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Demo of the multi-session occupancy-mapping service layer.",
    )
    parser.add_argument("--sessions", type=int, default=2, help="number of map sessions (default 2)")
    parser.add_argument("--scans", type=int, default=3, help="scans per client (default 3)")
    parser.add_argument(
        "--scheduler",
        choices=sorted(SCHEDULER_POLICIES),
        default="fifo",
        help="ingestion scheduling policy (default fifo)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="inline",
        help="shard execution backend (default inline; 'process' runs one worker process per shard)",
    )
    parser.add_argument(
        "--pipeline",
        action="store_true",
        help=(
            "double-buffered ingestion: ray-cast batch N+1 while the backend "
            "applies batch N (one batch in flight; same maps, better overlap "
            "on multi-core hosts with the process backend)"
        ),
    )
    parser.add_argument("--shards", type=int, default=2, help="shard workers per session (default 2)")
    parser.add_argument(
        "--prefix-levels",
        type=int,
        default=12,
        help="octree-key prefix depth for shard routing (default 12: 16^3-voxel blocks)",
    )
    parser.add_argument("--batch-size", type=int, default=4, help="scans per ingestion batch (default 4)")
    parser.add_argument("--resolution", type=float, default=0.2, help="map resolution in metres (default 0.2)")
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed of the scan stream (default 0)")
    parser.add_argument(
        "--queries",
        type=int,
        default=2,
        help="collision-query rounds per session after ingestion (default 2)",
    )
    parser.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help=(
            "serve through the asyncio admission front end: one submitter "
            "coroutine per client, bounded per-session admission queues with "
            "backpressure, background flusher tasks ingesting off the event loop"
        ),
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="async mode: admission queue depth per session (default 16)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-serve`` console script."""
    args = build_parser().parse_args(argv)
    if args.sessions < 1:
        print("error: --sessions must be at least 1", file=sys.stderr)
        return 2
    if args.use_async and args.queue_limit < 1:
        print("error: --queue-limit must be at least 1", file=sys.stderr)
        return 2

    try:
        config = SessionConfig(
            num_shards=args.shards,
            shard_prefix_levels=args.prefix_levels,
            backend=args.backend,
            pipelined=args.pipeline,
            scheduler_policy=args.scheduler,
            batch_size=args.batch_size,
        ).with_resolution(args.resolution)
        scenes = ("corridor", "campus", "college")
        clients: List[ClientSpec] = [
            ClientSpec(
                client_id=f"client-{index}",
                session_id=f"session-{index}",
                scene=scenes[index % len(scenes)],
                num_scans=args.scans,
                max_range_m=15.0,
                priority=index,
            )
            for index in range(args.sessions)
        ]
        manager = MapSessionManager(default_config=config)
        # Session construction validates the shard/prefix combination.
        for index in range(args.sessions):
            manager.get_or_create_session(f"session-{index}")
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    stream = generate_interleaved_stream(clients, seed=args.seed)
    mode = "pipelined" if args.pipeline else "blocking"
    frontend = "async" if args.use_async else "sync"
    print(
        f"Streaming {len(stream)} scans from {len(clients)} clients "
        f"({frontend} front end, {args.backend} backend, {mode} ingestion, "
        f"{args.scheduler} scheduler, {args.shards} shards, batch {args.batch_size})"
    )

    if args.use_async:
        return asyncio.run(_async_main(manager, stream, args))

    try:
        for event in stream:
            manager.submit(
                ScanRequest.from_scan_node(
                    event.session_id,
                    event.scan,
                    max_range=event.max_range_m,
                    priority=event.priority,
                    client_id=event.client_id,
                )
            )
        reports = manager.flush_all()
        print(f"Dispatched {len(reports)} batches, {manager.service_stats.total_voxel_updates()} voxel updates")

        for _ in range(max(0, args.queries)):
            for session_id in manager.session_ids():
                for point in QUERY_POINTS:
                    manager.query(session_id, *point)
        for session_id in manager.session_ids():
            response = manager.raycast(session_id, (0.0, 0.0, 0.2), (1.0, 0.0, 0.0), 12.0)
            hit = f"hit at {response.hit_point}" if response.hit else "no hit"
            print(f"  {session_id}: forward collision ray -> {hit} ({response.voxels_traversed} voxels)")

        print()
        print(manager.render_stats())
        hit_rate = 100.0 * manager.service_stats.overall_hit_rate()
        print(f"\nOverall cache hit rate: {hit_rate:.1f}%")
    finally:
        # Pool backends hold worker processes/threads; always release them.
        manager.shutdown()
    return 0


async def _async_main(
    manager: MapSessionManager, stream: Sequence[StreamEvent], args: argparse.Namespace
) -> int:
    """Drive the scan stream through the asyncio admission front end.

    One coroutine per client submits that client's events in order (the
    interleaving across clients is whatever the event loop schedules); the
    service's flusher tasks ingest concurrently off the loop.  Sessions were
    created eagerly by :func:`main`, so process-backend workers forked
    before any executor thread existed.
    """
    async with AsyncMapService(manager, queue_limit=args.queue_limit) as service:
        for session_id in manager.session_ids():
            service.get_or_create_session(session_id)
        await submit_interleaved_stream(service, stream)
        await service.flush_all()
        # Count every batch the background flushers dispatched, not just the
        # residual tail the final flush drained.
        batches = sum(s.batches_dispatched for s in manager.service_stats)
        print(
            f"Dispatched {batches} batches, "
            f"{manager.service_stats.total_voxel_updates()} voxel updates "
            f"({sum(s.admission_waits for s in manager.service_stats)} backpressured submits)"
        )

        for _ in range(max(0, args.queries)):
            for session_id in manager.session_ids():
                for point in QUERY_POINTS:
                    await service.query(session_id, *point)
        for session_id in manager.session_ids():
            response = await service.raycast(session_id, (0.0, 0.0, 0.2), (1.0, 0.0, 0.0), 12.0)
            hit = f"hit at {response.hit_point}" if response.hit else "no hit"
            print(f"  {session_id}: forward collision ray -> {hit} ({response.voxels_traversed} voxels)")

        print()
        print(service.render_stats())
        hit_rate = 100.0 * manager.service_stats.overall_hit_rate()
        print(f"\nOverall cache hit rate: {hit_rate:.1f}%")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    raise SystemExit(main())
