"""Shared backend fleet: sessions lease shard execution instead of owning it.

Before this module a :class:`~repro.serving.session.MapSession` *owned* its
:class:`~repro.serving.backends.ShardBackend`, so N sessions with M shards
each meant N x M threads / processes / sockets -- fine for a handful of
sessions, fatal for hundreds.  The fleet inverts the ownership the same way
the paper's OMU accelerator time-shares a fixed set of processing banks
across incoming scan streams: a :class:`BackendPool` owns one fixed set of
execution slots sized by ``fleet_workers``, and every session gets a
lightweight :class:`SessionBackendView` *lease* that multiplexes its shards
onto those slots.

The trick that keeps every existing layer working unchanged is **global
shard ids**: the pool assigns each leased ``(session, shard)`` pair a unique
integer ``gid`` and creates the hosted :class:`~repro.serving.sharding.
MapShardWorker` under that identity.  The view translates its session-local
shard ids to gids on the way out and back on the way in, so the fleet's
substrate speaks the exact same pickle-safe ``Shard*`` vocabulary as the
per-session backends -- one worker process (or socket worker) simply hosts a
dict of gid-keyed shard workers from many sessions instead of one session's
single shard.  Generation bookkeeping stays keyed by ``(session, shard)``:
each view owns its parent-side generation stamps (inherited from
:class:`~repro.serving.backends.ShardBackend`), and the hosted workers --
created per lease -- never share map state between sessions.

:class:`SessionBackendView` is a real :class:`ShardBackend` subclass, so the
whole contract rides along for free: the ``apply_async``/``drain`` ticket
API with the one-in-flight invariant, read-side barriers, fail-stop on apply
failure, ``shard_load``/``failover_stats`` accounting, and idempotent
``close`` -- except that closing a view releases only its lease; the fleet
keeps serving every other session.  A fleet worker that dies fail-stops the
sessions leasing slots on it (detected by the per-flush health check), while
sessions on surviving slots keep going.

Resource bound: a fleet of W workers serves any number of sessions with
O(W) OS threads/processes/sockets -- one dispatch thread pool of W threads
plus, per kind, W worker processes (``process``) or W TCP connections to W
worker servers (``socket``).  The ``inline`` fleet has no concurrency at
all and exists as the equivalence reference.
"""

from __future__ import annotations

import threading
import traceback
from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import OMUConfig
from repro.serving.backends import (
    BACKEND_NAMES,
    SOCKET_BACKEND_NAME,
    ShardBackend,
    ShardBackendError,
)
from repro.serving.sharding import MapShardWorker
from repro.serving.types import (
    ShardApplyResult,
    ShardExportResult,
    ShardQueryRequest,
    ShardQueryResult,
    ShardUpdateBatch,
)

__all__ = ["BackendPool", "SessionBackendView"]


# ---------------------------------------------------------------------------
# Fleet engines: the shared execution substrate behind every lease
# ---------------------------------------------------------------------------
class _InlineFleetEngine:
    """Serial reference engine: gid-keyed workers applied in the caller."""

    kind = "inline"

    def __init__(self, num_slots: int) -> None:
        self.num_slots = num_slots
        self._workers: Dict[int, MapShardWorker] = {}

    def attach(self, gid: int, config: OMUConfig) -> None:
        self._workers[gid] = MapShardWorker(gid, config)

    def detach(self, gid: int) -> None:
        self._workers.pop(gid, None)

    def slot_of(self, gid: int) -> int:
        return 0

    def apply(self, batches: Sequence[ShardUpdateBatch]) -> object:
        # Eager apply, exactly like InlineBackend: pipelining degenerates to
        # the serial reference semantics.
        return [self._workers[batch.shard_id].apply_message(batch) for batch in batches]

    def collect(self, handle: object) -> List[ShardApplyResult]:
        return handle

    def query(self, request: ShardQueryRequest) -> ShardQueryResult:
        return self._workers[request.shard_id].query_message(request)

    def export(self, gid: int) -> ShardExportResult:
        return self._workers[gid].export_message()

    def check(self, gids: Sequence[int]) -> None:  # in-process: nothing can die
        pass

    def local_workers(self, gids: Sequence[int]) -> List[MapShardWorker]:
        return [self._workers[gid] for gid in gids]

    @property
    def attached_shards(self) -> int:
        return len(self._workers)

    def close(self) -> None:
        self._workers.clear()


class _ThreadFleetEngine(_InlineFleetEngine):
    """One shared thread pool of ``num_slots`` threads for every session.

    Unlike :class:`~repro.serving.backends.ThreadPoolBackend` (one pool of
    ``num_shards`` threads *per session*), the fleet pool is sized once and
    time-shares: concurrent flushes from many sessions queue onto the same W
    threads.  No per-worker locking is needed -- each gid belongs to exactly
    one session and that session's one-in-flight invariant means a worker
    never sees two concurrent applies.
    """

    kind = "thread"

    def __init__(self, num_slots: int) -> None:
        super().__init__(num_slots)
        self._executor = ThreadPoolExecutor(
            max_workers=num_slots, thread_name_prefix="fleet"
        )

    def apply(self, batches: Sequence[ShardUpdateBatch]) -> object:
        return [
            self._executor.submit(self._workers[batch.shard_id].apply_message, batch)
            for batch in batches
        ]

    def collect(self, handle: object) -> List[ShardApplyResult]:
        return [future.result() for future in handle]

    def close(self) -> None:
        self._executor.shutdown(wait=True)
        super().close()


def _fleet_worker_main(connection) -> None:
    """Entry point of one fleet worker process.

    Unlike :func:`~repro.serving.backends._shard_worker_main` (one process =
    one shard of one session), a fleet worker hosts a *dict* of gid-keyed
    shard workers from many sessions, attached and detached over its
    lifetime as sessions come and go.  Same reply convention: ``("ok",
    payload)`` or ``("error", (message, traceback))``; exceptions are
    reported, not fatal.
    """
    workers: Dict[int, MapShardWorker] = {}
    while True:
        try:
            verb, payload = connection.recv()
        except (EOFError, OSError):  # parent died: nothing left to serve
            break
        if verb == "stop":
            connection.send(("ok", None))
            break
        try:
            if verb == "attach":
                gid, config = payload
                workers[gid] = MapShardWorker(gid, config)
                reply = gid
            elif verb == "detach":
                workers.pop(payload, None)
                reply = payload
            elif verb == "apply":
                reply = workers[payload.shard_id].apply_message(payload)
            elif verb == "query":
                reply = workers[payload.shard_id].query_message(payload)
            elif verb == "export":
                reply = workers[payload].export_message()
            elif verb == "ping":
                reply = len(workers)
            else:
                raise ValueError(f"unknown fleet command {verb!r}")
            connection.send(("ok", reply))
        except Exception as error:  # noqa: BLE001 - report, don't die
            connection.send(
                ("error", (f"{type(error).__name__}: {error}", traceback.format_exc()))
            )
    connection.close()


class _ProcessFleetEngine:
    """W worker processes, each hosting gid-keyed shards from many sessions.

    The parent keeps one duplex pipe per slot, guarded by a slot lock:
    flushes from different sessions landing on the same slot serialise their
    pipe round-trips (the fleet's time-sharing), while flushes on different
    slots proceed concurrently through a W-thread dispatch pool.  A slot
    lock covers one whole send-all/recv-all exchange, so concurrent sessions
    can never desynchronise a pipe's request/reply stream.
    """

    kind = "process"

    def __init__(self, num_slots: int, start_method: Optional[str] = None) -> None:
        import multiprocessing

        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        context = multiprocessing.get_context(start_method)
        self.num_slots = num_slots
        self.start_method = start_method
        self._connections = []
        self.processes = []
        self._locks = [threading.Lock() for _ in range(num_slots)]
        self._slot_of: Dict[int, int] = {}
        self._slot_load = [0] * num_slots
        self._io = ThreadPoolExecutor(max_workers=num_slots, thread_name_prefix="fleet-io")
        try:
            for slot in range(num_slots):
                parent_end, child_end = context.Pipe(duplex=True)
                process = context.Process(
                    target=_fleet_worker_main,
                    args=(child_end,),
                    name=f"fleet-{slot}",
                    daemon=True,
                )
                process.start()
                child_end.close()  # the child keeps its own handle
                self._connections.append(parent_end)
                self.processes.append(process)
        except Exception:
            self.close()
            raise

    # -- pipe plumbing --------------------------------------------------
    def _worker_id(self, slot: int) -> str:
        return f"fleet-process:{self.processes[slot].pid}"

    def _worker_lost(self, slot: int, error: Exception) -> ShardBackendError:
        process = self.processes[slot]
        process.join(timeout=1.0)
        return ShardBackendError(
            f"fleet slot {slot} worker process died "
            f"(exit code {process.exitcode}): {error}",
            worker_id=self._worker_id(slot),
        )

    def _send(self, slot: int, verb: str, payload) -> None:
        try:
            self._connections[slot].send((verb, payload))
        except (BrokenPipeError, OSError) as error:
            raise self._worker_lost(slot, error) from error

    def _recv(self, slot: int):
        try:
            status, payload = self._connections[slot].recv()
        except (EOFError, OSError) as error:
            raise self._worker_lost(slot, error) from error
        if status != "ok":
            message, remote_traceback = payload
            raise ShardBackendError(
                f"fleet slot {slot} worker failed: {message}",
                worker_id=self._worker_id(slot),
                remote_traceback=remote_traceback,
            )
        return payload

    def _roundtrip(self, slot: int, verb: str, payload):
        with self._locks[slot]:
            self._send(slot, verb, payload)
            return self._recv(slot)

    # -- engine API -----------------------------------------------------
    def attach(self, gid: int, config: OMUConfig) -> None:
        slot = min(range(self.num_slots), key=lambda s: self._slot_load[s])
        self._slot_of[gid] = slot
        self._slot_load[slot] += 1
        self._roundtrip(slot, "attach", (gid, config))

    def detach(self, gid: int) -> None:
        slot = self._slot_of.pop(gid, None)
        if slot is None:
            return
        self._slot_load[slot] -= 1
        try:
            self._roundtrip(slot, "detach", gid)
        except ShardBackendError:
            pass  # a dead slot has no state left to detach

    def slot_of(self, gid: int) -> int:
        return self._slot_of[gid]

    def apply(self, batches: Sequence[ShardUpdateBatch]) -> object:
        by_slot: Dict[int, List[ShardUpdateBatch]] = defaultdict(list)
        for batch in batches:
            by_slot[self._slot_of[batch.shard_id]].append(batch)
        # One dispatch task per slot: slots fan out concurrently, batches on
        # the same slot share one locked send-all/recv-all exchange.
        return [
            (group, self._io.submit(self._apply_slot, slot, group))
            for slot, group in sorted(by_slot.items())
        ]

    def _apply_slot(self, slot: int, group: List[ShardUpdateBatch]) -> List[ShardApplyResult]:
        with self._locks[slot]:
            for batch in group:
                self._send(slot, "apply", batch)
            # Drain every ack even when one reports an error: an unread
            # reply would desynchronise the slot's pipe for all sessions.
            results: List[ShardApplyResult] = []
            first_error: Optional[ShardBackendError] = None
            for _ in group:
                try:
                    results.append(self._recv(slot))
                except ShardBackendError as error:
                    if first_error is None:
                        first_error = error
            if first_error is not None:
                raise first_error
            return results

    def collect(self, handle: object) -> List[ShardApplyResult]:
        by_gid: Dict[int, ShardApplyResult] = {}
        first_error: Optional[ShardBackendError] = None
        for group, future in handle:
            try:
                for result in future.result():
                    by_gid[result.shard_id] = result
            except ShardBackendError as error:
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return list(by_gid.values())

    def query(self, request: ShardQueryRequest) -> ShardQueryResult:
        return self._roundtrip(self._slot_of[request.shard_id], "query", request)

    def export(self, gid: int) -> ShardExportResult:
        return self._roundtrip(self._slot_of[gid], "export", gid)

    def check(self, gids: Sequence[int]) -> None:
        for slot in {self._slot_of[gid] for gid in gids}:
            if not self.processes[slot].is_alive():
                raise ShardBackendError(
                    f"fleet slot {slot} worker process died "
                    f"(exit code {self.processes[slot].exitcode})",
                    worker_id=self._worker_id(slot),
                )

    def local_workers(self, gids: Sequence[int]) -> List[MapShardWorker]:
        raise AttributeError(
            "fleet process workers are not in-process; use the Shard* message API"
        )

    @property
    def attached_shards(self) -> int:
        return len(self._slot_of)

    def close(self) -> None:
        for slot, connection in enumerate(self._connections):
            try:
                with self._locks[slot]:
                    connection.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for process in self.processes:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=2.0)
        for connection in self._connections:
            try:
                connection.close()
            except OSError:  # pragma: no cover
                pass
        self._io.shutdown(wait=True)


def _make_engine(
    backend: str,
    fleet_workers: int,
    start_method: Optional[str],
    endpoints: Sequence[str],
    heartbeat_interval_s: float,
):
    if backend == "inline":
        return _InlineFleetEngine(fleet_workers)
    if backend == "thread":
        return _ThreadFleetEngine(fleet_workers)
    if backend == "process":
        return _ProcessFleetEngine(fleet_workers, start_method=start_method)
    if backend == SOCKET_BACKEND_NAME:
        # Lazy import mirrors make_backend: the remote stack only loads when
        # a socket fleet is actually requested.
        from repro.serving.remote.backend import SocketFleetEngine

        return SocketFleetEngine(
            fleet_workers,
            endpoints=endpoints,
            heartbeat_interval_s=heartbeat_interval_s,
        )
    raise ValueError(
        f"unknown shard backend {backend!r}; choose from {', '.join(BACKEND_NAMES)}"
    )


# ---------------------------------------------------------------------------
# The pool and its leases
# ---------------------------------------------------------------------------
class BackendPool:
    """A fixed fleet of execution slots shared by any number of sessions.

    Args:
        backend: execution kind (``inline`` / ``thread`` / ``process`` /
            ``socket``), same registry names as per-session backends.
        fleet_workers: number of fleet slots W.  This is the *total* OS
            resource bound: W pool threads, or W worker processes, or W
            socket worker connections -- independent of how many sessions
            lease onto the fleet.
        start_method: multiprocessing start method (process fleet only).
        endpoints: external ``host:port`` worker endpoints (socket fleet
            only); empty spawns W local in-process workers.
        heartbeat_interval_s: minimum quiet time between liveness pings on a
            socket fleet slot.
    """

    def __init__(
        self,
        backend: str = "thread",
        fleet_workers: int = 2,
        *,
        start_method: Optional[str] = None,
        endpoints: Sequence[str] = (),
        heartbeat_interval_s: float = 1.0,
    ) -> None:
        if fleet_workers < 1:
            raise ValueError("fleet_workers must be at least 1")
        if endpoints and backend != SOCKET_BACKEND_NAME:
            raise ValueError("worker endpoints only apply to the socket fleet")
        self.backend = backend
        self.fleet_workers = fleet_workers
        self.closed = False
        self._engine = _make_engine(
            backend, fleet_workers, start_method, endpoints, heartbeat_interval_s
        )
        self._lock = threading.Lock()
        self._next_gid = 0
        self._leases: Dict[int, "SessionBackendView"] = {}
        self._next_lease_id = 0

    # -- leasing --------------------------------------------------------
    def lease(
        self, session_id: str, config: OMUConfig, num_shards: int
    ) -> "SessionBackendView":
        """Attach ``num_shards`` fresh shards for one session; return its view.

        Each call allocates fresh gids, so a session id may be reused (churn)
        while an earlier lease under the same id is still draining -- the
        hosted workers never collide.
        """
        with self._lock:
            if self.closed:
                raise ShardBackendError("backend pool is closed")
            lease_id = self._next_lease_id
            self._next_lease_id += 1
            gids = tuple(range(self._next_gid, self._next_gid + num_shards))
            self._next_gid += num_shards
            attached = []
            try:
                for gid in gids:
                    self._engine.attach(gid, config)
                    attached.append(gid)
            except Exception:
                for gid in attached:
                    try:
                        self._engine.detach(gid)
                    except Exception:  # pragma: no cover - engine already down
                        pass
                raise
            view = SessionBackendView(self, lease_id, session_id, config, num_shards, gids)
            self._leases[lease_id] = view
            return view

    def _release(self, view: "SessionBackendView") -> None:
        with self._lock:
            if self._leases.pop(view.lease_id, None) is None:
                return
            if self.closed:
                return  # the engine (and all hosted state) is already gone
            for gid in view.gids:
                try:
                    self._engine.detach(gid)
                except Exception:  # pragma: no cover - dead slot, nothing to free
                    pass

    # -- observability --------------------------------------------------
    @property
    def active_leases(self) -> int:
        """Sessions currently holding a lease on this fleet."""
        with self._lock:
            return len(self._leases)

    @property
    def attached_shards(self) -> int:
        """Shard workers currently hosted across the whole fleet."""
        return self._engine.attached_shards

    @property
    def num_slots(self) -> int:
        """The fixed slot count W (never changes over the pool's life)."""
        return self.fleet_workers

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Shut the fleet down.  Idempotent.

        Outstanding leases are not closed here -- their sessions own that --
        but any later use of one raises, and their eventual ``close()``
        degrades to pure bookkeeping.
        """
        with self._lock:
            if self.closed:
                return
            self.closed = True
            engine, self._engine = self._engine, _ClosedEngine(self.backend)
        engine.close()

    def __enter__(self) -> "BackendPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _ClosedEngine:
    """Stand-in engine after pool close: every operation raises."""

    def __init__(self, backend: str) -> None:
        self.kind = backend
        self.attached_shards = 0

    def __getattr__(self, name: str):
        def _raise(*args, **kwargs):
            raise ShardBackendError("backend pool is closed")

        return _raise


class SessionBackendView(ShardBackend):
    """One session's lease on a :class:`BackendPool`.

    A full :class:`~repro.serving.backends.ShardBackend`: the ingestion
    pipeline, query engine and stats layers cannot tell it from an owned
    backend.  The only behavioural difference is scoping -- ``close()``
    releases this session's hosted shards and leaves the fleet running, and
    a fleet worker failure fail-stops only the sessions leasing slots on it.

    All translation between session-local shard ids (``0..num_shards-1``)
    and fleet-global gids happens here, at the hook boundary, so the base
    class's ticket/generation/accounting machinery operates purely in local
    ids while the engine operates purely in gids.
    """

    def __init__(
        self,
        pool: BackendPool,
        lease_id: int,
        session_id: str,
        config: OMUConfig,
        num_shards: int,
        gids: Tuple[int, ...],
    ) -> None:
        super().__init__(config, num_shards)
        self.name = f"{pool.backend}+fleet"
        self.pool = pool
        self.lease_id = lease_id
        self.session_id = session_id
        self.gids = gids
        self._local_of = {gid: local for local, gid in enumerate(gids)}

    def slot_of(self, shard_id: int) -> int:
        """Fleet slot currently hosting one of this session's shards."""
        return self.pool._engine.slot_of(self.gids[shard_id])

    # -- hook implementations (gid translation at the boundary) ---------
    def _apply_begin(self, batches: Sequence[ShardUpdateBatch]) -> object:
        translated = [
            replace(batch, shard_id=self.gids[batch.shard_id]) for batch in batches
        ]
        return self.pool._engine.apply(translated)

    def _apply_collect(self, handle: object) -> List[ShardApplyResult]:
        return [
            replace(result, shard_id=self._local_of[result.shard_id])
            for result in self.pool._engine.collect(handle)
        ]

    def _query(self, request: ShardQueryRequest) -> ShardQueryResult:
        result = self.pool._engine.query(
            replace(request, shard_id=self.gids[request.shard_id])
        )
        return replace(result, shard_id=self._local_of[result.shard_id])

    def _export(self) -> List[ShardExportResult]:
        return [
            replace(self.pool._engine.export(gid), shard_id=self._local_of[gid])
            for gid in self.gids
        ]

    def _health_check(self) -> None:
        self.pool._engine.check(self.gids)

    def _close(self) -> None:
        self.pool._release(self)

    @property
    def workers(self) -> List[MapShardWorker]:
        """This session's hosted workers, local order (in-process fleets only)."""
        return self.pool._engine.local_workers(self.gids)
