"""The network API front end of the serving layer.

``repro.serving.http`` puts a REST + streaming-upload + background-job
surface over one :class:`~repro.serving.aio.AsyncMapService`, built entirely
on stdlib asyncio (no web framework, no new runtime dependency):

* :mod:`repro.serving.http.wire` -- HTTP/1.1 framing over asyncio streams
  and the JSON codecs of the serving-layer dataclasses (the network wire
  format).
* :mod:`repro.serving.http.jobs` -- background jobs with polling handles:
  long operations (map export, flush-all) run as asyncio tasks behind 202 +
  job-id responses, with a stage history and TTL'd completed records.
* :mod:`repro.serving.http.uploads` -- the resumable chunked upload
  protocol (init -> PUT chunks -> commit) that lifts the single-body size
  limit with bounded buffering and byte quotas.
* :mod:`repro.serving.http.server` -- :class:`HttpMapServer`, the
  ``asyncio.start_server`` acceptor, route table and error mapping.
* :mod:`repro.serving.http.client` -- a small asyncio client driving the
  same API (tests, the demo and the latency benchmark use it).

Serve with ``repro-serve --http --port 8080`` or embed::

    async with AsyncMapService(default_config=config) as service:
        async with HttpMapServer(service, port=8080) as server:
            await server.serve_forever()
"""

from repro.serving.http.client import HttpResponse, MapServiceClient, ServerError, http_request
from repro.serving.http.jobs import JobManager, JobRecord
from repro.serving.http.server import API, HttpMapServer
from repro.serving.http.uploads import UploadError, UploadManager, UploadRecord
from repro.serving.http.wire import HttpError, HttpRequest

__all__ = [
    "API",
    "HttpError",
    "HttpMapServer",
    "HttpRequest",
    "HttpResponse",
    "JobManager",
    "JobRecord",
    "MapServiceClient",
    "ServerError",
    "UploadError",
    "UploadManager",
    "UploadRecord",
    "http_request",
]
