"""A small asyncio HTTP/1.1 client for the map-server API.

Stdlib-only counterpart of :mod:`repro.serving.http.server`: one
``asyncio.open_connection`` per request (``Connection: close``; deliberate
-- correctness tests want independent connections, and the benchmark then
measures the honest per-request cost of the network hop), plain and
chunked-transfer (NDJSON) response reading, and
:class:`MapServiceClient`, which wraps the REST surface including the
init/chunks/commit upload protocol and job polling.  Tests, the workload
demo and the HTTP-vs-in-process benchmark all drive the server through
this module, so the client is exercised as hard as the server.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass
from typing import Any, AsyncIterator, Dict, List, Optional, Sequence, Tuple

__all__ = ["HttpResponse", "ServerError", "http_request", "MapServiceClient"]


class ServerError(Exception):
    """A non-2xx response, surfaced with its status and decoded error body."""

    def __init__(self, status: int, payload: Any) -> None:
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        super().__init__(
            f"HTTP {status}: {error.get('code', 'error')}: "
            f"{error.get('message', payload)}"
        )
        self.status = status
        self.payload = payload
        self.code = error.get("code", "")
        self.detail = error.get("detail")


@dataclass
class HttpResponse:
    """One complete (non-streamed) response."""

    status: int
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8")) if self.body else None


async def _read_head(reader: asyncio.StreamReader) -> Tuple[int, Dict[str, str]]:
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


async def _read_chunked(reader: asyncio.StreamReader) -> AsyncIterator[bytes]:
    """Yield the data of each chunked-transfer frame until the terminator."""
    while True:
        size_line = await reader.readuntil(b"\r\n")
        size = int(size_line.strip(), 16)
        if size == 0:
            await reader.readexactly(2)  # trailing CRLF of the terminator
            return
        data = await reader.readexactly(size)
        await reader.readexactly(2)  # frame CRLF
        yield data


def _request_bytes(method: str, path: str, host: str, body: bytes, content_type: str) -> bytes:
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("latin-1") + body


def _encode_body(payload: Any) -> Tuple[bytes, str]:
    if payload is None:
        return b"", "application/json"
    if isinstance(payload, (bytes, bytearray)):
        return bytes(payload), "application/octet-stream"
    return json.dumps(payload).encode("utf-8"), "application/json"


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Any = None,
    *,
    raw_body: Optional[bytes] = None,
) -> HttpResponse:
    """One request / one connection; returns the buffered response.

    ``payload`` is JSON-encoded; ``raw_body`` sends bytes verbatim instead
    (the upload-chunk ``PUT``).  Chunked responses are drained and
    concatenated -- use :meth:`MapServiceClient.stream_bbox` to consume
    frames incrementally.
    """
    body, content_type = (
        (raw_body, "application/octet-stream")
        if raw_body is not None
        else _encode_body(payload)
    )
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(_request_bytes(method, path, f"{host}:{port}", body, content_type))
        await writer.drain()
        status, headers = await _read_head(reader)
        if headers.get("transfer-encoding") == "chunked":
            chunks = [chunk async for chunk in _read_chunked(reader)]
            data = b"".join(chunks)
        else:
            data = await reader.readexactly(int(headers.get("content-length", "0")))
        return HttpResponse(status=status, headers=headers, body=data)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


class MapServiceClient:
    """Typed wrapper over the REST API of one map server.

    Every call raises :class:`ServerError` on a non-2xx answer, so tests
    assert on ``error.status`` / ``error.code`` instead of parsing bodies.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    async def _call(
        self, method: str, path: str, payload: Any = None, *, raw_body: Optional[bytes] = None
    ) -> Any:
        response = await http_request(
            self.host, self.port, method, path, payload, raw_body=raw_body
        )
        if response.status >= 400:
            try:
                decoded = response.json()
            except (ValueError, UnicodeDecodeError):
                decoded = {"error": {"message": response.body.decode("latin-1")}}
            raise ServerError(response.status, decoded)
        if response.headers.get("content-type", "").startswith("application/json"):
            return response.json()
        return response.body

    # ------------------------------------------------------------------
    # Service
    # ------------------------------------------------------------------
    async def healthz(self) -> dict:
        return await self._call("GET", "/healthz")

    async def stats(self) -> dict:
        return await self._call("GET", "/v1/stats")

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    async def create_session(self, session_id: str, config: Optional[dict] = None) -> dict:
        payload: Dict[str, Any] = {"session_id": session_id}
        if config:
            payload["config"] = config
        return await self._call("POST", "/v1/sessions", payload)

    async def list_sessions(self) -> List[str]:
        return (await self._call("GET", "/v1/sessions"))["sessions"]

    async def session_stats(self, session_id: str) -> dict:
        return await self._call("GET", f"/v1/sessions/{session_id}")

    async def delete_session(self, session_id: str) -> dict:
        return await self._call("DELETE", f"/v1/sessions/{session_id}")

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    async def submit_scan(
        self,
        session_id: str,
        points: Sequence[Sequence[float]],
        origin: Sequence[float],
        *,
        max_range: float = -1.0,
        priority: int = 0,
        deadline_in_s: Optional[float] = None,
        client_id: str = "",
    ) -> dict:
        payload: Dict[str, Any] = {
            "points": [list(point) for point in points],
            "origin": list(origin),
            "max_range": max_range,
            "priority": priority,
            "client_id": client_id,
        }
        if deadline_in_s is not None:
            payload["deadline_in_s"] = deadline_in_s
        return await self._call("POST", f"/v1/sessions/{session_id}/scans", payload)

    async def flush(self, session_id: str) -> List[dict]:
        return (await self._call("POST", f"/v1/sessions/{session_id}/flush"))["reports"]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    async def query(self, session_id: str, x: float, y: float, z: float) -> dict:
        return await self._call(
            "POST", f"/v1/sessions/{session_id}/query", {"point": [x, y, z]}
        )

    async def query_batch(
        self, session_id: str, points: Sequence[Sequence[float]]
    ) -> List[dict]:
        payload = {"points": [list(point) for point in points]}
        return (
            await self._call("POST", f"/v1/sessions/{session_id}/query/batch", payload)
        )["responses"]

    async def query_bbox(
        self, session_id: str, minimum: Sequence[float], maximum: Sequence[float]
    ) -> dict:
        payload = {"min": list(minimum), "max": list(maximum)}
        return await self._call("POST", f"/v1/sessions/{session_id}/query/bbox", payload)

    async def stream_bbox(
        self,
        session_id: str,
        minimum: Sequence[float],
        maximum: Sequence[float],
        *,
        chunk_voxels: int = 1024,
        include_voxels: bool = True,
    ) -> AsyncIterator[dict]:
        """Consume the NDJSON chunked-transfer bbox sweep frame by frame."""
        payload = {
            "min": list(minimum),
            "max": list(maximum),
            "chunk_voxels": chunk_voxels,
            "include_voxels": include_voxels,
        }
        body, content_type = _encode_body(payload)
        path = f"/v1/sessions/{session_id}/query/bbox?stream=true"
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(
                _request_bytes("POST", path, f"{self.host}:{self.port}", body, content_type)
            )
            await writer.drain()
            status, headers = await _read_head(reader)
            if status >= 400:
                data = await reader.readexactly(int(headers.get("content-length", "0")))
                raise ServerError(status, json.loads(data.decode("utf-8")) if data else {})
            buffer = b""
            async for frame in _read_chunked(reader):
                buffer += frame
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line.decode("utf-8"))
            if buffer.strip():
                yield json.loads(buffer.decode("utf-8"))
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def raycast(
        self,
        session_id: str,
        origin: Sequence[float],
        direction: Sequence[float],
        max_range: float,
    ) -> dict:
        payload = {
            "origin": list(origin),
            "direction": list(direction),
            "max_range": max_range,
        }
        return await self._call("POST", f"/v1/sessions/{session_id}/raycast", payload)

    # ------------------------------------------------------------------
    # Chunked uploads
    # ------------------------------------------------------------------
    async def upload_scans(
        self,
        session_id: str,
        scans: Sequence[dict],
        *,
        chunk_bytes: int = 64 * 1024,
    ) -> dict:
        """Drive the whole init -> chunks -> commit protocol for a scan list.

        Splits the JSON document ``{"scans": [...]}`` into ``chunk_bytes``
        slices, so a batch far larger than the server's single-body limit
        round-trips through the resumable path.  Returns the commit
        response (submission receipts included).
        """
        blob = json.dumps({"scans": list(scans)}).encode("utf-8")
        total_chunks = max(1, math.ceil(len(blob) / chunk_bytes))
        init = await self._call(
            "POST",
            f"/v1/sessions/{session_id}/uploads",
            {"total_chunks": total_chunks, "total_bytes": len(blob)},
        )
        upload_id = init["upload_id"]
        for index in range(total_chunks):
            chunk = blob[index * chunk_bytes : (index + 1) * chunk_bytes]
            await self.put_chunk(session_id, upload_id, index, chunk)
        return await self.commit_upload(session_id, upload_id)

    async def init_upload(
        self, session_id: str, total_chunks: int, total_bytes: int = 0
    ) -> dict:
        return await self._call(
            "POST",
            f"/v1/sessions/{session_id}/uploads",
            {"total_chunks": total_chunks, "total_bytes": total_bytes},
        )

    async def put_chunk(
        self, session_id: str, upload_id: str, index: int, data: bytes
    ) -> dict:
        return await self._call(
            "PUT",
            f"/v1/sessions/{session_id}/uploads/{upload_id}/chunks/{index}",
            raw_body=data,
        )

    async def upload_status(self, session_id: str, upload_id: str) -> dict:
        return await self._call("GET", f"/v1/sessions/{session_id}/uploads/{upload_id}")

    async def commit_upload(self, session_id: str, upload_id: str) -> dict:
        return await self._call(
            "POST", f"/v1/sessions/{session_id}/uploads/{upload_id}/commit"
        )

    async def abort_upload(self, session_id: str, upload_id: str) -> dict:
        return await self._call(
            "DELETE", f"/v1/sessions/{session_id}/uploads/{upload_id}"
        )

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------
    async def start_export(self, session_id: str) -> dict:
        return await self._call("POST", f"/v1/sessions/{session_id}/export")

    async def start_flush_all(self) -> dict:
        return await self._call("POST", "/v1/flush_all")

    async def get_job(self, job_id: str) -> dict:
        return await self._call("GET", f"/v1/jobs/{job_id}")

    async def list_jobs(self) -> List[dict]:
        return (await self._call("GET", "/v1/jobs"))["jobs"]

    async def job_result(self, job_id: str) -> Any:
        """The finished job's artifact bytes (or its JSON result)."""
        return await self._call("GET", f"/v1/jobs/{job_id}/result")

    async def wait_job(
        self, job_id: str, *, timeout_s: float = 30.0, poll_s: float = 0.02
    ) -> dict:
        """Poll a job until it reaches ``done``/``failed`` (or time out)."""
        deadline = asyncio.get_running_loop().time() + timeout_s
        while True:
            record = await self.get_job(job_id)
            if record["status"] in ("done", "failed"):
                return record
            if asyncio.get_running_loop().time() > deadline:
                raise TimeoutError(f"job {job_id!r} still {record['status']} after {timeout_s}s")
            await asyncio.sleep(poll_s)
