"""Background jobs: long-running service operations with polling handles.

Map export and service-wide flushes can take arbitrarily long (they drain
admission queues and barrier on shard backends), so the HTTP layer must not
hold a connection open for them.  Instead a handler *starts* a job -- an
asyncio task wrapped in a :class:`JobRecord` -- and returns its id at once;
the client polls ``GET /v1/jobs/{id}`` until the record reports ``done`` or
``failed``, then fetches any byte artifact from ``GET /v1/jobs/{id}/result``.

Records keep a stage ``history`` (``pending`` -> ``running`` -> custom
stages -> ``done``/``failed``) so a test or dashboard can verify the whole
progression even when it polls too slowly to catch each stage live.
Completed records stay queryable for a TTL and are purged lazily, keeping
the registry bounded without a sweeper task.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

__all__ = ["JobRecord", "JobManager", "PENDING", "RUNNING", "DONE", "FAILED"]

PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: statuses a record can never leave.
TERMINAL = (DONE, FAILED)


@dataclass
class JobRecord:
    """State of one background job, safe to snapshot at any time.

    Attributes:
        job_id: registry-assigned identifier (``"job-<n>"``).
        kind: what the job does (``"export"``, ``"flush_all"``, ...).
        status: ``pending`` / ``running`` / ``done`` / ``failed``.
        stage: free-form progress marker set by the job body (e.g.
            ``"serialize"``); mirrors ``status`` at the transitions.
        detail: human-readable progress note for the current stage.
        history: every ``(stage, monotonic timestamp)`` transition in order,
            so the full progression stays observable after the fact.
        result: JSON-serialisable outcome of a finished job.
        artifact: optional byte payload (e.g. a serialised octree) served
            through the job-result endpoint; kept out of ``result`` so
            polling responses stay small.
        error: stringified exception of a failed job.
        finished_at: monotonic completion time (drives TTL purging).
    """

    job_id: str
    kind: str
    status: str = PENDING
    stage: str = PENDING
    detail: str = ""
    history: List[Tuple[str, float]] = field(default_factory=list)
    result: Optional[dict] = None
    artifact: Optional[bytes] = None
    artifact_content_type: str = "application/octet-stream"
    error: Optional[str] = None
    finished_at: Optional[float] = None

    def payload(self) -> dict:
        """The polling-endpoint JSON view (artifact bytes excluded)."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "status": self.status,
            "stage": self.stage,
            "detail": self.detail,
            "history": [stage for stage, _ in self.history],
            "result": self.result,
            "error": self.error,
            "has_artifact": self.artifact is not None,
        }


class JobHandle:
    """What a job body receives: stage reporting bound to one record."""

    def __init__(self, record: JobRecord, clock: Callable[[], float]) -> None:
        self._record = record
        self._clock = clock

    @property
    def job_id(self) -> str:
        return self._record.job_id

    def stage(self, stage: str, detail: str = "") -> None:
        """Advance the record to a named progress stage."""
        self._record.stage = stage
        self._record.detail = detail
        self._record.history.append((stage, self._clock()))

    def set_artifact(
        self, data: bytes, content_type: str = "application/octet-stream"
    ) -> None:
        """Attach the byte payload the result endpoint will serve."""
        self._record.artifact = data
        self._record.artifact_content_type = content_type


class JobManager:
    """Registry of background jobs with TTL'd completed records.

    Args:
        completed_ttl_s: how long a finished record stays pollable; expired
            records are purged lazily on the next registry access.
        clock: injectable monotonic clock (tests pass a fake to step time).
    """

    def __init__(
        self,
        completed_ttl_s: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if completed_ttl_s < 0:
            raise ValueError("completed_ttl_s must be non-negative")
        self.completed_ttl_s = completed_ttl_s
        self._clock = clock
        self._counter = itertools.count(1)
        self._records: Dict[str, JobRecord] = {}
        self._tasks: Dict[str, "asyncio.Task"] = {}

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def start(
        self,
        kind: str,
        body: Callable[[JobHandle], Awaitable[Optional[dict]]],
    ) -> JobRecord:
        """Register a job and schedule its body as an asyncio task.

        ``body`` receives a :class:`JobHandle` for stage reporting; its
        return value (a JSON-serialisable dict or ``None``) becomes the
        record's ``result``.  An exception fails the job and is captured as
        its ``error`` -- nothing propagates into the event loop.
        """
        self._purge()
        record = JobRecord(job_id=f"job-{next(self._counter)}", kind=kind)
        record.history.append((PENDING, self._clock()))
        handle = JobHandle(record, self._clock)

        async def run() -> None:
            # One scheduling round between registration and the running
            # transition, so a prompt poll can still observe ``pending``.
            await asyncio.sleep(0)
            record.status = RUNNING
            handle.stage(RUNNING)
            try:
                record.result = await body(handle)
            except asyncio.CancelledError:
                record.status = FAILED
                record.error = "cancelled"
                handle.stage(FAILED, "cancelled at shutdown")
                raise
            except Exception as error:  # noqa: BLE001 - job bodies fail the record
                record.status = FAILED
                record.error = f"{type(error).__name__}: {error}"
                handle.stage(FAILED, record.error)
            else:
                record.status = DONE
                handle.stage(DONE)
            finally:
                record.finished_at = self._clock()

        task = asyncio.get_running_loop().create_task(run(), name=f"job-{kind}")
        self._records[record.job_id] = record
        self._tasks[record.job_id] = task
        task.add_done_callback(lambda _: self._tasks.pop(record.job_id, None))
        return record

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[JobRecord]:
        """The record of a job, or ``None`` when unknown / TTL-expired."""
        self._purge()
        return self._records.get(job_id)

    def records(self) -> List[JobRecord]:
        """Every live record, oldest first."""
        self._purge()
        return list(self._records.values())

    def __len__(self) -> int:
        self._purge()
        return len(self._records)

    def _purge(self) -> None:
        now = self._clock()
        expired = [
            job_id
            for job_id, record in self._records.items()
            if record.status in TERMINAL
            and record.finished_at is not None
            and now - record.finished_at > self.completed_ttl_s
        ]
        for job_id in expired:
            del self._records[job_id]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def wait(self, job_id: str) -> JobRecord:
        """Await a job's task (tests use this instead of polling loops)."""
        task = self._tasks.get(job_id)
        if task is not None:
            await asyncio.gather(task, return_exceptions=True)
        record = self._records.get(job_id)
        if record is None:
            raise KeyError(job_id)
        return record

    async def close(self) -> None:
        """Cancel every in-flight job task and await them (idempotent)."""
        tasks = list(self._tasks.values())
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._tasks.clear()


def job_payload(record: Any) -> dict:
    """Codec shim mirroring the :mod:`repro.serving.http.wire` naming."""
    return record.payload()
