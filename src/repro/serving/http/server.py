"""The HTTP/1.1 map server: REST routing over one :class:`AsyncMapService`.

One ``asyncio.start_server`` acceptor, one handler task per connection
(keep-alive supported), every route delegating to the async service -- the
server adds *no* concurrency semantics of its own beyond what
:mod:`repro.serving.aio` already guarantees (bounded admission, per-session
locking, fail-stop).  The ``API`` tuple below is the machine-readable route
table; the README mirrors it with curl examples.

Error mapping is centralised in the connection handler: ``HttpError`` and
``UploadError`` carry their status, ``KeyError`` -> 404 unknown resource,
``ValueError`` -> 400, ``AdmissionQueueFull`` -> 429 with a Retry-After
hint, ``TenantQuotaExceeded`` -> 429 ``quota_exceeded``, ``DeadlineShed``
-> 503 ``deadline_shed``, anything else -> 500 with the exception class
name (no traceback leaks).  A handler crash therefore never kills the
connection loop, and a connection crash never kills the acceptor.

Observability middleware: every request is stamped with a monotonically
increasing id, echoed back as an ``X-Request-Id`` response header (error
responses included), and recorded into the service's
:class:`~repro.serving.metrics.MetricsStore` under an ``http:<handler>``
operation tag -- handler names, not raw paths, so metric cardinality stays
bounded -- with the outcome derived from the response status (``<400`` ok,
429 rejected, 503 shed, everything else error).
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Awaitable, Callable, Dict, List, Optional, Tuple

from repro.octomap.serialization import serialize_tree
from repro.serving.aio import AdmissionQueueFull, AsyncMapService
from repro.serving.http.jobs import JobManager
from repro.serving.metrics import (
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_REJECTED,
    OUTCOME_SHED,
    DeadlineShed,
    TenantQuotaExceeded,
)
from repro.serving.http.uploads import UploadError, UploadManager
from repro.serving.http.wire import (
    HttpError,
    HttpRequest,
    bbox_chunk_payload,
    bbox_payload,
    end_chunked_response,
    json_body,
    point3,
    query_payload,
    raycast_payload,
    read_request,
    receipt_payload,
    report_payload,
    require_field,
    scan_request_from_payload,
    session_config_from_payload,
    session_stats_payload,
    start_chunked_response,
    write_chunk,
    write_response,
)

__all__ = ["HttpMapServer", "API"]

#: route table: (method, path template) -> purpose.  Kept as data so the
#: README, the 404 hint and the tests enumerate the same surface.
API: Tuple[Tuple[str, str, str], ...] = (
    ("GET", "/healthz", "liveness probe"),
    ("GET", "/v1/stats", "service-wide counters (all sessions)"),
    ("GET", "/v1/metrics", "metrics snapshot: totals + per-session windowed rollups"),
    ("GET", "/v1/metrics/sessions/{sid}", "one session's metrics rollups"),
    ("GET", "/v1/sessions", "list sessions"),
    ("POST", "/v1/sessions", "create (or validate) a session"),
    ("GET", "/v1/sessions/{sid}", "one session's counters"),
    ("DELETE", "/v1/sessions/{sid}", "retire a session (drains first)"),
    ("POST", "/v1/sessions/{sid}/scans", "submit one scan for ingestion"),
    ("POST", "/v1/sessions/{sid}/flush", "drain the session's admitted scans"),
    ("POST", "/v1/sessions/{sid}/query", "point occupancy query"),
    ("POST", "/v1/sessions/{sid}/query/batch", "batch point query"),
    ("POST", "/v1/sessions/{sid}/query/bbox", "bounding-box sweep (stream=true for NDJSON chunks)"),
    ("POST", "/v1/sessions/{sid}/raycast", "collision raycast"),
    ("POST", "/v1/sessions/{sid}/uploads", "init a chunked scan upload"),
    ("GET", "/v1/sessions/{sid}/uploads/{uid}", "upload status (missing chunks)"),
    ("PUT", "/v1/sessions/{sid}/uploads/{uid}/chunks/{n}", "send one chunk body"),
    ("POST", "/v1/sessions/{sid}/uploads/{uid}/commit", "assemble + submit the scans"),
    ("DELETE", "/v1/sessions/{sid}/uploads/{uid}", "abort an upload"),
    ("POST", "/v1/sessions/{sid}/export", "start a map-export job (202 + job id)"),
    ("POST", "/v1/flush_all", "start a flush-all job (202 + job id)"),
    ("GET", "/v1/jobs", "list background jobs"),
    ("GET", "/v1/jobs/{id}", "poll one job (status, stage history)"),
    ("GET", "/v1/jobs/{id}/result", "download a finished job's artifact"),
)


class HttpMapServer:
    """Serves the REST + streaming-upload API over one async map service.

    Args:
        service: the :class:`AsyncMapService` to front.  The server never
            closes it -- the owner (CLI, test fixture) controls the service
            lifecycle, so several front ends can share one service.
        host / port: bind address; port 0 picks a free port (the bound one
            is in :attr:`address` after :meth:`start`).
        max_body_bytes: general JSON request-body cap; the upload-chunk
            route is instead capped by ``uploads.max_chunk_bytes``.
        uploads / jobs: injectable managers (tests pass fakes with stepped
            clocks); fresh defaults otherwise.
    """

    def __init__(
        self,
        service: AsyncMapService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_body_bytes: int = 256 * 1024,
        uploads: Optional[UploadManager] = None,
        jobs: Optional[JobManager] = None,
    ) -> None:
        if max_body_bytes < 1:
            raise ValueError("max_body_bytes must be positive")
        self.service = service
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self.uploads = uploads if uploads is not None else UploadManager()
        self.jobs = jobs if jobs is not None else JobManager()
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        #: monotonically increasing request counter; echoed to clients as
        #: the ``X-Request-Id`` response header by the middleware.
        self._http_requests = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "HttpMapServer":
        """Bind and start accepting connections."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        return (self.host, self.port)

    async def close(self) -> None:
        """Stop accepting, drop live connections, cancel in-flight jobs.

        Does *not* close the fronted service -- the owner does that (and
        decides whether to drain).  Idempotent.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        await self.jobs.close()

    async def __aenter__(self) -> "HttpMapServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def serve_forever(self) -> None:
        """Block until the acceptor is closed (the CLI's main await)."""
        if self._server is None:
            raise RuntimeError("server not started")
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.get_running_loop().create_task(
            self._connection_loop(reader, writer), name="http-conn"
        )
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    def _body_cap_for(self, method: str, path: str) -> int:
        if method == "PUT" and "/chunks/" in path:
            return self.uploads.max_chunk_bytes
        return 0

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, self.max_body_bytes, self._body_cap_for
                    )
                except HttpError as error:
                    # Framing errors: answer and drop the connection (the
                    # stream position is unreliable after a bad head and an
                    # over-limit body was never read).
                    await write_response(
                        writer, error.status, error.payload(), keep_alive=False
                    )
                    return
                if request is None:
                    return
                keep_alive = request.headers.get("connection", "keep-alive") != "close"
                handled = await self._dispatch(request, writer, keep_alive)
                if not handled or not keep_alive:
                    return
        except (
            asyncio.CancelledError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, request: HttpRequest, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> bool:
        """Middleware + routing; returns False when the connection must close.

        Stamps the request id (echoed as ``X-Request-Id`` on every response,
        errors included), routes, and records one metrics record for the
        request -- the operation tag is the handler name, the outcome is
        derived from the response status.  Streaming handlers (bbox with
        ``stream=true``) write the response themselves; everything else
        returns ``(status, payload)`` through the common error mapping.
        """
        self._http_requests += 1
        request_id = self._http_requests
        headers = {"X-Request-Id": str(request_id)}
        store = self.service.metrics
        timer = (store.clock(), time.perf_counter()) if store.enabled else None
        operation = "http:unknown"
        status = 500
        try:
            try:
                route = self._route(request)
                if route is None:
                    raise HttpError(
                        404,
                        "unknown_route",
                        f"no route {request.method} {request.path}",
                        detail={"api": [f"{m} {p}" for m, p, _ in API]},
                    )
                handler, args = route
                operation = "http:" + handler.__name__.removeprefix("_handle_")
                is_bbox = getattr(handler, "__func__", None) is HttpMapServer._handle_bbox
                if is_bbox and self._wants_stream(request):
                    await self._stream_bbox(
                        request, writer, keep_alive, *args, extra_headers=headers
                    )
                    status = 200
                    return True
                status, payload = await handler(request, *args)
                if isinstance(payload, _Raw):
                    await write_response(
                        writer,
                        status,
                        payload.data,
                        content_type=payload.content_type,
                        keep_alive=keep_alive,
                        extra_headers=headers,
                    )
                else:
                    await write_response(
                        writer, status, payload, keep_alive=keep_alive,
                        extra_headers=headers,
                    )
                return True
            except HttpError:
                raise
            except UploadError as error:
                raise HttpError(error.status, error.code, error.message, error.detail) from None
            except AdmissionQueueFull as error:
                raise HttpError(429, "admission_queue_full", str(error)) from None
            except TenantQuotaExceeded as error:
                raise HttpError(
                    429,
                    "quota_exceeded",
                    str(error),
                    detail={"retry_after_s": error.retry_after_s},
                ) from None
            except DeadlineShed as error:
                raise HttpError(503, "deadline_shed", str(error)) from None
            except KeyError as error:
                raise HttpError(404, "unknown_resource", f"unknown resource: {error}") from None
            except ValueError as error:
                raise HttpError(400, "bad_value", str(error)) from None
            except ConnectionError:
                raise
            except Exception as error:  # noqa: BLE001 - map to 500, keep serving
                raise HttpError(
                    500, "internal_error", f"{type(error).__name__}: {error}"
                ) from None
        except HttpError as error:
            status = error.status
            await write_response(
                writer, error.status, error.payload(), keep_alive=keep_alive,
                extra_headers=headers,
            )
            return True
        finally:
            if timer is not None:
                self._record_http(request, operation, status, timer, request_id)

    def _record_http(
        self,
        request: HttpRequest,
        operation: str,
        status: int,
        timer: Tuple[float, float],
        request_id: int,
    ) -> None:
        """Emit the middleware's metrics record for one served request."""
        started_s, started_pc = timer
        session_id = self._session_from_path(request.path)
        tenant = session_id
        if session_id:
            try:
                tenant = self.service.manager.get_session(session_id).tenant
            except KeyError:
                pass
        if status < 400:
            outcome = OUTCOME_OK
        elif status == 429:
            outcome = OUTCOME_REJECTED
        elif status == 503:
            outcome = OUTCOME_SHED
        else:
            outcome = OUTCOME_ERROR
        self.service.metrics.observe(
            tenant=tenant,
            session_id=session_id,
            operation=operation,
            outcome=outcome,
            started_s=started_s,
            duration_s=time.perf_counter() - started_pc,
            num_bytes=len(request.body),
            request_id=request_id,
        )

    @staticmethod
    def _session_from_path(path: str) -> str:
        """The ``{sid}`` segment of a ``/v1/sessions/...`` path ('' if none)."""
        parts = [part for part in path.split("/") if part]
        if len(parts) >= 3 and parts[0] == "v1" and parts[1] in ("sessions",):
            return parts[2]
        if len(parts) >= 4 and parts[:3] == ["v1", "metrics", "sessions"]:
            return parts[3]
        return ""

    def _route(
        self, request: HttpRequest
    ) -> Optional[Tuple[Callable[..., Awaitable[Tuple[int, object]]], tuple]]:
        method = request.method
        parts = [part for part in request.path.split("/") if part]
        if parts == ["healthz"] and method == "GET":
            return self._handle_healthz, ()
        if not parts or parts[0] != "v1":
            return None
        parts = parts[1:]
        if parts == ["stats"] and method == "GET":
            return self._handle_stats, ()
        if parts == ["metrics"] and method == "GET":
            return self._handle_metrics, ()
        if (
            len(parts) == 3
            and parts[0] == "metrics"
            and parts[1] == "sessions"
            and method == "GET"
        ):
            return self._handle_metrics_session, (parts[2],)
        if parts == ["flush_all"] and method == "POST":
            return self._handle_flush_all, ()
        if parts and parts[0] == "jobs" and method == "GET":
            if len(parts) == 1:
                return self._handle_jobs_list, ()
            if len(parts) == 2:
                return self._handle_job_get, (parts[1],)
            if len(parts) == 3 and parts[2] == "result":
                return self._handle_job_result, (parts[1],)
            return None
        if parts and parts[0] == "sessions":
            if len(parts) == 1:
                if method == "GET":
                    return self._handle_sessions_list, ()
                if method == "POST":
                    return self._handle_session_create, ()
                return None
            sid = parts[1]
            rest = parts[2:]
            if not rest:
                if method == "GET":
                    return self._handle_session_get, (sid,)
                if method == "DELETE":
                    return self._handle_session_delete, (sid,)
                return None
            if rest == ["scans"] and method == "POST":
                return self._handle_scan_submit, (sid,)
            if rest == ["flush"] and method == "POST":
                return self._handle_flush, (sid,)
            if rest == ["query"] and method == "POST":
                return self._handle_query, (sid,)
            if rest == ["query", "batch"] and method == "POST":
                return self._handle_query_batch, (sid,)
            if rest == ["query", "bbox"] and method == "POST":
                return self._handle_bbox, (sid,)
            if rest == ["raycast"] and method == "POST":
                return self._handle_raycast, (sid,)
            if rest == ["export"] and method == "POST":
                return self._handle_export, (sid,)
            if rest and rest[0] == "uploads":
                return self._route_uploads(method, sid, rest[1:])
        return None

    def _route_uploads(self, method: str, sid: str, rest: List[str]):
        if not rest:
            return (self._handle_upload_init, (sid,)) if method == "POST" else None
        uid = rest[0]
        tail = rest[1:]
        if not tail:
            if method == "GET":
                return self._handle_upload_status, (sid, uid)
            if method == "DELETE":
                return self._handle_upload_abort, (sid, uid)
            return None
        if tail == ["commit"] and method == "POST":
            return self._handle_upload_commit, (sid, uid)
        if len(tail) == 2 and tail[0] == "chunks" and method == "PUT":
            try:
                index = int(tail[1])
            except ValueError:
                raise HttpError(
                    400, "bad_chunk_index", f"chunk index must be an integer, got {tail[1]!r}"
                ) from None
            return self._handle_upload_chunk, (sid, uid, index)
        return None

    @staticmethod
    def _wants_stream(request: HttpRequest) -> bool:
        flag = request.query.get("stream", "")
        if flag:
            return flag.lower() in ("1", "true", "yes")
        if request.body:
            try:
                return bool(json.loads(request.body.decode("utf-8")).get("stream"))
            except (ValueError, AttributeError):
                return False
        return False

    # ------------------------------------------------------------------
    # Handlers: service + sessions
    # ------------------------------------------------------------------
    async def _handle_healthz(self, request: HttpRequest) -> Tuple[int, dict]:
        return 200, {
            "status": "ok",
            "sessions": len(self.service.manager.session_ids()),
            "pending_requests": self.service.pending_requests(),
            "jobs": len(self.jobs),
            "pending_upload_bytes": self.uploads.pending_bytes(),
        }

    async def _handle_stats(self, request: HttpRequest) -> Tuple[int, dict]:
        return 200, self.service.service_stats.to_dict()

    async def _handle_metrics(self, request: HttpRequest) -> Tuple[int, dict]:
        return 200, self.service.metrics.snapshot()

    async def _handle_metrics_session(
        self, request: HttpRequest, sid: str
    ) -> Tuple[int, dict]:
        # KeyError from an unrecorded session maps to 404 in _dispatch.
        return 200, self.service.metrics.session_snapshot(sid)

    async def _handle_sessions_list(self, request: HttpRequest) -> Tuple[int, dict]:
        return 200, {"sessions": sorted(self.service.manager.session_ids())}

    async def _handle_session_create(self, request: HttpRequest) -> Tuple[int, dict]:
        payload = json_body(request)
        session_id = str(require_field(payload, "session_id"))
        if not session_id:
            raise HttpError(400, "bad_session_id", "session_id must be non-empty")
        config = session_config_from_payload(
            self.service.manager.default_config, payload.get("config")
        )
        existed = session_id in self.service.manager
        session = self.service.get_or_create_session(session_id, config)
        return (200 if existed else 201), {
            "session_id": session_id,
            "created": not existed,
            "backend": session.config.backend,
            "num_shards": session.config.num_shards,
            "scheduler_policy": session.config.scheduler_policy,
            "pipelined": session.config.pipelined,
        }

    async def _handle_session_get(self, request: HttpRequest, sid: str) -> Tuple[int, dict]:
        session = self.service.manager.get_session(sid)
        return 200, session_stats_payload(session.stats)

    async def _handle_session_delete(self, request: HttpRequest, sid: str) -> Tuple[int, dict]:
        dropped_uploads = self.uploads.abort_session(sid)
        await self.service.close_session(sid, drain=True)
        return 200, {"session_id": sid, "closed": True, "aborted_uploads": dropped_uploads}

    # ------------------------------------------------------------------
    # Handlers: ingestion
    # ------------------------------------------------------------------
    async def _handle_scan_submit(self, request: HttpRequest, sid: str) -> Tuple[int, dict]:
        payload = json_body(request)
        scan = scan_request_from_payload(sid, payload)
        wait = bool(payload.get("wait", True))
        receipt = await self.service.submit(scan, wait=wait, auto_create=False)
        return 202, receipt_payload(receipt)

    async def _handle_flush(self, request: HttpRequest, sid: str) -> Tuple[int, dict]:
        reports = await self.service.flush(sid)
        return 200, {"reports": [report_payload(report) for report in reports]}

    # ------------------------------------------------------------------
    # Handlers: queries
    # ------------------------------------------------------------------
    async def _handle_query(self, request: HttpRequest, sid: str) -> Tuple[int, dict]:
        payload = json_body(request)
        x, y, z = point3(require_field(payload, "point"), "point")
        response = await self.service.query(sid, x, y, z)
        return 200, query_payload(response)

    async def _handle_query_batch(self, request: HttpRequest, sid: str) -> Tuple[int, dict]:
        payload = json_body(request)
        points = require_field(payload, "points")
        if not isinstance(points, list):
            raise HttpError(400, "bad_points", "points must be a list of [x, y, z] triples")
        coords = [point3(point, f"points[{i}]") for i, point in enumerate(points)]
        responses = await self.service.query_batch(sid, coords)
        return 200, {"responses": [query_payload(r) for r in responses]}

    async def _handle_bbox(self, request: HttpRequest, sid: str) -> Tuple[int, dict]:
        payload = json_body(request)
        minimum = point3(require_field(payload, "min"), "min")
        maximum = point3(require_field(payload, "max"), "max")
        summary = await self.service.query_bbox(sid, minimum, maximum)
        return 200, bbox_payload(summary)

    async def _stream_bbox(
        self,
        request: HttpRequest,
        writer: asyncio.StreamWriter,
        keep_alive: bool,
        sid: str,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        """NDJSON chunked-transfer variant of the bbox sweep."""
        payload = json_body(request)
        minimum = point3(require_field(payload, "min"), "min")
        maximum = point3(require_field(payload, "max"), "max")
        try:
            chunk_voxels = int(payload.get("chunk_voxels", 1024))
        except (TypeError, ValueError):
            raise HttpError(400, "bad_field", "chunk_voxels must be an integer") from None
        include_voxels = bool(payload.get("include_voxels", True))
        stream = self.service.stream_bbox(
            sid,
            minimum,
            maximum,
            chunk_voxels=chunk_voxels,
            include_voxels=include_voxels,
        )
        # Pull the first chunk before committing to a 200: validation errors
        # (inverted box, guardrail, unknown session) must still map to their
        # JSON error response, which is impossible mid-stream.
        try:
            first = await stream.__anext__()
        except StopAsyncIteration:
            first = None
        await start_chunked_response(
            writer, 200, keep_alive=keep_alive, extra_headers=extra_headers
        )
        if first is not None:
            await write_chunk(writer, bbox_chunk_payload(first, include_voxels))
            async for chunk in stream:
                await write_chunk(writer, bbox_chunk_payload(chunk, include_voxels))
        await end_chunked_response(writer)

    async def _handle_raycast(self, request: HttpRequest, sid: str) -> Tuple[int, dict]:
        payload = json_body(request)
        origin = point3(require_field(payload, "origin"), "origin")
        direction = point3(require_field(payload, "direction"), "direction")
        try:
            max_range = float(require_field(payload, "max_range"))
        except (TypeError, ValueError):
            raise HttpError(400, "bad_field", "max_range must be a number") from None
        response = await self.service.raycast(sid, origin, direction, max_range)
        return 200, raycast_payload(response)

    # ------------------------------------------------------------------
    # Handlers: chunked uploads
    # ------------------------------------------------------------------
    async def _handle_upload_init(self, request: HttpRequest, sid: str) -> Tuple[int, dict]:
        # The session must exist: uploads buffer real memory, so an unknown
        # session must 404 before any chunk is accepted.
        self.service.manager.get_session(sid)
        payload = json_body(request)
        try:
            total_chunks = int(require_field(payload, "total_chunks"))
            total_bytes = int(payload.get("total_bytes", 0))
        except (TypeError, ValueError):
            raise HttpError(400, "bad_upload", "total_chunks/total_bytes must be integers") from None
        record = self.uploads.init(sid, total_chunks, total_bytes)
        return 201, record.payload()

    async def _handle_upload_status(
        self, request: HttpRequest, sid: str, uid: str
    ) -> Tuple[int, dict]:
        return 200, self.uploads.get(sid, uid).payload()

    async def _handle_upload_chunk(
        self, request: HttpRequest, sid: str, uid: str, index: int
    ) -> Tuple[int, dict]:
        record = self.uploads.put_chunk(sid, uid, index, request.body)
        return 200, {
            "upload_id": uid,
            "chunk": index,
            "received_chunks": len(record.chunks),
            "missing_chunks": record.missing_chunks,
        }

    async def _handle_upload_commit(
        self, request: HttpRequest, sid: str, uid: str
    ) -> Tuple[int, dict]:
        scans = self.uploads.commit(sid, uid)
        receipts = []
        for position, scan in enumerate(scans):
            try:
                scan_request = scan_request_from_payload(sid, scan)
            except HttpError as error:
                raise HttpError(
                    error.status,
                    error.code,
                    f"scan {position} of upload {uid!r}: {error.message}",
                    error.detail,
                ) from None
            receipt = await self.service.submit(scan_request, auto_create=False)
            receipts.append(receipt_payload(receipt))
        return 200, {"upload_id": uid, "submitted": len(receipts), "receipts": receipts}

    async def _handle_upload_abort(
        self, request: HttpRequest, sid: str, uid: str
    ) -> Tuple[int, dict]:
        self.uploads.abort(sid, uid)
        return 200, {"upload_id": uid, "aborted": True}

    # ------------------------------------------------------------------
    # Handlers: background jobs
    # ------------------------------------------------------------------
    async def _handle_export(self, request: HttpRequest, sid: str) -> Tuple[int, dict]:
        # Resolve the session now: an unknown id must 404 on the submit,
        # not fail the job after a 202.
        self.service.manager.get_session(sid)
        service = self.service

        async def body(handle) -> dict:
            handle.stage("flush", f"draining session {sid!r}")
            await service.flush(sid)
            handle.stage("export", "stitching shard subtrees")
            tree = await service.export_octree(sid)
            handle.stage("serialize", "encoding the octree")
            data = serialize_tree(tree)
            handle.set_artifact(data, "application/octet-stream")
            return {
                "session_id": sid,
                "leaf_nodes": tree.num_leaf_nodes(),
                "occupied_leafs": sum(1 for _ in tree.iter_occupied()),
                "artifact_bytes": len(data),
            }

        record = self.jobs.start("export", body)
        return 202, record.payload()

    async def _handle_flush_all(self, request: HttpRequest) -> Tuple[int, dict]:
        service = self.service

        async def body(handle) -> dict:
            handle.stage("flush", "draining every session")
            reports = await service.flush_all()
            return {
                "batches": len(reports),
                "scans": sum(report.scans for report in reports),
                "voxel_updates": sum(report.voxel_updates for report in reports),
            }

        record = self.jobs.start("flush_all", body)
        return 202, record.payload()

    async def _handle_jobs_list(self, request: HttpRequest) -> Tuple[int, dict]:
        return 200, {"jobs": [record.payload() for record in self.jobs.records()]}

    async def _handle_job_get(self, request: HttpRequest, job_id: str) -> Tuple[int, dict]:
        record = self.jobs.get(job_id)
        if record is None:
            raise HttpError(404, "unknown_job", f"no job {job_id!r} (expired or never started)")
        return 200, record.payload()

    async def _handle_job_result(self, request: HttpRequest, job_id: str):
        record = self.jobs.get(job_id)
        if record is None:
            raise HttpError(404, "unknown_job", f"no job {job_id!r} (expired or never started)")
        if record.status == "failed":
            raise HttpError(409, "job_failed", f"job {job_id!r} failed: {record.error}")
        if record.status != "done":
            raise HttpError(
                409, "job_not_done", f"job {job_id!r} is still {record.status}; poll until done"
            )
        if record.artifact is None:
            return 200, record.result or {}
        return 200, _Raw(record.artifact, record.artifact_content_type)


class _Raw:
    """Marker wrapper: a handler result that is raw bytes, not JSON."""

    def __init__(self, data: bytes, content_type: str) -> None:
        self.data = data
        self.content_type = content_type
