"""Chunked streaming uploads: scan batches larger than one request body.

The HTTP server caps single request bodies (a malformed or hostile client
must not make it buffer an unbounded POST), which also caps how many scan
points one submit can carry.  The upload protocol lifts that limit without
ever holding more than the declared total in memory:

1. ``POST /v1/sessions/{sid}/uploads`` *initialises* an upload, declaring
   ``total_chunks`` (and optionally ``total_bytes``); the server answers
   with an upload id.
2. ``PUT /v1/sessions/{sid}/uploads/{uid}/chunks/{n}`` sends chunk ``n``
   (0-based) as a raw body.  Chunks may arrive in any order, may be retried
   idempotently (same bytes), and each is bounded by ``max_chunk_bytes``.
3. ``POST /v1/sessions/{sid}/uploads/{uid}/commit`` assembles the chunks in
   index order into one JSON document ``{"scans": [...]}`` and hands the
   decoded scan list to the caller.  Missing chunks refuse the commit with
   the exact indices still owed (the *resumable* part: the client re-sends
   just those and commits again).

Quota rules: a chunk above ``max_chunk_bytes`` is refused (HTTP 413), as is
an upload growing past ``max_upload_bytes`` or the server exceeding
``max_total_bytes`` across all pending uploads (back-pressure against
parallel uploaders).  Aborting or committing an upload releases its bytes.

This module is transport-agnostic state management; the HTTP routing lives
in :mod:`repro.serving.http.server`.  Errors carry the HTTP status the
server should answer with, so the mapping stays in one place.
"""

from __future__ import annotations

import itertools
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = ["UploadError", "UploadRecord", "UploadManager"]


class UploadError(Exception):
    """An upload-protocol violation, tagged with its HTTP status and code."""

    def __init__(self, status: int, code: str, message: str, detail: Optional[dict] = None) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.detail = detail


@dataclass
class UploadRecord:
    """State of one in-flight chunked upload."""

    upload_id: str
    session_id: str
    total_chunks: int
    #: client-declared total size; 0 means "not declared" (the per-upload
    #: cap still applies).
    total_bytes: int
    created_at: float
    chunks: Dict[int, bytes] = field(default_factory=dict)

    @property
    def received_bytes(self) -> int:
        return sum(len(chunk) for chunk in self.chunks.values())

    @property
    def missing_chunks(self) -> List[int]:
        """Indices still owed before the upload can commit."""
        return [index for index in range(self.total_chunks) if index not in self.chunks]

    def payload(self) -> dict:
        """The status-endpoint JSON view."""
        return {
            "upload_id": self.upload_id,
            "session_id": self.session_id,
            "total_chunks": self.total_chunks,
            "received_chunks": len(self.chunks),
            "received_bytes": self.received_bytes,
            "missing_chunks": self.missing_chunks,
        }


class UploadManager:
    """Registry of in-flight uploads with per-chunk and per-upload quotas.

    Args:
        max_chunk_bytes: hard cap on one chunk body (HTTP 413 above it).
        max_upload_bytes: hard cap on one upload's assembled size.
        max_total_bytes: cap on bytes buffered across *all* pending uploads.
        max_chunks: cap on ``total_chunks`` an init may declare.
        stale_ttl_s: uploads idle longer than this are purged lazily, so an
            abandoned client cannot pin quota forever.
        clock: injectable monotonic clock for tests.
    """

    def __init__(
        self,
        max_chunk_bytes: int = 1 << 20,
        max_upload_bytes: int = 64 << 20,
        max_total_bytes: int = 256 << 20,
        max_chunks: int = 4096,
        stale_ttl_s: float = 600.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_chunk_bytes < 1 or max_upload_bytes < 1 or max_total_bytes < 1:
            raise ValueError("upload byte quotas must be positive")
        self.max_chunk_bytes = max_chunk_bytes
        self.max_upload_bytes = max_upload_bytes
        self.max_total_bytes = max_total_bytes
        self.max_chunks = max_chunks
        self.stale_ttl_s = stale_ttl_s
        self._clock = clock
        self._counter = itertools.count(1)
        self._records: Dict[str, UploadRecord] = {}
        self._touched: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Protocol steps
    # ------------------------------------------------------------------
    def init(self, session_id: str, total_chunks: int, total_bytes: int = 0) -> UploadRecord:
        """Open an upload; validates the declared shape against the quotas."""
        self._purge()
        if total_chunks < 1:
            raise UploadError(400, "bad_upload", "total_chunks must be at least 1")
        if total_chunks > self.max_chunks:
            raise UploadError(
                400,
                "bad_upload",
                f"total_chunks {total_chunks} exceeds the {self.max_chunks} limit",
            )
        if total_bytes < 0:
            raise UploadError(400, "bad_upload", "total_bytes must be non-negative")
        if total_bytes > self.max_upload_bytes:
            raise UploadError(
                413,
                "upload_too_large",
                f"declared size {total_bytes} exceeds the per-upload quota "
                f"of {self.max_upload_bytes} bytes",
            )
        record = UploadRecord(
            upload_id=f"upload-{next(self._counter)}",
            session_id=session_id,
            total_chunks=total_chunks,
            total_bytes=total_bytes,
            created_at=self._clock(),
        )
        self._records[record.upload_id] = record
        self._touch(record)
        return record

    def get(self, session_id: str, upload_id: str) -> UploadRecord:
        """Look up an upload; 404 when unknown, expired or session-mismatched."""
        self._purge()
        record = self._records.get(upload_id)
        if record is None or record.session_id != session_id:
            raise UploadError(
                404, "unknown_upload", f"no pending upload {upload_id!r} in session {session_id!r}"
            )
        return record

    def put_chunk(self, session_id: str, upload_id: str, index: int, data: bytes) -> UploadRecord:
        """Store chunk ``index``; idempotent for byte-identical retries."""
        record = self.get(session_id, upload_id)
        if index < 0 or index >= record.total_chunks:
            raise UploadError(
                400,
                "bad_chunk_index",
                f"chunk index {index} outside [0, {record.total_chunks})",
            )
        if len(data) > self.max_chunk_bytes:
            raise UploadError(
                413,
                "chunk_too_large",
                f"chunk of {len(data)} bytes exceeds the {self.max_chunk_bytes}-byte limit",
            )
        existing = record.chunks.get(index)
        if existing is not None and existing != data:
            raise UploadError(
                409,
                "chunk_conflict",
                f"chunk {index} was already uploaded with different content",
            )
        added = 0 if existing is not None else len(data)
        if added:
            if record.received_bytes + added > self.max_upload_bytes:
                raise UploadError(
                    413,
                    "upload_too_large",
                    f"upload would grow past the per-upload quota of "
                    f"{self.max_upload_bytes} bytes",
                )
            if self.pending_bytes() + added > self.max_total_bytes:
                raise UploadError(
                    429,
                    "upload_quota",
                    "server-wide upload buffer is full; retry after pending "
                    "uploads commit or expire",
                )
        record.chunks[index] = data
        self._touch(record)
        return record

    def commit(self, session_id: str, upload_id: str) -> List[dict]:
        """Assemble the chunks and decode the scan list; releases the upload.

        Raises:
            UploadError: 409 with the missing indices when incomplete, 400
                when the assembled document is not ``{"scans": [...]}``.
        """
        record = self.get(session_id, upload_id)
        missing = record.missing_chunks
        if missing:
            raise UploadError(
                409,
                "upload_incomplete",
                f"upload {upload_id!r} is missing {len(missing)} chunk(s); "
                "re-send them and commit again",
                detail={"missing_chunks": missing},
            )
        blob = b"".join(record.chunks[index] for index in range(record.total_chunks))
        if record.total_bytes and len(blob) != record.total_bytes:
            raise UploadError(
                409,
                "size_mismatch",
                f"assembled {len(blob)} bytes but the init declared {record.total_bytes}",
            )
        try:
            document = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise UploadError(
                400, "bad_upload_json", f"assembled upload is not valid JSON: {error}"
            ) from None
        if not isinstance(document, dict) or not isinstance(document.get("scans"), list):
            raise UploadError(
                400, "bad_upload_json", 'assembled upload must be {"scans": [...]}'
            )
        scans = document["scans"]
        if not all(isinstance(scan, dict) for scan in scans):
            raise UploadError(400, "bad_upload_json", "every scan must be a JSON object")
        self._drop(upload_id)
        return scans

    def abort(self, session_id: str, upload_id: str) -> None:
        """Discard an upload and release its buffered bytes."""
        self.get(session_id, upload_id)
        self._drop(upload_id)

    def abort_session(self, session_id: str) -> int:
        """Discard every pending upload of a closed session."""
        doomed = [
            upload_id
            for upload_id, record in self._records.items()
            if record.session_id == session_id
        ]
        for upload_id in doomed:
            self._drop(upload_id)
        return len(doomed)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def pending_bytes(self) -> int:
        """Bytes currently buffered across all pending uploads."""
        return sum(record.received_bytes for record in self._records.values())

    def __len__(self) -> int:
        self._purge()
        return len(self._records)

    def _touch(self, record: UploadRecord) -> None:
        self._touched[record.upload_id] = self._clock()

    def _drop(self, upload_id: str) -> None:
        self._records.pop(upload_id, None)
        self._touched.pop(upload_id, None)

    def _purge(self) -> None:
        now = self._clock()
        expired = [
            upload_id
            for upload_id, touched in self._touched.items()
            if now - touched > self.stale_ttl_s
        ]
        for upload_id in expired:
            self._drop(upload_id)
