"""HTTP/1.1 framing and the JSON wire codecs of the network API.

Two halves, both stdlib-only:

* **Framing** -- a minimal, strict HTTP/1.1 reader/writer over asyncio
  streams: request-head parsing with a size cap, bounded body reads keyed on
  ``Content-Length`` (chunked *request* bodies are rejected -- the upload
  protocol in :mod:`repro.serving.http.uploads` exists precisely so clients
  never need them), plain and chunked-transfer response writers, and
  :class:`HttpError`, the exception handlers raise to produce a JSON error
  response with the right status code.

* **Codecs** -- the JSON representations of the serving-layer dataclasses
  (:class:`~repro.serving.types.ScanRequest` in,
  receipts/reports/query/raycast/bbox/stats payloads out).  These pin the
  network wire format the same way ``serving/types.py`` pins the in-process
  one: every later front end (observability middleware, cross-machine
  sharding) speaks these shapes.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.octomap.pointcloud import PointCloud
from repro.serving.session import SessionConfig
from repro.serving.stats import SessionStats
from repro.serving.types import (
    BatchReport,
    BboxChunk,
    BoxOccupancySummary,
    IngestReceipt,
    QueryResponse,
    RaycastResponse,
    ScanRequest,
)

__all__ = [
    "HttpError",
    "HttpRequest",
    "read_request",
    "write_response",
    "start_chunked_response",
    "write_chunk",
    "end_chunked_response",
    "json_body",
    "require_field",
    "point3",
    "scan_request_from_payload",
    "session_config_from_payload",
    "receipt_payload",
    "report_payload",
    "query_payload",
    "bbox_payload",
    "bbox_chunk_payload",
    "raycast_payload",
    "session_stats_payload",
]

STATUS_REASONS: Dict[int, str] = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

MAX_HEADER_BYTES = 16 * 1024


class HttpError(Exception):
    """A handler failure that maps to one HTTP error response.

    Args:
        status: HTTP status code of the response.
        code: short machine-readable error identifier (stable; clients and
            tests match on it, not on the message).
        message: human-readable explanation.
        detail: optional extra JSON-serialisable context (e.g. the missing
            chunk indices of a refused upload commit).
    """

    def __init__(
        self, status: int, code: str, message: str, detail: Optional[dict] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.detail = detail

    def payload(self) -> dict:
        """The JSON body of the error response."""
        error: Dict[str, Any] = {"code": self.code, "message": self.message}
        if self.detail:
            error["detail"] = self.detail
        return {"error": error}


@dataclass
class HttpRequest:
    """One parsed request: head fields plus the (bounded) body."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Any:
        """The body parsed as JSON; raises :class:`HttpError` 400 on junk."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, "bad_json", f"request body is not valid JSON: {error}") from None


# ---------------------------------------------------------------------------
# Framing: read one request, write one response
# ---------------------------------------------------------------------------
async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int,
    body_cap_for=None,
) -> Optional[HttpRequest]:
    """Read one HTTP/1.1 request off a stream; ``None`` on a clean EOF.

    ``max_body_bytes`` caps the body; ``body_cap_for(method, path)``, when
    given, may return a *larger* per-route cap (the upload-chunk route allows
    bodies up to the configured chunk size even when the general JSON body
    limit is smaller).  An over-limit ``Content-Length`` raises
    :class:`HttpError` 413 before any body byte is read, so oversized
    uploads are refused cheaply.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean EOF between requests (keep-alive close)
        raise HttpError(400, "bad_request", "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(400, "bad_request", "request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(400, "bad_request", "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "bad_request", f"malformed request line: {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    path = unquote(split.path)
    query = dict(parse_qsl(split.query))

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise HttpError(
            411,
            "length_required",
            "chunked request bodies are not supported; use the "
            "init/chunk/commit upload protocol for large payloads",
        )
    length_header = headers.get("content-length", "0")
    try:
        length = int(length_header)
    except ValueError:
        raise HttpError(400, "bad_request", f"bad Content-Length: {length_header!r}") from None
    if length < 0:
        raise HttpError(400, "bad_request", f"bad Content-Length: {length_header!r}")
    cap = max_body_bytes
    if body_cap_for is not None:
        cap = max(cap, body_cap_for(method, path))
    if length > cap:
        raise HttpError(
            413,
            "body_too_large",
            f"request body of {length} bytes exceeds the {cap}-byte limit; "
            "use the chunked upload protocol for large scan batches",
        )
    body = await reader.readexactly(length) if length else b""
    return HttpRequest(method=method, path=path, query=query, headers=headers, body=body)


def _head_bytes(
    status: int,
    content_type: str,
    length: Optional[int],
    keep_alive: bool,
    chunked: bool,
    extra_headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if extra_headers:
        lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    else:
        lines.append(f"Content-Length: {length or 0}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Any = None,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Optional[Mapping[str, str]] = None,
) -> None:
    """Write one complete response; dict payloads are JSON-encoded."""
    if payload is None:
        body = b""
    elif isinstance(payload, (bytes, bytearray)):
        body = bytes(payload)
    else:
        body = (json.dumps(payload) + "\n").encode("utf-8")
    writer.write(
        _head_bytes(
            status, content_type, len(body), keep_alive, chunked=False,
            extra_headers=extra_headers,
        )
    )
    if body:
        writer.write(body)
    await writer.drain()


async def start_chunked_response(
    writer: asyncio.StreamWriter,
    status: int = 200,
    *,
    content_type: str = "application/x-ndjson",
    keep_alive: bool = True,
    extra_headers: Optional[Mapping[str, str]] = None,
) -> None:
    """Open a chunked-transfer response (follow with :func:`write_chunk`)."""
    writer.write(
        _head_bytes(
            status, content_type, None, keep_alive, chunked=True,
            extra_headers=extra_headers,
        )
    )
    await writer.drain()


async def write_chunk(writer: asyncio.StreamWriter, data: Any) -> None:
    """Write one chunked-transfer frame; dicts become one NDJSON line."""
    if isinstance(data, (bytes, bytearray)):
        raw = bytes(data)
    else:
        raw = (json.dumps(data) + "\n").encode("utf-8")
    if not raw:
        return  # an empty frame would terminate the chunked stream
    writer.write(f"{len(raw):x}\r\n".encode("latin-1") + raw + b"\r\n")
    await writer.drain()


async def end_chunked_response(writer: asyncio.StreamWriter) -> None:
    """Terminate a chunked-transfer response."""
    writer.write(b"0\r\n\r\n")
    await writer.drain()


# ---------------------------------------------------------------------------
# Payload access helpers
# ---------------------------------------------------------------------------
def json_body(request: HttpRequest) -> dict:
    """The request body as a JSON object (400 unless it is a dict)."""
    if not request.body:
        return {}
    payload = request.json()
    if not isinstance(payload, dict):
        raise HttpError(400, "bad_json", "request body must be a JSON object")
    return payload


def require_field(payload: Mapping, field: str) -> Any:
    """Fetch a required field; raises :class:`HttpError` 400 when absent."""
    try:
        return payload[field]
    except KeyError:
        raise HttpError(400, "missing_field", f"missing required field {field!r}") from None


def point3(value: Any, field: str) -> Tuple[float, float, float]:
    """Coerce a JSON value into an ``(x, y, z)`` float triple (400 on junk)."""
    try:
        x, y, z = (float(component) for component in value)
    except (TypeError, ValueError):
        raise HttpError(
            400, "bad_point", f"field {field!r} must be a [x, y, z] number triple"
        ) from None
    return (x, y, z)


# ---------------------------------------------------------------------------
# Domain codecs
# ---------------------------------------------------------------------------
def scan_request_from_payload(session_id: str, payload: Mapping) -> ScanRequest:
    """Build a :class:`ScanRequest` from its JSON representation.

    Expected shape::

        {"points": [[x, y, z], ...],      # world-frame scan points
         "origin": [x, y, z],             # sensor origin, world frame
         "max_range": 15.0,               # optional, -1 disables truncation
         "priority": 0,                   # optional
         "deadline_in_s": 0.25,           # optional, relative seconds from
                                          # arrival (converted to the
                                          # service's monotonic clock)
         "client_id": "drone-7"}          # optional

    Raises :class:`HttpError` 400 on any shape violation.
    """
    points = require_field(payload, "points")
    try:
        cloud = PointCloud(points)
    except (TypeError, ValueError) as error:
        raise HttpError(400, "bad_points", f"bad scan points: {error}") from None
    origin = point3(require_field(payload, "origin"), "origin")
    try:
        max_range = float(payload.get("max_range", -1.0))
        priority = int(payload.get("priority", 0))
    except (TypeError, ValueError) as error:
        raise HttpError(400, "bad_field", f"bad scan field: {error}") from None
    deadline_s = float("inf")
    if payload.get("deadline_in_s") is not None:
        try:
            deadline_in = float(payload["deadline_in_s"])
        except (TypeError, ValueError):
            raise HttpError(400, "bad_field", "deadline_in_s must be a number") from None
        deadline_s = time.monotonic() + deadline_in
    client_id = str(payload.get("client_id", ""))
    return ScanRequest(
        session_id=session_id,
        cloud=cloud,
        origin=origin,
        max_range=max_range,
        priority=priority,
        deadline_s=deadline_s,
        client_id=client_id,
    )


_CONFIG_FIELDS = (
    "num_shards",
    "shard_prefix_levels",
    "backend",
    "pipelined",
    "mp_start_method",
    "scheduler_policy",
    "batch_size",
    "cache_capacity",
    "default_max_range",
    "admission_queue_limit",
    "tenant",
    "quota_points_per_s",
    "quota_burst_s",
)


def session_config_from_payload(
    default: SessionConfig, payload: Optional[Mapping]
) -> Optional[SessionConfig]:
    """Derive a session config from the service default plus JSON overrides.

    ``None``/empty payload means "adopt the service default" (returns
    ``None`` so ``get_or_create_session`` skips the conflict check).  The
    overridable knobs are the scalar :class:`SessionConfig` fields plus
    ``resolution_m``; unknown keys and invalid values raise
    :class:`HttpError` 400.
    """
    if not payload:
        return None
    overrides = dict(payload)
    resolution = overrides.pop("resolution_m", None)
    unknown = sorted(set(overrides) - set(_CONFIG_FIELDS))
    if unknown:
        raise HttpError(
            400,
            "bad_config",
            f"unknown session config field(s) {unknown}; "
            f"allowed: {sorted(_CONFIG_FIELDS + ('resolution_m',))}",
        )
    try:
        config = replace(default, **overrides)
        if resolution is not None:
            config = config.with_resolution(float(resolution))
    except (TypeError, ValueError) as error:
        raise HttpError(400, "bad_config", f"bad session config: {error}") from None
    return config


def receipt_payload(receipt: IngestReceipt) -> dict:
    return {
        "request_id": receipt.request_id,
        "session_id": receipt.session_id,
        "num_points": receipt.num_points,
        "queue_depth": receipt.queue_depth,
    }


def report_payload(report: BatchReport) -> dict:
    return {
        "session_id": report.session_id,
        "batch_id": report.batch_id,
        "request_ids": list(report.request_ids),
        "scans": report.scans,
        "rays_cast": report.rays_cast,
        "voxel_updates": report.voxel_updates,
        "duplicates_removed": report.duplicates_removed,
        "shard_updates": list(report.shard_updates),
        "modelled_cycles": report.modelled_cycles,
        "wall_seconds": report.wall_seconds,
        "pipelined": report.pipelined,
        "backend": report.backend,
        "deadline_misses": report.deadline_misses,
    }


def query_payload(response: QueryResponse) -> dict:
    return {
        "status": response.status,
        "probability": response.probability,
        "shard_id": response.shard_id,
        "cached": response.cached,
        "cycles": response.cycles,
    }


def bbox_payload(summary: BoxOccupancySummary) -> dict:
    return {
        "occupied": summary.occupied,
        "free": summary.free,
        "unknown": summary.unknown,
        "voxels_scanned": summary.voxels_scanned,
        "cache_hits": summary.cache_hits,
    }


def bbox_chunk_payload(chunk: BboxChunk, include_voxels: bool = True) -> dict:
    payload = {
        "chunk": chunk.index,
        "occupied": chunk.occupied,
        "free": chunk.free,
        "unknown": chunk.unknown,
        "cache_hits": chunk.cache_hits,
        "voxels_total": chunk.voxels_total,
    }
    if include_voxels:
        payload["voxels"] = [list(voxel) for voxel in chunk.voxels]
    return payload


def raycast_payload(response: RaycastResponse) -> dict:
    return {
        "hit": response.hit,
        "hit_point": list(response.hit_point) if response.hit_point else None,
        "distance": response.distance,
        "voxels_traversed": response.voxels_traversed,
        "cache_hits": response.cache_hits,
    }


def session_stats_payload(stats: SessionStats) -> dict:
    """One session's counters as machine-readable JSON (no table rendering).

    Delegates to :meth:`~repro.serving.stats.SessionStats.to_dict` so the
    wire shape, the rendered tables, and the ``--metrics-json`` dump all
    read one source of truth.
    """
    return stats.to_dict()


def _list_payloads(items: Sequence, codec) -> List[dict]:
    return [codec(item) for item in items]
