"""The service front door: many named map sessions behind one manager.

:class:`MapSessionManager` is what a network front end (REST, gRPC or the
future asyncio layer) would hold: it creates and looks up named
:class:`~repro.serving.session.MapSession` instances, assigns globally unique
request ids, routes scan requests and queries to the right session, and
aggregates every session's counters into one
:class:`~repro.serving.stats.ServiceStats` view.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serving.fleet import BackendPool
from repro.serving.metrics import MetricsStore
from repro.serving.session import MapSession, SessionConfig
from repro.serving.stats import ServiceStats
from repro.serving.types import BatchReport, IngestReceipt, ScanRequest

__all__ = ["MapSessionManager"]


class MapSessionManager:
    """Owns the map sessions of one service instance.

    Fleet lifecycle: when a session's config sets ``fleet_workers > 0``, the
    manager lazily stands up one shared :class:`~repro.serving.fleet.
    BackendPool` per ``(backend, fleet_workers)`` combination and every such
    session leases execution from it instead of owning workers.  The fleets
    live for the manager's whole life -- session churn attaches and releases
    leases without spawning or reaping a single OS resource -- and
    :meth:`shutdown` closes them after the last session released its lease.
    """

    def __init__(
        self,
        default_config: Optional[SessionConfig] = None,
        metrics: Optional[MetricsStore] = None,
    ) -> None:
        self.default_config = default_config if default_config is not None else SessionConfig()
        self.service_stats = ServiceStats()
        #: the service's single metrics sink; sessions, the asyncio front
        #: end, and the HTTP middleware all record into this one store.
        self.metrics = metrics if metrics is not None else MetricsStore()
        self._sessions: Dict[str, MapSession] = {}
        self._fleets: Dict[Tuple[str, int], BackendPool] = {}
        self._next_request_id = 0

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def _fleet_for(self, config: SessionConfig) -> Optional[BackendPool]:
        """The shared fleet this config leases from (created on first use)."""
        if config.fleet_workers < 1:
            return None
        key = (config.backend, config.fleet_workers)
        fleet = self._fleets.get(key)
        if fleet is None:
            fleet = BackendPool(
                config.backend,
                config.fleet_workers,
                start_method=config.mp_start_method,
                endpoints=config.workers,
                heartbeat_interval_s=config.heartbeat_interval_s,
            )
            self._fleets[key] = fleet
        return fleet

    @property
    def fleets(self) -> Tuple[BackendPool, ...]:
        """The shared backend fleets this manager stood up (observability)."""
        return tuple(self._fleets.values())

    def create_session(
        self, session_id: str, config: Optional[SessionConfig] = None
    ) -> MapSession:
        """Create a named session; raises if the name is taken."""
        if session_id in self._sessions:
            raise ValueError(f"session {session_id!r} already exists")
        resolved = config if config is not None else self.default_config
        session = MapSession(
            session_id,
            resolved,
            metrics=self.metrics,
            backend_pool=self._fleet_for(resolved),
        )
        self._sessions[session_id] = session
        self.service_stats.register(session.stats)
        return session

    def get_session(self, session_id: str) -> MapSession:
        """Look up a session by name; raises KeyError when absent."""
        try:
            return self._sessions[session_id]
        except KeyError:
            raise KeyError(
                f"unknown session {session_id!r}; live sessions: {sorted(self._sessions)}"
            ) from None

    def get_or_create_session(
        self, session_id: str, config: Optional[SessionConfig] = None
    ) -> MapSession:
        """Look up a session, creating it on first use.

        Raises:
            ValueError: when the session already exists and ``config`` names
                *different* settings than it was created with.  Silently
                returning the existing session would hand the caller a map
                with a different resolution / shard count / backend than the
                one it asked for; a caller that does not care passes
                ``config=None``.
        """
        if session_id not in self._sessions:
            return self.create_session(session_id, config)
        session = self._sessions[session_id]
        if config is not None and config != session.config:
            raise ValueError(
                f"session {session_id!r} already exists with a different "
                f"config; close it first or pass config=None to adopt the "
                f"existing settings (existing: {session.config}, requested: {config})"
            )
        return session

    def close_session(self, session_id: str) -> MapSession:
        """Remove a session from the service and return it to the caller.

        The session object stays usable (e.g. for a final export) -- its
        execution backend is *not* released; call
        :meth:`MapSession.close` when done with it.  It is just no longer
        served or aggregated.
        """
        session = self.get_session(session_id)
        del self._sessions[session_id]
        self.service_stats.forget(session_id)
        return session

    def shutdown(self) -> None:
        """Release every live session's execution backend (worker processes).

        Sessions stay registered and queryable-in-principle is *not*
        guaranteed afterwards; this is the service's end-of-life hook (and
        what the context-manager exit calls).  Idempotent.

        Sessions close first (each releasing its fleet lease, if any), then
        the shared fleets themselves are torn down.
        """
        for session in self._sessions.values():
            session.close()
        for fleet in self._fleets.values():
            fleet.close()
        # Drop the closed pools: a later create_session builds a fresh fleet
        # instead of leasing on a dead one.
        self._fleets.clear()

    def __enter__(self) -> "MapSessionManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def session_ids(self) -> Tuple[str, ...]:
        """Names of every live session, sorted."""
        return tuple(sorted(self._sessions))

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def stamp_request(self, request: ScanRequest) -> ScanRequest:
        """Assign the next globally unique request id to a request.

        Shared by the synchronous :meth:`submit` path and the asyncio front
        end (:class:`repro.serving.aio.AsyncMapService`), which stamps at
        admission time so receipts can be issued before the background
        flusher ever touches the session.
        """
        stamped = request.with_request_id(self._next_request_id)
        self._next_request_id += 1
        return stamped

    def submit(self, request: ScanRequest, auto_create: bool = True) -> IngestReceipt:
        """Stamp a request id and admit the request into its session."""
        session = (
            self.get_or_create_session(request.session_id)
            if auto_create
            else self.get_session(request.session_id)
        )
        return session.submit(self.stamp_request(request))

    def flush(self, session_id: str) -> Optional[BatchReport]:
        """Dispatch one batch of one session."""
        return self.get_session(session_id).flush()

    def flush_all(self) -> List[BatchReport]:
        """Drain every session's admission queue (round-robin by session)."""
        reports: List[BatchReport] = []
        # Round-robin one batch at a time so no session starves another.
        progressed = True
        while progressed:
            progressed = False
            for session_id in self.session_ids():
                report = self._sessions[session_id].flush()
                if report is not None:
                    reports.append(report)
                    progressed = True
        return reports

    def ingest(self, request: ScanRequest, auto_create: bool = True) -> BatchReport:
        """Submit one request and dispatch its session immediately."""
        if not self.metrics.enabled:
            return self._ingest(request, auto_create=auto_create)
        started_s = self.metrics.clock()
        started_pc = time.perf_counter()
        outcome = "ok"
        try:
            return self._ingest(request, auto_create=auto_create)
        except Exception:
            outcome = "error"
            raise
        finally:
            session = self._sessions.get(request.session_id)
            self.metrics.observe(
                tenant=session.tenant if session else request.session_id,
                session_id=request.session_id,
                operation="ingest",
                outcome=outcome,
                started_s=started_s,
                duration_s=time.perf_counter() - started_pc,
                num_bytes=len(request.cloud),
                request_id=request.request_id,
            )

    def _ingest(self, request: ScanRequest, auto_create: bool = True) -> BatchReport:
        receipt = self.submit(request, auto_create=auto_create)
        session = self.get_session(request.session_id)
        reports = session.flush_all()
        if not reports:
            # Not an assert: under ``python -O`` an assert vanishes and the
            # caller would get an IndexError off the empty list instead of a
            # diagnosis of the broken dispatch invariant.
            raise RuntimeError(
                f"submit produced receipt {receipt} but flush dispatched nothing"
            )
        return reports[-1]

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def query(self, session_id: str, x: float, y: float, z: float):
        """Point occupancy query against one session's map."""
        return self.get_session(session_id).query(x, y, z)

    def query_batch(self, session_id: str, points: Sequence[Sequence[float]]):
        """Batch point query against one session's map."""
        return self.get_session(session_id).query_batch(points)

    def query_bbox(self, session_id: str, minimum: Sequence[float], maximum: Sequence[float]):
        """Bounding-box sweep against one session's map."""
        return self.get_session(session_id).query_bbox(minimum, maximum)

    def raycast(
        self,
        session_id: str,
        origin: Sequence[float],
        direction: Sequence[float],
        max_range: float,
    ):
        """Collision raycast against one session's map."""
        return self.get_session(session_id).raycast(origin, direction, max_range)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_requests(self) -> int:
        """Admitted-but-undispatched requests across all sessions."""
        return sum(session.pending_requests() for session in self._sessions.values())

    def render_stats(self) -> str:
        """The aggregated per-session counter tables, ready to print."""
        return self.service_stats.render()
