"""Queryable metrics pipeline + per-tenant accounting for the serving stack.

Before this package, the serving layer's only observability surface was
:class:`~repro.serving.stats.ServiceStats` -- process-local counters rendered
as ASCII tables at exit.  An operator of the HTTP front end could not answer
"what is p99 submit latency for session X over the last minute, and who is
eating the backend?".  This package is that answer, in four pieces:

* :mod:`~repro.serving.metrics.records` -- :class:`RequestRecord`, the
  compact per-request outcome record every instrumented entry point emits
  (monotonic start/duration, tenant/session, operation, outcome
  ok/rejected/shed/error, bytes, batch size, queue depth at admission).
* :mod:`~repro.serving.metrics.histogram` -- :class:`LatencyHistogram`, a
  fixed log-bucket histogram answering p50/p95/p99 without raw-sample
  sorting on the hot path.
* :mod:`~repro.serving.metrics.store` -- :class:`MetricsStore`, the bounded
  in-memory sink: a ring of recent records plus windowed rollups keyed by
  ``(tenant, session, operation, window)`` and never-evicted cumulative
  totals, all queryable as plain dicts / JSON (``GET /v1/metrics``,
  ``repro-serve --metrics-json``).
* :mod:`~repro.serving.metrics.qos` -- the admission QoS policies the
  pipeline accounts for: per-tenant token-bucket quotas
  (:class:`TenantQuotaRegistry` -> :class:`TenantQuotaExceeded`) and
  deadline-miss shedding (:class:`DeadlineShedPolicy` ->
  :class:`DeadlineShed`).

Instrumentation points: :class:`~repro.serving.manager.MapSessionManager`
owns the store and records its synchronous ``ingest``/``submit`` door; the
:class:`~repro.serving.batching.IngestionPipeline` records every dispatched
batch's apply/drain (operation ``batch_apply``);
:class:`~repro.serving.aio.AsyncMapService` records submit / flush / query /
stream coroutines and enforces the QoS policies at admission; and the HTTP
server's middleware records every request under an ``http:<handler>``
operation tag while echoing an ``X-Request-Id`` header.
"""

from repro.serving.metrics.histogram import LatencyHistogram, default_bounds
from repro.serving.metrics.qos import (
    DeadlineShed,
    DeadlineShedPolicy,
    TenantQuota,
    TenantQuotaExceeded,
    TenantQuotaRegistry,
)
from repro.serving.metrics.records import (
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_REJECTED,
    OUTCOME_SHED,
    OUTCOMES,
    RequestRecord,
)
from repro.serving.metrics.store import MetricsStore, OperationRollup, write_metrics_json

__all__ = [
    "DeadlineShed",
    "DeadlineShedPolicy",
    "LatencyHistogram",
    "MetricsStore",
    "OperationRollup",
    "OUTCOME_ERROR",
    "OUTCOME_OK",
    "OUTCOME_REJECTED",
    "OUTCOME_SHED",
    "OUTCOMES",
    "RequestRecord",
    "TenantQuota",
    "TenantQuotaExceeded",
    "TenantQuotaRegistry",
    "default_bounds",
    "write_metrics_json",
]
