"""Fixed-bucket latency histogram: percentiles without raw-sample sorting.

The metrics pipeline must answer "p99 submit latency over the last minute"
without keeping (or sorting) raw samples on the hot path.
:class:`LatencyHistogram` therefore buckets observations into a fixed
log-spaced grid at ``observe`` time -- one ``bisect`` plus one increment per
sample, O(1) memory -- and interpolates percentiles out of the bucket counts
on demand.

Accuracy: with the default grid (%(buckets)d buckets, %(per_decade)d per
decade from 1 microsecond to 100 seconds) any reported percentile is within
one bucket of the true sample, i.e. a relative error bounded by the bucket
ratio ``10^(1/%(per_decade)d) - 1`` (about 26%%).  The test suite pins this
bound against sorted raw samples.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence

__all__ = ["LatencyHistogram", "default_bounds"]


def default_bounds(
    minimum_s: float = 1e-6, maximum_s: float = 100.0, per_decade: int = 10
) -> List[float]:
    """Log-spaced bucket upper bounds from ``minimum_s`` to ``maximum_s``.

    ``per_decade`` buckets per factor of ten; the grid is computed once per
    histogram *class* use, never per sample.
    """
    if minimum_s <= 0 or maximum_s <= minimum_s:
        raise ValueError("need 0 < minimum_s < maximum_s")
    if per_decade < 1:
        raise ValueError("per_decade must be at least 1")
    bounds: List[float] = []
    ratio = 10.0 ** (1.0 / per_decade)
    bound = minimum_s
    while bound < maximum_s * (1.0 + 1e-12):
        bounds.append(bound)
        bound *= ratio
    return bounds


_DEFAULT_BOUNDS: List[float] = default_bounds()

if __doc__:  # pragma: no branch - docstring formatting only
    __doc__ = __doc__ % {
        "buckets": len(_DEFAULT_BOUNDS) + 1,
        "per_decade": 10,
    }


class LatencyHistogram:
    """Bounded-memory histogram of request durations (seconds).

    Args:
        bounds: ascending bucket upper bounds in seconds; samples above the
            last bound land in one overflow bucket.  Defaults to the shared
            log grid of :func:`default_bounds`, which every histogram in the
            process reuses (so merging is cheap and always well-defined).
    """

    __slots__ = ("bounds", "counts", "total", "sum_s", "min_s", "max_s")

    def __init__(self, bounds: Sequence[float] = None) -> None:
        self.bounds: Sequence[float] = _DEFAULT_BOUNDS if bounds is None else list(bounds)
        if any(b <= 0 for b in self.bounds) or list(self.bounds) != sorted(self.bounds):
            raise ValueError("bounds must be positive and ascending")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        """Record one duration (negative values clamp to zero)."""
        if seconds < 0.0:
            seconds = 0.0
        self.counts[bisect_right(self.bounds, seconds)] += 1
        self.total += 1
        self.sum_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram (same bucket grid) into this one."""
        if list(other.bounds) != list(self.bounds):
            raise ValueError("cannot merge histograms with different bucket bounds")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.sum_s += other.sum_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)

    @property
    def mean_s(self) -> float:
        """Mean observed duration (0.0 when empty)."""
        return self.sum_s / self.total if self.total else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (``q`` in [0, 100]) in seconds.

        Walks the cumulative bucket counts to the target rank and linearly
        interpolates within the winning bucket; the result is clamped to the
        observed ``[min, max]`` so tiny samples never report a value outside
        what was actually seen.  0.0 when empty.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if self.total == 0:
            return 0.0
        rank = q / 100.0 * self.total
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank and count:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else max(self.max_s, self.bounds[-1])
                )
                fraction = (rank - (cumulative - count)) / count
                value = lower + fraction * (upper - lower)
                return min(max(value, self.min_s), self.max_s)
        return self.max_s

    def quantiles(self) -> dict:
        """The standard dashboard quantile block (milliseconds)."""
        return {
            "p50_ms": 1e3 * self.percentile(50.0),
            "p95_ms": 1e3 * self.percentile(95.0),
            "p99_ms": 1e3 * self.percentile(99.0),
            "mean_ms": 1e3 * self.mean_s,
            "max_ms": 1e3 * (self.max_s if self.total else 0.0),
        }

    def to_dict(self, include_buckets: bool = False) -> dict:
        """Plain-dict view: count + quantiles (+ raw buckets on request)."""
        payload = {"count": self.total, **self.quantiles()}
        if include_buckets:
            payload["bucket_bounds_s"] = list(self.bounds)
            payload["bucket_counts"] = list(self.counts)
        return payload
