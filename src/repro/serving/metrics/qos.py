"""QoS policies of the admission path: per-tenant quotas + deadline shedding.

Two long-standing ROADMAP items fold in here, both enforced at *admission*
(inside :meth:`repro.serving.aio.AsyncMapService.submit`) so no backend time
is ever spent on work that was never going to be served:

* **Per-tenant quotas** -- a token bucket per tenant
  (:class:`TenantQuota`), budgeted in scan points (the pre-dedup voxel
  updates a submit will generate) per second.  One greedy session cannot
  starve a shared backend: once a tenant's bucket runs dry its submits get a
  typed :class:`TenantQuotaExceeded` reject -- with a ``retry_after_s`` hint
  -- which the metrics pipeline counts as outcome ``rejected`` and the stats
  layer as ``quota_rejects``.  Sessions of one tenant share one bucket
  (``SessionConfig.tenant`` defaults to the session id, so the default is
  per-session isolation).

* **Deadline-miss shedding** -- :class:`DeadlineShedPolicy` keeps an
  exponential moving average of per-request ingest cost (fed by the flusher)
  and compares each deadline-carrying submit's *feasible horizon* --
  ``now + queue_depth x ema_seconds_per_request`` -- against its deadline.
  A request that already cannot meet its deadline (including one whose
  deadline has passed outright) is dropped with a typed
  :class:`DeadlineShed` instead of burning ray-casting and shard-apply time
  on an already-dead request; metrics outcome ``shed``, stats counter
  ``shed_requests``.

Both policies take an injectable monotonic clock, so the QoS tests pin their
accounting deterministically with a fake clock.
"""

from __future__ import annotations

import time
from typing import Callable, Dict

__all__ = [
    "DeadlineShed",
    "DeadlineShedPolicy",
    "TenantQuota",
    "TenantQuotaExceeded",
    "TenantQuotaRegistry",
]


class TenantQuotaExceeded(RuntimeError):
    """A submit found its tenant's update-rate budget exhausted."""

    def __init__(self, tenant: str, rate_per_s: float, retry_after_s: float) -> None:
        super().__init__(
            f"tenant {tenant!r} is over its ingest budget of "
            f"{rate_per_s:g} points/s; retry in {retry_after_s:.3f}s"
        )
        self.tenant = tenant
        self.rate_per_s = rate_per_s
        self.retry_after_s = retry_after_s


class DeadlineShed(RuntimeError):
    """A submit was dropped because its deadline cannot be met.

    ``deadline_s`` and ``feasible_s`` are on the service's monotonic clock:
    the request would earliest be served at ``feasible_s``, which is already
    past ``deadline_s`` -- ingesting it would burn backend time on a result
    nobody can use.
    """

    def __init__(self, session_id: str, deadline_s: float, feasible_s: float) -> None:
        super().__init__(
            f"request for session {session_id!r} shed: deadline at "
            f"t={deadline_s:.3f}s but earliest feasible service at "
            f"t={feasible_s:.3f}s (monotonic clock)"
        )
        self.session_id = session_id
        self.deadline_s = deadline_s
        self.feasible_s = feasible_s


class TenantQuota:
    """Token bucket metering one tenant's admitted scan points per second.

    Args:
        rate_per_s: sustained budget in points per second (> 0).
        burst_s: bucket capacity expressed as seconds of budget (the tenant
            may burst ``rate_per_s * burst_s`` points instantly after idling).
        clock: monotonic time source.

    ``try_charge(cost)`` is the whole API: it refills by elapsed time, then
    either debits ``cost`` and returns ``None`` or returns the seconds until
    enough budget will have accrued.  A single cost larger than the bucket
    capacity is still admitted once the bucket is *full* (the bucket then
    goes negative), so an oversized scan degrades to "at most one per
    ``cost / rate`` seconds" instead of being unservable forever.
    """

    __slots__ = ("rate_per_s", "capacity", "tokens", "clock", "_refilled_at")

    def __init__(
        self,
        rate_per_s: float,
        burst_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate_per_s <= 0.0:
            raise ValueError("rate_per_s must be positive")
        if burst_s <= 0.0:
            raise ValueError("burst_s must be positive")
        self.rate_per_s = rate_per_s
        self.capacity = rate_per_s * burst_s
        self.tokens = self.capacity
        self.clock = clock
        self._refilled_at = clock()

    def _refill(self) -> None:
        now = self.clock()
        elapsed = now - self._refilled_at
        if elapsed > 0.0:
            self.tokens = min(self.capacity, self.tokens + elapsed * self.rate_per_s)
            self._refilled_at = now

    def try_charge(self, cost: float) -> "float | None":
        """Debit ``cost`` points; ``None`` on success, retry-after seconds otherwise."""
        if cost < 0.0:
            raise ValueError("cost must be non-negative")
        self._refill()
        affordable = min(cost, self.capacity)  # oversized costs need a full bucket
        if self.tokens >= affordable:
            self.tokens -= cost
            return None
        return (affordable - self.tokens) / self.rate_per_s

    @property
    def available(self) -> float:
        """Points currently admissible without waiting."""
        self._refill()
        return max(0.0, self.tokens)


class TenantQuotaRegistry:
    """One :class:`TenantQuota` per tenant, created lazily on first charge.

    The registry lives on the service front end; sessions sharing a
    ``SessionConfig.tenant`` share the bucket the *first* such session's
    config created (rate changes require a new tenant name -- the same
    adopt-or-conflict stance ``get_or_create_session`` takes on configs).
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self.clock = clock
        self._buckets: Dict[str, TenantQuota] = {}

    def charge(
        self, tenant: str, cost: float, rate_per_s: float, burst_s: float = 1.0
    ) -> None:
        """Debit a tenant's bucket; raises :class:`TenantQuotaExceeded` when dry.

        ``rate_per_s <= 0`` means "no quota configured" and always admits.
        """
        if rate_per_s <= 0.0:
            return
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TenantQuota(
                rate_per_s, burst_s=burst_s, clock=self.clock
            )
        retry_after = bucket.try_charge(cost)
        if retry_after is not None:
            raise TenantQuotaExceeded(tenant, bucket.rate_per_s, retry_after)

    def bucket(self, tenant: str) -> "TenantQuota | None":
        """The tenant's live bucket, if one was ever created."""
        return self._buckets.get(tenant)


class DeadlineShedPolicy:
    """Feasibility check for deadline-carrying submits.

    Maintains an exponential moving average of observed per-request ingest
    seconds (the flusher feeds :meth:`observe_batch` after every dispatched
    batch) and predicts the earliest feasible service time of a new submit
    as ``now + queue_depth * ema``.  Until the first observation the policy
    only sheds requests whose deadline has *already* passed -- it never
    guesses about capacity it has not measured.

    Args:
        alpha: EMA smoothing factor in (0, 1]; higher tracks faster.
        clock: monotonic time source (tests inject a fake).
    """

    __slots__ = ("alpha", "clock", "ema_seconds_per_request")

    def __init__(
        self, alpha: float = 0.2, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.clock = clock
        self.ema_seconds_per_request = 0.0

    def observe_batch(self, wall_seconds: float, requests: int) -> None:
        """Feed one dispatched batch's wall time into the cost estimate."""
        if requests < 1 or wall_seconds < 0.0:
            return
        sample = wall_seconds / requests
        if self.ema_seconds_per_request == 0.0:
            self.ema_seconds_per_request = sample
        else:
            self.ema_seconds_per_request += self.alpha * (
                sample - self.ema_seconds_per_request
            )

    def feasible_at(self, queue_depth: int) -> float:
        """Earliest monotonic time a request admitted now would be served."""
        return self.clock() + max(0, queue_depth) * self.ema_seconds_per_request

    def check(self, session_id: str, deadline_s: float, queue_depth: int) -> None:
        """Raise :class:`DeadlineShed` when the deadline cannot be met.

        ``inf`` deadlines never shed.
        """
        if deadline_s == float("inf"):
            return
        feasible = self.feasible_at(queue_depth)
        if feasible > deadline_s:
            raise DeadlineShed(session_id, deadline_s, feasible)
