"""The unit of observability: one per-request outcome record.

Every instrumented entry point of the serving stack -- the asyncio front
end's submit/flush/query coroutines, the synchronous
:meth:`~repro.serving.manager.MapSessionManager.ingest` door, the shard
backend apply/drain path, and the HTTP middleware -- emits one
:class:`RequestRecord` per request into the session-manager's
:class:`~repro.serving.metrics.store.MetricsStore`.  Records are deliberately
flat and cheap to construct (one dataclass, no nested objects), because they
are produced on the hot path; everything heavier (windowing, histograms,
percentiles) happens inside the store.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Tuple

__all__ = [
    "OUTCOME_ERROR",
    "OUTCOME_OK",
    "OUTCOME_REJECTED",
    "OUTCOME_SHED",
    "OUTCOMES",
    "RequestRecord",
]

#: the request reached its map / produced its answer.
OUTCOME_OK = "ok"
#: the request was refused at admission (full queue or tenant over quota).
OUTCOME_REJECTED = "rejected"
#: the request was dropped by deadline-miss shedding (it could not have met
#: its deadline, so no backend time was spent on it).
OUTCOME_SHED = "shed"
#: the request failed inside the stack (backend crash, handler exception).
OUTCOME_ERROR = "error"

OUTCOMES: Tuple[str, ...] = (OUTCOME_OK, OUTCOME_REJECTED, OUTCOME_SHED, OUTCOME_ERROR)


@dataclass(frozen=True)
class RequestRecord:
    """One request's outcome, as seen by an instrumentation hook.

    Attributes:
        tenant: accounting principal the request is billed to
            (``SessionConfig.tenant``, defaulting to the session id).
        session_id: map session the request addressed (``""`` for
            service-level operations such as ``flush_all`` or HTTP routes
            that target no session).
        operation: bounded-cardinality operation name -- the serving-layer
            verbs (``submit`` / ``flush`` / ``query`` / ``query_batch`` /
            ``query_bbox`` / ``raycast`` / ``stream_bbox`` / ``export`` /
            ``ingest`` / ``batch_apply``) or an ``http:<handler>`` route tag
            stamped by the middleware.
        outcome: one of :data:`OUTCOMES`.
        started_s: ``time.monotonic``-clock start of the request.
        duration_s: wall-clock seconds the request spent inside the stack.
        num_bytes: payload size the request carried (scan points for
            submits, voxel updates for batch applies, body bytes for HTTP).
        batch_size: requests coalesced when the record covers a batch
            (1 for single-request operations).
        queue_depth: admission-queue depth observed when the request was
            admitted (0 when the operation has no queue).
        request_id: service-assigned id, or ``-1`` when none was stamped.
    """

    tenant: str
    session_id: str
    operation: str
    outcome: str
    started_s: float
    duration_s: float
    num_bytes: int = 0
    batch_size: int = 1
    queue_depth: int = 0
    request_id: int = -1

    def to_dict(self) -> dict:
        """Plain-dict view (the JSON export shape)."""
        return asdict(self)
