"""Bounded in-memory metrics store: ring of records + windowed rollups.

The store is the queryable half of the metrics pipeline.  Instrumentation
hooks push :class:`~repro.serving.metrics.records.RequestRecord`\\ s in;
operators (the ``/v1/metrics`` routes, ``repro-serve --metrics-json``, the
benchmark drivers) read three things out, all as plain dicts:

* **recent records** -- a bounded ring (``collections.deque(maxlen=...)``)
  of the newest raw records, the access-log view;
* **windowed rollups** -- per ``(tenant, session, operation)`` and per
  fixed-length time window: request count, outcome counts (ok / rejected /
  shed / error), bytes, and a fixed-bucket latency histogram answering
  p50/p95/p99 without storing raw samples.  Old windows are evicted once
  more than ``max_windows`` exist per key, so memory stays bounded no matter
  how long the service runs;
* **cumulative totals** -- the same rollup shape, never evicted, so totals
  stay consistent with the :class:`~repro.serving.stats.ServiceStats`
  counters for the life of the process.

Everything is synchronous and lock-free on purpose: records are produced
either on the event-loop thread or under the per-session executor lock, and
a metrics read racing a write can at worst observe one record more or less
-- acceptable for an observability surface, and the price of keeping the
hot path to "append to a deque, bump a few ints".
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.serving.metrics.histogram import LatencyHistogram
from repro.serving.metrics.records import OUTCOMES, RequestRecord

__all__ = ["MetricsStore", "OperationRollup", "write_metrics_json"]


class OperationRollup:
    """Aggregate of one ``(tenant, session, operation)`` stream of records."""

    __slots__ = ("tenant", "session_id", "operation", "outcomes", "num_bytes",
                 "batched_requests", "queue_depth_peak", "latency")

    def __init__(self, tenant: str, session_id: str, operation: str) -> None:
        self.tenant = tenant
        self.session_id = session_id
        self.operation = operation
        self.outcomes: Dict[str, int] = dict.fromkeys(OUTCOMES, 0)
        self.num_bytes = 0
        self.batched_requests = 0
        self.queue_depth_peak = 0
        self.latency = LatencyHistogram()

    def add(self, record: RequestRecord) -> None:
        """Fold one record in."""
        self.outcomes[record.outcome] = self.outcomes.get(record.outcome, 0) + 1
        self.num_bytes += record.num_bytes
        self.batched_requests += record.batch_size
        if record.queue_depth > self.queue_depth_peak:
            self.queue_depth_peak = record.queue_depth
        self.latency.observe(record.duration_s)

    @property
    def count(self) -> int:
        """Records folded into this rollup."""
        return sum(self.outcomes.values())

    @property
    def error_rate(self) -> float:
        """Share of records with outcome ``error`` (0.0 when empty)."""
        count = self.count
        return self.outcomes.get("error", 0) / count if count else 0.0

    @property
    def shed_rate(self) -> float:
        """Share of records rejected or shed before reaching the backend."""
        count = self.count
        if not count:
            return 0.0
        return (self.outcomes.get("rejected", 0) + self.outcomes.get("shed", 0)) / count

    def to_dict(self) -> dict:
        """Plain-dict view (the JSON rollup shape)."""
        return {
            "tenant": self.tenant,
            "session_id": self.session_id,
            "operation": self.operation,
            "count": self.count,
            "outcomes": dict(self.outcomes),
            "error_rate": self.error_rate,
            "shed_rate": self.shed_rate,
            "bytes": self.num_bytes,
            "batched_requests": self.batched_requests,
            "queue_depth_peak": self.queue_depth_peak,
            "latency": self.latency.to_dict(),
        }


_Key = Tuple[str, str, str]  # (tenant, session_id, operation)


class MetricsStore:
    """Request-record sink with bounded memory and windowed rollups.

    Args:
        window_s: length of one rollup window in seconds.
        max_windows: windows retained per ``(tenant, session, operation)``
            key; older windows are evicted as new ones open.
        ring_capacity: newest raw records kept for the access-log view.
        clock: monotonic time source (tests inject a fake).
        enabled: a disabled store drops records at the door -- the
            instrumentation-off half of the ``metrics_overhead`` benchmark
            (hooks also short-circuit their own timing when the store they
            would feed is disabled).
    """

    def __init__(
        self,
        *,
        window_s: float = 10.0,
        max_windows: int = 6,
        ring_capacity: int = 2048,
        clock: Callable[[], float] = time.monotonic,
        enabled: bool = True,
    ) -> None:
        if window_s <= 0.0:
            raise ValueError("window_s must be positive")
        if max_windows < 1:
            raise ValueError("max_windows must be at least 1")
        if ring_capacity < 1:
            raise ValueError("ring_capacity must be at least 1")
        self.window_s = window_s
        self.max_windows = max_windows
        self.clock = clock
        self.enabled = enabled
        self._ring: Deque[RequestRecord] = deque(maxlen=ring_capacity)
        #: key -> window start (a multiple of window_s) -> rollup, insertion
        #: ordered by window start because records arrive in clock order.
        self._windows: Dict[_Key, Dict[float, OperationRollup]] = {}
        self._totals: Dict[_Key, OperationRollup] = {}
        self._records_seen = 0
        self._records_dropped = 0

    # ------------------------------------------------------------------
    # Write side (the hot path)
    # ------------------------------------------------------------------
    def record(self, record: RequestRecord) -> None:
        """Fold one record into the ring, its window rollup, and the totals."""
        if not self.enabled:
            self._records_dropped += 1
            return
        self._records_seen += 1
        self._ring.append(record)
        key = (record.tenant, record.session_id, record.operation)
        totals = self._totals.get(key)
        if totals is None:
            totals = self._totals[key] = OperationRollup(*key)
        totals.add(record)
        window_start = (record.started_s // self.window_s) * self.window_s
        windows = self._windows.get(key)
        if windows is None:
            windows = self._windows[key] = {}
        rollup = windows.get(window_start)
        if rollup is None:
            rollup = windows[window_start] = OperationRollup(*key)
            while len(windows) > self.max_windows:
                # Records arrive in clock order, so the first key is oldest.
                del windows[next(iter(windows))]
        rollup.add(record)

    def observe(
        self,
        *,
        tenant: str,
        session_id: str,
        operation: str,
        outcome: str,
        started_s: float,
        duration_s: float,
        num_bytes: int = 0,
        batch_size: int = 1,
        queue_depth: int = 0,
        request_id: int = -1,
    ) -> None:
        """Convenience: build the :class:`RequestRecord` and :meth:`record` it."""
        if not self.enabled:
            self._records_dropped += 1
            return
        self.record(
            RequestRecord(
                tenant=tenant,
                session_id=session_id,
                operation=operation,
                outcome=outcome,
                started_s=started_s,
                duration_s=duration_s,
                num_bytes=num_bytes,
                batch_size=batch_size,
                queue_depth=queue_depth,
                request_id=request_id,
            )
        )

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def recent(self, limit: Optional[int] = None) -> List[RequestRecord]:
        """The newest raw records, oldest first (access-log view)."""
        records = list(self._ring)
        if limit is not None and limit >= 0:
            records = records[-limit:]
        return records

    def session_ids(self) -> Tuple[str, ...]:
        """Sessions that produced at least one record, sorted."""
        return tuple(sorted({key[1] for key in self._totals if key[1]}))

    def totals(self, session_id: Optional[str] = None) -> List[OperationRollup]:
        """Cumulative per-operation rollups, optionally for one session."""
        rollups = [
            rollup
            for key, rollup in self._totals.items()
            if session_id is None or key[1] == session_id
        ]
        return sorted(rollups, key=lambda r: (r.tenant, r.session_id, r.operation))

    def windows(self, session_id: Optional[str] = None) -> List[Tuple[float, OperationRollup]]:
        """Live ``(window_start, rollup)`` pairs, oldest window first."""
        pairs = [
            (start, rollup)
            for key, windows in self._windows.items()
            if session_id is None or key[1] == session_id
            for start, rollup in windows.items()
        ]
        return sorted(pairs, key=lambda p: (p[0], p[1].tenant, p[1].session_id, p[1].operation))

    def outcome_counts(self) -> Dict[str, int]:
        """Cumulative record counts per outcome, pooled over every key."""
        pooled = dict.fromkeys(OUTCOMES, 0)
        for rollup in self._totals.values():
            for outcome, count in rollup.outcomes.items():
                pooled[outcome] = pooled.get(outcome, 0) + count
        return pooled

    def total_requests(self) -> int:
        """Records folded in since the store was created."""
        return self._records_seen

    def _session_payload(self, session_id: str) -> dict:
        rollups = self.totals(session_id)
        tenant = rollups[0].tenant if rollups else session_id
        return {
            "session_id": session_id,
            "tenant": tenant,
            "operations": {r.operation: r.to_dict() for r in rollups},
            "windows": [
                {"window_start_s": start, **rollup.to_dict()}
                for start, rollup in self.windows(session_id)
            ],
        }

    def snapshot(self) -> dict:
        """The whole store as one JSON-ready dict (the ``/v1/metrics`` body)."""
        service_rollups = self.totals("")
        return {
            "generated_at_s": self.clock(),
            "window_seconds": self.window_s,
            "max_windows": self.max_windows,
            "enabled": self.enabled,
            "totals": {
                "requests": self._records_seen,
                "dropped_records": self._records_dropped,
                "by_outcome": self.outcome_counts(),
            },
            "sessions": {sid: self._session_payload(sid) for sid in self.session_ids()},
            "service": {r.operation: r.to_dict() for r in service_rollups},
        }

    def session_snapshot(self, session_id: str) -> dict:
        """One session's rollups (the ``/v1/metrics/sessions/{id}`` body).

        Raises ``KeyError`` when the session never produced a record.
        """
        if session_id not in self.session_ids():
            raise KeyError(f"no metrics recorded for session {session_id!r}")
        return self._session_payload(session_id)


def write_metrics_json(path, store: MetricsStore, service_stats=None) -> Path:
    """Dump the final metrics snapshot (plus the stats counters) as JSON.

    The file ``repro-serve --metrics-json`` writes on clean exit / SIGTERM:
    the store snapshot under ``"metrics"`` and, when given, the
    :class:`~repro.serving.stats.ServiceStats` counter block under
    ``"service_stats"`` -- the same numbers the ASCII tables render, so a
    dashboard ingests one file.
    """
    path = Path(path)
    payload = {"metrics": store.snapshot()}
    if service_stats is not None:
        payload["service_stats"] = service_stats.to_dict()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
