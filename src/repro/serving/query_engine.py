"""Query engine: cached point / batch / box / raycast queries over shards.

The engine is the read side of a map session.  Every query is resolved at
voxel-key granularity: the key picks the owning shard, the shard's write
generation (tracked by the execution backend, which stays correct even when
the worker lives in another process) validates the cache entry, and only on a
miss does the query reach the shard worker's accelerator through the
backend.  Box sweeps and collision raycasts decompose into point lookups, so
they share the cache and its invalidation rules.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence, Tuple

from repro.octomap.keys import OcTreeKey
from repro.octomap.raycast import compute_ray_keys
from repro.octomap.scan_insertion import clip_segment_to_volume
from repro.serving.backends import ShardBackend
from repro.serving.cache import BboxResultCache, GenerationLRUCache
from repro.serving.sharding import ShardRouter
from repro.serving.stats import SessionStats
from repro.serving.types import (
    BboxChunk,
    BoxOccupancySummary,
    QueryResponse,
    RaycastResponse,
    ShardQueryRequest,
)

__all__ = ["QueryEngine"]


class QueryEngine:
    """Serves occupancy queries for one session, fronted by an LRU cache."""

    def __init__(
        self,
        router: ShardRouter,
        backend: ShardBackend,
        cache: GenerationLRUCache,
        stats: SessionStats,
        max_box_voxels: int = 200_000,
        bbox_cache_capacity: int = 64,
    ) -> None:
        if backend.num_shards != router.num_shards:
            raise ValueError(
                f"router expects {router.num_shards} shards but the backend "
                f"executes {backend.num_shards}"
            )
        self.router = router
        self.backend = backend
        self.cache = cache
        self.stats = stats
        self.max_box_voxels = max_box_voxels
        #: whole-sweep summaries validated by the full generation vector;
        #: shares the point cache's counter block so one stats surface shows
        #: both hit rates.
        self.bbox_cache = BboxResultCache(bbox_cache_capacity, stats=cache.stats)

    # ------------------------------------------------------------------
    # Generations (cache validity)
    # ------------------------------------------------------------------
    def generation_of(self, shard_id: int) -> int:
        """Current write generation of one shard (cache validity stamp)."""
        return self.backend.generation_of(shard_id)

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------
    def query(self, x: float, y: float, z: float) -> QueryResponse:
        """Occupancy of the voxel containing a metric point."""
        try:
            key = self.router.converter.coord_to_key(x, y, z)
        except ValueError:
            # Outside the addressable volume: unknown by definition.
            self.stats.point_queries += 1
            return QueryResponse(status="unknown", probability=None, shard_id=-1)
        return self.query_key(key)

    def query_key(self, key: OcTreeKey) -> QueryResponse:
        """Occupancy of a voxel by key (the cacheable primitive)."""
        self.stats.point_queries += 1
        shard_id = self.router.shard_for_key(key)
        # Pipelined ingestion keeps one dispatched batch in flight; both read
        # paths below settle it for this shard before answering (the backend
        # barriers inside generation_of for the cache validation and inside
        # query_key for the miss round-trip), so neither can observe a
        # half-applied flush.
        cache_key = key.as_tuple()
        cached = self.cache.get(cache_key, self.generation_of)
        if cached is not None:
            status, probability = cached
            return QueryResponse(
                status=status, probability=probability, shard_id=shard_id, cached=True, cycles=0
            )
        result = self.backend.query_key(
            ShardQueryRequest(shard_id=shard_id, key=cache_key)
        )
        self.stats.modelled_query_cycles += result.cycles
        if result.status == "unknown":
            # Unknown space: eligible for TTL-bounded negative caching (a
            # no-op falling back to the generation stamp when the TTL is 0).
            self.cache.put_negative(
                cache_key, shard_id, result.generation, (result.status, result.probability)
            )
        else:
            self.cache.put(
                cache_key, shard_id, result.generation, (result.status, result.probability)
            )
        return QueryResponse(
            status=result.status,
            probability=result.probability,
            shard_id=shard_id,
            cached=False,
            cycles=result.cycles,
        )

    def query_batch(self, points: Sequence[Sequence[float]]) -> Tuple[QueryResponse, ...]:
        """Serve a batch of point queries (e.g. sampled poses of a path)."""
        self.stats.batch_queries += 1
        return tuple(self.query(*point) for point in points)

    # ------------------------------------------------------------------
    # Bounding-box sweeps
    # ------------------------------------------------------------------
    def _bbox_ranges(
        self, minimum: Sequence[float], maximum: Sequence[float]
    ) -> Tuple[List[range], int]:
        """Validated per-axis voxel-index ranges of a box sweep, plus its size.

        Raises:
            ValueError: when the box covers more than ``max_box_voxels``
                voxels (guardrail against accidental whole-map sweeps) or is
                inverted.
        """
        resolution = self.router.converter.resolution
        # Grid indices of the voxels whose centre (index + 0.5) * resolution
        # lies inside [minimum, maximum] on each axis; an off-grid box
        # therefore never reports a voxel centred outside it.
        ranges = []
        for axis in range(3):
            if maximum[axis] < minimum[axis]:
                raise ValueError(
                    f"inverted box on axis {axis}: {minimum[axis]} > {maximum[axis]}"
                )
            first = math.ceil(minimum[axis] / resolution - 0.5 - 1e-9)
            last = math.floor(maximum[axis] / resolution - 0.5 + 1e-9)
            ranges.append(range(first, last + 1))
        total = len(ranges[0]) * len(ranges[1]) * len(ranges[2])
        if total > self.max_box_voxels:
            raise ValueError(
                f"box covers {total} voxels, above the {self.max_box_voxels} guardrail; "
                "split the sweep or raise max_box_voxels"
            )
        return ranges, total

    def iter_bbox(
        self,
        minimum: Sequence[float],
        maximum: Sequence[float],
        chunk_voxels: int = 1024,
        include_voxels: bool = True,
    ) -> Iterator[BboxChunk]:
        """Stream a bounding-box sweep as bounded-size classified chunks.

        The generator yields :class:`~repro.serving.types.BboxChunk` slices
        of at most ``chunk_voxels`` classified voxel centres each, in sweep
        order, so a consumer (the HTTP chunked-transfer response, a progress
        bar) never holds the whole box in memory.  Validation -- inverted
        box, the ``max_box_voxels`` guardrail -- happens eagerly, before the
        first chunk is requested.

        Concatenating every chunk reproduces exactly what
        :meth:`query_bbox` aggregates (it is implemented on top of this).
        ``include_voxels=False`` keeps the per-voxel tuples out of the chunks
        (counts only) for consumers that aggregate.
        """
        if chunk_voxels < 1:
            raise ValueError("chunk_voxels must be at least 1")
        ranges, total = self._bbox_ranges(minimum, maximum)
        self.stats.bbox_queries += 1
        return self._iter_bbox_chunks(ranges, total, chunk_voxels, include_voxels)

    def _iter_bbox_chunks(
        self, ranges: List[range], total: int, chunk_voxels: int, include_voxels: bool
    ) -> Iterator[BboxChunk]:
        resolution = self.router.converter.resolution
        index = 0
        in_chunk = 0
        voxels: List[Tuple[float, float, float, str]] = []
        occupied = free = unknown = 0
        hits_before = self.cache.stats.hits

        def flush_chunk() -> BboxChunk:
            nonlocal index, in_chunk, voxels, occupied, free, unknown, hits_before
            hits_now = self.cache.stats.hits
            chunk = BboxChunk(
                index=index,
                voxels=tuple(voxels),
                occupied=occupied,
                free=free,
                unknown=unknown,
                cache_hits=hits_now - hits_before,
                voxels_total=total,
            )
            index += 1
            in_chunk = 0
            voxels = []
            occupied = free = unknown = 0
            hits_before = hits_now
            return chunk

        for ix in ranges[0]:
            x = (ix + 0.5) * resolution
            for iy in ranges[1]:
                y = (iy + 0.5) * resolution
                for iz in ranges[2]:
                    z = (iz + 0.5) * resolution
                    status = self.query(x, y, z).status
                    if include_voxels:
                        voxels.append((x, y, z, status))
                    in_chunk += 1
                    if status == "occupied":
                        occupied += 1
                    elif status == "free":
                        free += 1
                    else:
                        unknown += 1
                    if in_chunk >= chunk_voxels:
                        yield flush_chunk()
        if in_chunk or index == 0:
            yield flush_chunk()

    def query_bbox(
        self,
        minimum: Sequence[float],
        maximum: Sequence[float],
    ) -> BoxOccupancySummary:
        """Classify every voxel whose centre lies inside an axis-aligned box.

        Repeated sweeps of an unchanged map are answered whole from the
        bbox summary cache: the summary is stamped with every shard's write
        generation at fill time and only served back while the full vector
        still matches, so a cached answer is always exact.

        Raises:
            ValueError: when the box covers more than ``max_box_voxels``
                voxels (guardrail against accidental whole-map sweeps) or is
                inverted.
        """
        box_key = (tuple(float(c) for c in minimum), tuple(float(c) for c in maximum))
        # generation_of barriers in-flight work per shard, so the vector (and
        # any summary stamped with it) reflects everything dispatched so far.
        generations = tuple(
            self.generation_of(shard_id) for shard_id in range(self.backend.num_shards)
        )
        cached = self.bbox_cache.get(box_key, generations)
        if cached is not None:
            self.stats.bbox_queries += 1
            return cached
        occupied = free = unknown = scanned = cache_hits = 0
        for chunk in self.iter_bbox(
            minimum, maximum, chunk_voxels=self.max_box_voxels, include_voxels=False
        ):
            occupied += chunk.occupied
            free += chunk.free
            unknown += chunk.unknown
            cache_hits += chunk.cache_hits
            scanned = chunk.voxels_total
        summary = BoxOccupancySummary(
            occupied=occupied,
            free=free,
            unknown=unknown,
            voxels_scanned=scanned,
            cache_hits=cache_hits,
        )
        self.bbox_cache.put(box_key, generations, summary)
        return summary

    # ------------------------------------------------------------------
    # Collision raycasts
    # ------------------------------------------------------------------
    def raycast(
        self,
        origin: Sequence[float],
        direction: Sequence[float],
        max_range: float,
    ) -> RaycastResponse:
        """Walk a ray until it strikes an occupied voxel (collision check)."""
        if max_range <= 0.0:
            raise ValueError("max_range must be positive")
        norm = math.sqrt(sum(component ** 2 for component in direction))
        if norm <= 0.0:
            raise ValueError("direction must be a non-zero vector")
        self.stats.raycast_queries += 1
        converter = self.router.converter
        if not converter.is_coordinate_in_range(*origin):
            # The ray starts outside the addressable volume: everything it
            # could traverse there is unknown space, so report no collision
            # (mirrors the point-query path answering "unknown" out of range).
            return RaycastResponse(
                hit=False, hit_point=None, distance=0.0, voxels_traversed=0, cache_hits=0
            )
        end = tuple(
            origin[axis] + direction[axis] / norm * max_range for axis in range(3)
        )
        if not converter.is_coordinate_in_range(*end):
            clipped = clip_segment_to_volume(converter, origin, end)
            if clipped is None:
                return RaycastResponse(
                    hit=False, hit_point=None, distance=0.0, voxels_traversed=0, cache_hits=0
                )
            end = clipped
        # The distance a no-hit ray actually traversed: max_range for a ray
        # that fit inside the addressable volume, the clipped segment length
        # otherwise.  Reporting max_range for a clipped ray would claim free
        # space beyond the volume boundary that was never inspected.
        traversed_range = math.sqrt(
            sum((end[axis] - origin[axis]) ** 2 for axis in range(3))
        )

        hits_before = self.cache.stats.hits
        traversed = 0
        # The DDA yields the voxels strictly between origin and endpoint; the
        # endpoint voxel is appended so a ray can collide with its last cell.
        keys: List[OcTreeKey] = compute_ray_keys(converter, origin, end)
        end_key = converter.coord_to_key(*end)
        if not keys or keys[-1] != end_key:
            keys.append(end_key)
        for key in keys:
            traversed += 1
            response = self.query_key(key)
            if response.occupied:
                centre = converter.key_to_coord(key)
                distance = math.sqrt(
                    sum((centre[axis] - origin[axis]) ** 2 for axis in range(3))
                )
                return RaycastResponse(
                    hit=True,
                    hit_point=centre,
                    distance=distance,
                    voxels_traversed=traversed,
                    cache_hits=self.cache.stats.hits - hits_before,
                )
        return RaycastResponse(
            hit=False,
            hit_point=None,
            distance=traversed_range,
            voxels_traversed=traversed,
            cache_hits=self.cache.stats.hits - hits_before,
        )

    # ------------------------------------------------------------------
    # Shorthands
    # ------------------------------------------------------------------
    def classify(self, x: float, y: float, z: float) -> str:
        """Just the occupancy status string of a point."""
        return self.query(x, y, z).status

    def is_colliding(self, x: float, y: float, z: float) -> bool:
        """True when the voxel containing the point is occupied."""
        return self.query(x, y, z).occupied
