"""Socket-transport shard serving: remote workers, registry, failover.

This package turns the serving layer's shard backends from a
single-process affair into a small distributed system:

* :mod:`~repro.serving.remote.transport` -- length-prefixed pickle framing
  over TCP, with a failure taxonomy (clean close vs. torn connection) the
  failover logic keys off.
* :mod:`~repro.serving.remote.worker` -- the shard worker server and the
  ``repro-serve-worker`` CLI entry point, plus local-spawn helpers so tests
  and demos need no manual orchestration.
* :mod:`~repro.serving.remote.registry` -- shard -> endpoint assignment,
  liveness tracking, standby promotion and co-hosting on survivor workers.
* :mod:`~repro.serving.remote.failover` -- replay-tail bookkeeping between
  snapshots and per-recovery reports.
* :mod:`~repro.serving.remote.backend` -- :class:`SocketBackend`, the
  :class:`~repro.serving.backends.ShardBackend` implementation tying it all
  together: heartbeat liveness probes, periodic shard snapshots, and live
  shard re-homing instead of fail-stop.
"""

from repro.serving.remote.backend import SocketBackend, SocketFleetEngine
from repro.serving.remote.failover import RecoveryReport, ReplayLog
from repro.serving.remote.registry import (
    NoLiveWorkerError,
    WorkerEndpoint,
    WorkerRegistry,
)
from repro.serving.remote.transport import (
    MAX_FRAME_BYTES,
    Transport,
    TransportClosed,
    TransportError,
)
from repro.serving.remote.worker import (
    LocalWorkerHandle,
    ShardWorkerServer,
    main,
    spawn_local_worker,
    spawn_worker_process,
)

__all__ = [
    "SocketBackend",
    "SocketFleetEngine",
    "RecoveryReport",
    "ReplayLog",
    "NoLiveWorkerError",
    "WorkerEndpoint",
    "WorkerRegistry",
    "MAX_FRAME_BYTES",
    "Transport",
    "TransportClosed",
    "TransportError",
    "LocalWorkerHandle",
    "ShardWorkerServer",
    "main",
    "spawn_local_worker",
    "spawn_worker_process",
]
