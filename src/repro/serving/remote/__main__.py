"""``python -m repro.serving.remote``: run one shard worker server.

Equivalent to the ``repro-serve-worker`` console script.  (Spawning the
worker module itself with ``-m repro.serving.remote.worker`` would re-execute
a module the package ``__init__`` already imported -- runpy warns about
that -- so process spawns go through this shim instead.)
"""

import sys

from repro.serving.remote.worker import main

if __name__ == "__main__":
    sys.exit(main())
