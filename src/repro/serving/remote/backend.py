"""The socket-transport shard backend with detect-and-recover failover.

:class:`SocketBackend` implements the :class:`~repro.serving.backends.
ShardBackend` contract -- the blocking ``apply_shard_batches`` path, the
pipelined ``apply_async``/``drain`` ticket pair, read-side barriers -- over
the framed socket RPC of :mod:`repro.serving.remote.transport`, one
connection per shard.  Workers are real TCP endpoints: started by hand via
``repro-serve-worker``, listed in ``SessionConfig(workers=...)``, or (the
zero-orchestration default) spawned in-process by the backend itself.

What distinguishes it from the process backend is the failure model.  The
in-tree backends are fail-stop: a dead worker poisons the whole session.
This backend generalises that into detect-and-recover:

* **Detect** -- every transport failure on a shard connection, plus
  rate-limited heartbeat probes (``ping`` with a reply deadline) that run
  before a dispatch when a shard has been quiet for longer than the
  heartbeat interval.
* **Snapshot** -- every ``snapshot_every_batches`` acknowledged batches, a
  shard's subtree is pulled as a :class:`~repro.serving.types.ShardSnapshot`
  (serialized-octree payload) and the shard's replay tail is truncated, so
  the state at risk is bounded by the cadence.
* **Recover** -- the dead shard re-homes onto an idle standby (or co-hosts
  on the least-loaded survivor), rehydrates its last snapshot, replays the
  un-snapshotted tail in dispatch order, and the in-flight slice (if the
  death was mid-flush) is re-sent.  A worker kill costs one bounded stall;
  the map stays leaf-for-leaf equal to sequential ingestion, and the
  recovered shard lands on exactly the write generation the parent last
  adopted, keeping the generation-stamped query cache honest.

Only when recovery itself finds no live worker does the backend fall back
to the classic fail-stop :class:`~repro.serving.backends.ShardBackendError`.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import OMUConfig
from repro.serving.backends import ShardBackend, ShardBackendError
from repro.serving.remote.failover import RecoveryReport, ReplayLog
from repro.serving.remote.registry import (
    NoLiveWorkerError,
    WorkerEndpoint,
    WorkerRegistry,
)
from repro.serving.remote.transport import Transport, TransportError
from repro.serving.remote.worker import LocalWorkerHandle, spawn_local_worker
from repro.serving.types import (
    ShardApplyResult,
    ShardExportResult,
    ShardQueryRequest,
    ShardQueryResult,
    ShardSnapshot,
    ShardUpdateBatch,
)

__all__ = ["SocketBackend", "SocketFleetEngine"]

#: Signature of the test-only transport interposer: ``(transport, shard_id,
#: endpoint) -> transport-like``.  The fault-injection harness wraps every
#: connection the backend opens (including post-recovery reconnects).
TransportWrapper = Callable[[Transport, int, WorkerEndpoint], Transport]


class SocketBackend(ShardBackend):
    """One TCP worker per shard, with snapshots and live failover."""

    name = "socket"

    def __init__(
        self,
        config: OMUConfig,
        num_shards: int,
        endpoints: Sequence[str] = (),
        standby_workers: int = 1,
        snapshot_every_batches: int = 8,
        heartbeat_interval_s: float = 1.0,
        heartbeat_timeout_s: float = 5.0,
        io_timeout_s: float = 60.0,
        connect_timeout_s: float = 5.0,
        transport_wrapper: Optional[TransportWrapper] = None,
    ) -> None:
        super().__init__(config, num_shards)
        if snapshot_every_batches < 1:
            raise ValueError("snapshot_every_batches must be at least 1")
        if heartbeat_interval_s <= 0.0 or heartbeat_timeout_s <= 0.0:
            raise ValueError("heartbeat interval and timeout must be positive")
        if standby_workers < 0:
            raise ValueError("standby_workers must be non-negative")
        self.snapshot_every_batches = snapshot_every_batches
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.io_timeout_s = io_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self._transport_wrapper = transport_wrapper

        #: workers this backend spawned itself (and must reap on close).
        self.owned_workers: List[LocalWorkerHandle] = []
        if not endpoints:
            self.owned_workers = [
                spawn_local_worker() for _ in range(num_shards + standby_workers)
            ]
            endpoints = [handle.endpoint for handle in self.owned_workers]
        self.registry = WorkerRegistry(
            [WorkerEndpoint.parse(endpoint) for endpoint in endpoints], num_shards
        )

        self.replay_log = ReplayLog(num_shards)
        self._snapshots: List[Optional[ShardSnapshot]] = [None] * num_shards
        self._transports: List[Optional[Transport]] = [None] * num_shards
        self._last_contact = [float("-inf")] * num_shards
        #: the current flush's per-shard slices, kept from dispatch until the
        #: acks settle so a mid-flush death can re-send its slice.
        self._dispatching: Dict[int, ShardUpdateBatch] = {}

        # --- failover / snapshot accounting (failover_stats + stats tables)
        self.snapshots_taken = 0
        self.failovers = 0
        self.replayed_batches = 0
        self.replayed_updates = 0
        self.recovery_wall_seconds = 0.0
        self.heartbeat_probes = 0
        self.heartbeat_failures = 0
        #: one :class:`RecoveryReport` per completed failover, oldest first.
        self.recoveries: List[RecoveryReport] = []

        try:
            for shard_id in range(num_shards):
                self._connect_shard(shard_id)
                self._command(shard_id, "attach", (shard_id, self.config))
        except Exception:
            self._close()
            raise

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def _connect_shard(self, shard_id: int) -> None:
        """(Re)open the framed connection to a shard's current endpoint."""
        endpoint = self.registry.endpoint_for(shard_id)
        transport = Transport.connect(
            endpoint.host,
            endpoint.port,
            connect_timeout_s=self.connect_timeout_s,
            timeout_s=self.io_timeout_s,
        )
        if self._transport_wrapper is not None:
            transport = self._transport_wrapper(transport, shard_id, endpoint)
        self._transports[shard_id] = transport
        self._last_contact[shard_id] = time.perf_counter()

    def _worker_id(self, shard_id: int) -> str:
        return str(self.registry.endpoint_for(shard_id))

    def _receive(self, shard_id: int):
        """Read one reply frame; worker-reported errors become backend errors.

        Transport loss propagates as :class:`TransportError` for the caller
        to turn into a recovery; a worker-side exception (the worker is alive
        and answering) is *not* recoverable by re-homing -- replaying the
        same poisoned request would fail again -- so it surfaces as a
        structured :class:`ShardBackendError` exactly like the process
        backend's error replies.
        """
        status, payload = self._transports[shard_id].recv()
        self._last_contact[shard_id] = time.perf_counter()
        if status != "ok":
            raise ShardBackendError(
                f"shard {shard_id} worker failed: {payload['message']}",
                shard_id=shard_id,
                worker_id=self._worker_id(shard_id),
                remote_traceback=payload.get("traceback"),
            )
        return payload

    def _command(self, shard_id: int, verb: str, payload) -> object:
        """One round-trip on a shard's connection, no recovery (setup paths)."""
        try:
            self._transports[shard_id].send((verb, payload))
            return self._receive(shard_id)
        except TransportError as error:
            raise self._lost(shard_id, error) from error

    def _request_with_recovery(
        self,
        shard_id: int,
        verb: str,
        payload,
        expected_generation: Optional[int] = None,
    ) -> object:
        """One round-trip that survives a worker death (query/export/snapshot)."""
        try:
            self._transports[shard_id].send((verb, payload))
            return self._receive(shard_id)
        except TransportError as error:
            self._recover_shard(
                shard_id,
                error,
                redispatch_inflight=False,
                expected_generation=expected_generation,
            )
            try:
                self._transports[shard_id].send((verb, payload))
                return self._receive(shard_id)
            except TransportError as retry_error:
                raise self._lost(shard_id, retry_error) from retry_error

    def _lost(self, shard_id: int, error: Exception) -> ShardBackendError:
        return ShardBackendError(
            f"shard {shard_id} worker {self._worker_id(shard_id)} is "
            f"unreachable and could not be recovered: {error}",
            shard_id=shard_id,
            worker_id=self._worker_id(shard_id),
        )

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def _recover_shard(
        self,
        shard_id: int,
        error: Exception,
        redispatch_inflight: bool,
        expected_generation: Optional[int] = None,
    ) -> None:
        """Re-home a dead shard and replay it back to the adopted generation.

        ``redispatch_inflight=True`` additionally re-sends the current
        flush's slice (the caller then awaits its ack as usual).
        ``expected_generation`` overrides the replay target when the caller
        holds an ack the session has not adopted yet (the snapshot-at-cadence
        path).  Raises :class:`ShardBackendError` -- fail-stop, as before
        this backend existed -- when no live worker remains or the
        replacement dies too.
        """
        started = time.perf_counter()
        if expected_generation is None:
            expected_generation = self._generations[shard_id]
        dead = self.registry.endpoint_for(shard_id)
        self.registry.mark_dead(dead)
        old_transport = self._transports[shard_id]
        if old_transport is not None:
            old_transport.close()
        try:
            target = self.registry.reassign(shard_id)
        except NoLiveWorkerError as exhausted:
            raise ShardBackendError(
                f"shard {shard_id} worker {dead} died and no live worker "
                f"remains to re-home it: {error}",
                shard_id=shard_id,
                worker_id=str(dead),
            ) from exhausted
        snapshot = self._snapshots[shard_id]
        tail = self.replay_log.tail(shard_id)
        try:
            self._connect_shard(shard_id)
            if snapshot is not None:
                self._command(shard_id, "restore", (snapshot, self.config))
            else:
                self._command(shard_id, "attach", (shard_id, self.config))
            generation = snapshot.generation if snapshot is not None else 0
            for batch in tail:
                ack = self._command(shard_id, "apply", batch)
                generation = ack.generation
            if generation != expected_generation:
                raise ShardBackendError(
                    f"shard {shard_id} replay ended at generation {generation} "
                    f"but the session had adopted {expected_generation}; "
                    "the recovered map cannot be trusted",
                    shard_id=shard_id,
                    worker_id=str(target),
                )
            if redispatch_inflight:
                self._transports[shard_id].send(
                    ("apply", self._dispatching[shard_id])
                )
        except TransportError as cascade:
            # The replacement died during recovery: recurse -- the dead
            # replacement is marked and the registry either finds another
            # home or raises the terminal fail-stop error above.
            self._recover_shard(
                shard_id, cascade, redispatch_inflight, expected_generation
            )
            return
        elapsed = time.perf_counter() - started
        self.failovers += 1
        self.replayed_batches += len(tail)
        self.replayed_updates += sum(len(batch) for batch in tail)
        self.recovery_wall_seconds += elapsed
        self.recoveries.append(
            RecoveryReport(
                shard_id=shard_id,
                from_worker=str(dead),
                to_worker=str(target),
                restored_generation=snapshot.generation if snapshot else 0,
                replayed_batches=len(tail),
                replayed_updates=sum(len(batch) for batch in tail),
                redispatched_inflight=redispatch_inflight,
                wall_seconds=elapsed,
            )
        )

    def _take_snapshot(self, shard_id: int, expected_generation: int) -> None:
        snapshot = self._request_with_recovery(
            shard_id, "snapshot", shard_id, expected_generation=expected_generation
        )
        if snapshot.generation != expected_generation:
            raise ShardBackendError(
                f"shard {shard_id} snapshot carries generation "
                f"{snapshot.generation}, expected {expected_generation}",
                shard_id=shard_id,
                worker_id=self._worker_id(shard_id),
            )
        self._snapshots[shard_id] = snapshot
        self.replay_log.truncate(shard_id)
        self.snapshots_taken += 1

    # ------------------------------------------------------------------
    # ShardBackend hooks
    # ------------------------------------------------------------------
    def _health_check(self) -> None:
        """Probe quiet shards with a deadline-bounded ping; recover the dead.

        Skipped entirely while a ticket is in flight: the pending apply ack
        is itself the liveness signal then, and a ping interleaved on the
        same connection would desynchronise the request/reply stream.
        """
        if self._inflight is not None:
            return
        now = time.perf_counter()
        for shard_id in range(self.num_shards):
            if now - self._last_contact[shard_id] < self.heartbeat_interval_s:
                continue
            self.heartbeat_probes += 1
            transport = self._transports[shard_id]
            transport.settimeout(self.heartbeat_timeout_s)
            try:
                transport.send(("ping", None))
                self._receive(shard_id)
            except TransportError as error:
                self.heartbeat_failures += 1
                self._recover_shard(shard_id, error, redispatch_inflight=False)
            finally:
                live = self._transports[shard_id]
                if live is not None:
                    live.settimeout(self.io_timeout_s)

    def _apply_begin(self, batches: Sequence[ShardUpdateBatch]) -> object:
        # Fan every slice out before receiving any ack, so all shard workers
        # chew concurrently (and, pipelined, the parent ray-casts meanwhile).
        self._dispatching = {batch.shard_id: batch for batch in batches}
        for batch in batches:
            try:
                self._transports[batch.shard_id].send(("apply", batch))
            except TransportError as error:
                # The slice never reached the dead worker; recovery replays
                # the tail and re-sends it on the replacement.
                self._recover_shard(
                    batch.shard_id, error, redispatch_inflight=True
                )
        return [batch.shard_id for batch in batches]

    def _apply_collect(self, handle: object) -> List[ShardApplyResult]:
        results: List[ShardApplyResult] = []
        first_error: Optional[ShardBackendError] = None
        for shard_id in handle:
            try:
                results.append(self._collect_ack(shard_id))
            except ShardBackendError as error:
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        # The flush is fully acknowledged: it joins every shard's replay
        # tail, and shards whose tail reached the cadence snapshot now.
        for result in results:
            batch = self._dispatching[result.shard_id]
            self.replay_log.record(batch)
            if self.replay_log.tail_length(result.shard_id) >= self.snapshot_every_batches:
                self._take_snapshot(result.shard_id, result.generation)
        self._dispatching = {}
        return results

    def _collect_ack(self, shard_id: int) -> ShardApplyResult:
        try:
            return self._receive(shard_id)
        except TransportError as error:
            # Died with the slice in flight: recover (snapshot + tail replay
            # discards whatever the dead worker half-applied), re-send the
            # slice, await its ack on the replacement.
            self._recover_shard(shard_id, error, redispatch_inflight=True)
            try:
                return self._receive(shard_id)
            except TransportError as retry_error:
                raise self._lost(shard_id, retry_error) from retry_error

    def _query(self, request: ShardQueryRequest) -> ShardQueryResult:
        return self._request_with_recovery(request.shard_id, "query", request)

    def _export(self) -> List[ShardExportResult]:
        # Unlike apply, exports are idempotent reads: fan out, then gather
        # with per-shard recovery (a re-homed shard just re-serves the
        # export from its recovered state).
        failed: List[int] = []
        for shard_id in range(self.num_shards):
            try:
                self._transports[shard_id].send(("export", shard_id))
            except TransportError as error:
                self._recover_shard(shard_id, error, redispatch_inflight=False)
                failed.append(shard_id)
        exports: List[ShardExportResult] = []
        for shard_id in range(self.num_shards):
            try:
                if shard_id in failed:
                    exports.append(
                        self._request_with_recovery(shard_id, "export", shard_id)
                    )
                else:
                    exports.append(self._receive(shard_id))
            except TransportError as error:
                self._recover_shard(shard_id, error, redispatch_inflight=False)
                exports.append(
                    self._request_with_recovery(shard_id, "export", shard_id)
                )
        return exports

    def _close(self) -> None:
        for shard_id, transport in enumerate(self._transports):
            if transport is None:
                continue
            if not self.owned_workers:
                # Externally managed workers outlive the session: release
                # the shard instead of stopping the server.
                try:
                    transport.send(("detach", shard_id))
                    transport.recv()
                except TransportError:
                    pass
            transport.close()
        self._transports = [None] * self.num_shards
        for handle in self.owned_workers:
            try:
                handle.stop()
            except Exception:  # pragma: no cover - best-effort reaping
                pass

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def failover_stats(self) -> Dict[str, float]:
        """Snapshot/failover counters (adopted by the session stats)."""
        return {
            "snapshots_taken": self.snapshots_taken,
            "failovers": self.failovers,
            "replayed_batches": self.replayed_batches,
            "replayed_updates": self.replayed_updates,
            "recovery_wall_seconds": self.recovery_wall_seconds,
            "heartbeat_probes": self.heartbeat_probes,
            "heartbeat_failures": self.heartbeat_failures,
        }


# ---------------------------------------------------------------------------
# Socket fleet: W worker endpoints hosting shards from many sessions
# ---------------------------------------------------------------------------
class SocketFleetEngine:
    """Execution engine of a socket :class:`~repro.serving.fleet.BackendPool`.

    Where :class:`SocketBackend` dedicates one TCP worker per shard of one
    session, the fleet engine keeps W connections to W
    :class:`~repro.serving.remote.worker.ShardWorkerServer` endpoints and
    multiplexes *every* leased session's shards onto them.  The worker
    protocol is completely unchanged -- the pool's fleet-global gids ride the
    existing ``attach``/``apply``/``query``/``export``/``detach`` verbs, so
    one unmodified worker server hosts gid-keyed shards from many sessions
    side by side.  Generation bookkeeping stays keyed by ``(session, shard)``
    in each :class:`~repro.serving.fleet.SessionBackendView`.

    Failure model: detect-and-refresh, not detect-and-recover.  A dead fleet
    member loses the (session, shard) state it hosted -- those sessions
    fail-stop with a structured error (a per-slot *epoch* stamp detects
    leases that outlived their slot's worker) -- but the slot itself re-homes
    onto a surviving or standby endpoint through the shared
    :class:`~repro.serving.remote.registry.WorkerRegistry`, so the fleet
    keeps admitting *new* leases at full width.  Sessions that need per-shard
    snapshot/replay recovery should keep using :class:`SocketBackend`
    directly; the fleet trades that machinery for O(W) sockets across
    hundreds of tenants.
    """

    kind = "socket"

    def __init__(
        self,
        num_slots: int,
        endpoints: Sequence[str] = (),
        heartbeat_interval_s: float = 1.0,
        heartbeat_timeout_s: float = 5.0,
        io_timeout_s: float = 60.0,
        connect_timeout_s: float = 5.0,
    ) -> None:
        self.num_slots = num_slots
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.io_timeout_s = io_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.heartbeat_probes = 0
        self.heartbeat_failures = 0

        self.owned_workers: List[LocalWorkerHandle] = []
        if not endpoints:
            self.owned_workers = [spawn_local_worker() for _ in range(num_slots)]
            endpoints = [handle.endpoint for handle in self.owned_workers]
        self.registry = WorkerRegistry(
            [WorkerEndpoint.parse(endpoint) for endpoint in endpoints], num_slots
        )

        self._transports: List[Optional[Transport]] = [None] * num_slots
        self._locks = [threading.Lock() for _ in range(num_slots)]
        self._io = ThreadPoolExecutor(max_workers=num_slots, thread_name_prefix="fleet-io")
        self._slot_of: Dict[int, int] = {}
        self._slot_load = [0] * num_slots
        self._last_contact = [float("-inf")] * num_slots
        #: bumped every time a slot's worker is replaced; a gid attached
        #: under an older epoch has lost its hosted state.
        self._slot_epoch = [0] * num_slots
        self._gid_epoch: Dict[int, int] = {}
        try:
            for slot in range(num_slots):
                self._connect_slot(slot)
        except Exception:
            self.close()
            raise

    # -- connection plumbing --------------------------------------------
    def _connect_slot(self, slot: int) -> None:
        endpoint = self.registry.endpoint_for(slot)
        self._transports[slot] = Transport.connect(
            endpoint.host,
            endpoint.port,
            connect_timeout_s=self.connect_timeout_s,
            timeout_s=self.io_timeout_s,
        )
        self._last_contact[slot] = time.perf_counter()

    def _worker_id(self, slot: int) -> str:
        return str(self.registry.endpoint_for(slot))

    def _slot_lost(self, slot: int, error: Exception) -> ShardBackendError:
        """Declare a slot's worker dead and re-home the slot for new leases.

        The hosted (session, shard) state is gone: bumping the slot epoch
        makes every lease that was multiplexed here fail-stop with a clear
        message, while the slot itself reconnects to a standby or survivor
        (registry reassignment) so *new* leases keep the fleet at width W.
        """
        dead = self.registry.endpoint_for(slot)
        self.registry.mark_dead(dead)
        transport = self._transports[slot]
        if transport is not None:
            transport.close()
            self._transports[slot] = None
        self._slot_epoch[slot] += 1
        try:
            self.registry.reassign(slot)
            self._connect_slot(slot)
        except (NoLiveWorkerError, TransportError):
            pass  # the fleet is degraded; new attaches on this slot will fail
        return ShardBackendError(
            f"fleet slot {slot} worker {dead} died; the session shards it "
            f"hosted are lost: {error}",
            worker_id=str(dead),
        )

    def _receive(self, slot: int):
        status, payload = self._transports[slot].recv()
        self._last_contact[slot] = time.perf_counter()
        if status != "ok":
            raise ShardBackendError(
                f"fleet slot {slot} worker failed: {payload['message']}",
                worker_id=self._worker_id(slot),
                remote_traceback=payload.get("traceback"),
            )
        return payload

    def _roundtrip(self, slot: int, verb: str, payload):
        with self._locks[slot]:
            if self._transports[slot] is None:
                raise ShardBackendError(
                    f"fleet slot {slot} has no live worker",
                    worker_id=self._worker_id(slot),
                )
            try:
                self._transports[slot].send((verb, payload))
                return self._receive(slot)
            except TransportError as error:
                raise self._slot_lost(slot, error) from error

    # -- engine API -----------------------------------------------------
    def attach(self, gid: int, config) -> None:
        slot = min(range(self.num_slots), key=lambda s: self._slot_load[s])
        self._roundtrip(slot, "attach", (gid, config))
        self._slot_of[gid] = slot
        self._slot_load[slot] += 1
        self._gid_epoch[gid] = self._slot_epoch[slot]

    def detach(self, gid: int) -> None:
        slot = self._slot_of.pop(gid, None)
        if slot is None:
            return
        self._slot_load[slot] -= 1
        epoch = self._gid_epoch.pop(gid, None)
        if epoch != self._slot_epoch[slot]:
            return  # the worker that hosted this gid is gone; nothing to free
        try:
            self._roundtrip(slot, "detach", gid)
        except ShardBackendError:
            pass

    def slot_of(self, gid: int) -> int:
        return self._slot_of[gid]

    def _check_epochs(self, gids: Sequence[int]) -> None:
        for gid in gids:
            slot = self._slot_of[gid]
            if self._gid_epoch[gid] != self._slot_epoch[slot]:
                raise ShardBackendError(
                    f"fleet slot {slot} worker died and took this session's "
                    "hosted shards with it",
                    worker_id=self._worker_id(slot),
                )

    def apply(self, batches: Sequence[ShardUpdateBatch]) -> object:
        self._check_epochs([batch.shard_id for batch in batches])
        by_slot: Dict[int, List[ShardUpdateBatch]] = defaultdict(list)
        for batch in batches:
            by_slot[self._slot_of[batch.shard_id]].append(batch)
        return [
            self._io.submit(self._apply_slot, slot, group)
            for slot, group in sorted(by_slot.items())
        ]

    def _apply_slot(self, slot: int, group: List[ShardUpdateBatch]) -> List[ShardApplyResult]:
        with self._locks[slot]:
            if self._transports[slot] is None:
                raise ShardBackendError(
                    f"fleet slot {slot} has no live worker",
                    worker_id=self._worker_id(slot),
                )
            try:
                for batch in group:
                    self._transports[slot].send(("apply", batch))
                # Drain every ack even when one is a worker-reported error:
                # an unread reply would desynchronise the shared connection
                # for every other session on this slot.
                results: List[ShardApplyResult] = []
                first_error: Optional[ShardBackendError] = None
                for _ in group:
                    try:
                        results.append(self._receive(slot))
                    except ShardBackendError as error:
                        if first_error is None:
                            first_error = error
                if first_error is not None:
                    raise first_error
                return results
            except TransportError as error:
                raise self._slot_lost(slot, error) from error

    def collect(self, handle: object) -> List[ShardApplyResult]:
        results: List[ShardApplyResult] = []
        first_error: Optional[ShardBackendError] = None
        for future in handle:
            try:
                results.extend(future.result())
            except ShardBackendError as error:
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return results

    def query(self, request: ShardQueryRequest) -> ShardQueryResult:
        self._check_epochs([request.shard_id])
        return self._roundtrip(self._slot_of[request.shard_id], "query", request)

    def export(self, gid: int) -> ShardExportResult:
        self._check_epochs([gid])
        return self._roundtrip(self._slot_of[gid], "export", gid)

    def check(self, gids: Sequence[int]) -> None:
        """Epoch check plus a rate-limited liveness ping on quiet slots."""
        self._check_epochs(gids)
        now = time.perf_counter()
        for slot in sorted({self._slot_of[gid] for gid in gids}):
            if now - self._last_contact[slot] < self.heartbeat_interval_s:
                continue
            self.heartbeat_probes += 1
            with self._locks[slot]:
                transport = self._transports[slot]
                if transport is None:
                    raise ShardBackendError(
                        f"fleet slot {slot} has no live worker",
                        worker_id=self._worker_id(slot),
                    )
                transport.settimeout(self.heartbeat_timeout_s)
                try:
                    transport.send(("ping", None))
                    self._receive(slot)
                except TransportError as error:
                    self.heartbeat_failures += 1
                    raise self._slot_lost(slot, error) from error
                finally:
                    live = self._transports[slot]
                    if live is not None:
                        live.settimeout(self.io_timeout_s)

    def local_workers(self, gids: Sequence[int]):
        raise AttributeError(
            "socket fleet workers are not in-process; use the Shard* message API"
        )

    @property
    def attached_shards(self) -> int:
        return len(self._slot_of)

    def close(self) -> None:
        for slot, transport in enumerate(self._transports):
            if transport is None:
                continue
            if not self.owned_workers:
                # External workers outlive the fleet: release the gids this
                # slot still hosts instead of stopping the server.
                for gid, owner in list(self._slot_of.items()):
                    if owner != slot or self._gid_epoch.get(gid) != self._slot_epoch[slot]:
                        continue
                    try:
                        transport.send(("detach", gid))
                        transport.recv()
                    except TransportError:
                        break
            transport.close()
        self._transports = [None] * self.num_slots
        self._slot_of.clear()
        self._gid_epoch.clear()
        for handle in self.owned_workers:
            try:
                handle.stop()
            except Exception:  # pragma: no cover - best-effort reaping
                pass
        self._io.shutdown(wait=True)
