"""Replay-tail bookkeeping and recovery records for live failover.

Snapshots make worker loss survivable; the replay log makes it *cheap*.
Between two snapshots of a shard, every acknowledged non-empty update batch
is kept (parent-side) in that shard's replay tail.  Recovery is then:
rehydrate the last snapshot on a new worker, replay the tail in dispatch
order, re-send whatever was in flight when the worker died.  Because the
log is truncated at every snapshot, the tail -- and therefore the recovery
stall -- is bounded by the snapshot cadence, not by the session's age.

Replaying is exact, not approximate: per-shard batches apply in dispatch
order, each non-empty batch bumps the worker's generation by one, and the
snapshot restored the pre-tail generation -- so a recovered shard lands on
precisely the generation the parent last adopted, keeping the
generation-stamped query cache honest across a failover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.serving.types import ShardUpdateBatch

__all__ = ["ReplayLog", "RecoveryReport"]


class ReplayLog:
    """Per-shard tails of acknowledged batches since the last snapshot."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self._tails: List[List[ShardUpdateBatch]] = [[] for _ in range(num_shards)]

    def record(self, batch: ShardUpdateBatch) -> None:
        """Append one acknowledged batch to its shard's tail."""
        self._tails[batch.shard_id].append(batch)

    def truncate(self, shard_id: int) -> None:
        """Drop a shard's tail (a fresh snapshot covers it now)."""
        self._tails[shard_id] = []

    def tail(self, shard_id: int) -> Tuple[ShardUpdateBatch, ...]:
        """The batches to replay on top of the shard's last snapshot."""
        return tuple(self._tails[shard_id])

    def tail_length(self, shard_id: int) -> int:
        """Batches currently in a shard's tail (snapshot-cadence trigger)."""
        return len(self._tails[shard_id])

    def tail_updates(self, shard_id: int) -> int:
        """Voxel updates currently in a shard's tail."""
        return sum(len(batch) for batch in self._tails[shard_id])


@dataclass(frozen=True)
class RecoveryReport:
    """One completed shard recovery (observability/tests).

    Attributes:
        shard_id: shard that was re-homed.
        from_worker: endpoint of the dead worker.
        to_worker: endpoint the shard now lives on.
        restored_generation: generation of the snapshot image the new worker
            started from (0 when the shard restarted fresh, pre-snapshot).
        replayed_batches / replayed_updates: size of the replayed tail.
        redispatched_inflight: True when the flush that detected the death
            had this shard's slice in flight and it was re-sent.
        wall_seconds: kill-detection to recovered wall-clock time.
    """

    shard_id: int
    from_worker: str
    to_worker: str
    restored_generation: int
    replayed_batches: int
    replayed_updates: int
    redispatched_inflight: bool
    wall_seconds: float
