"""Worker registry: which TCP endpoint serves which shard, and who is left.

The registry is the socket backend's map of the worker fleet.  Endpoints are
ordered: the first ``num_shards`` of them are the primary homes of shards
``0..num_shards-1``; any extras are *standbys* -- idle workers a failed
shard re-homes onto first.  When no idle standby is left, the shard is
co-hosted on the live worker already carrying the fewest shards, so a
session degrades gradually (less parallelism) instead of dying with its
first worker.  Only when every worker is dead does reassignment fail, and
the backend falls back to the old fail-stop behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Union

__all__ = ["WorkerEndpoint", "WorkerRegistry", "NoLiveWorkerError"]


class NoLiveWorkerError(RuntimeError):
    """Every registered worker endpoint is dead; the shard cannot re-home."""


@dataclass(frozen=True, order=True)
class WorkerEndpoint:
    """One worker's TCP address."""

    host: str
    port: int

    @classmethod
    def parse(cls, text: Union[str, "WorkerEndpoint"]) -> "WorkerEndpoint":
        """Build from a ``host:port`` string (pass-through for instances)."""
        if isinstance(text, WorkerEndpoint):
            return text
        host, separator, port = text.rpartition(":")
        if not separator or not host:
            raise ValueError(f"worker endpoint {text!r} is not of the form host:port")
        return cls(host=host, port=int(port))

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


class WorkerRegistry:
    """Shard -> endpoint assignment with liveness tracking."""

    def __init__(self, endpoints: Sequence[WorkerEndpoint], num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        parsed = [WorkerEndpoint.parse(endpoint) for endpoint in endpoints]
        if len(set(parsed)) != len(parsed):
            raise ValueError(f"duplicate worker endpoints in {parsed}")
        if len(parsed) < num_shards:
            raise ValueError(
                f"{num_shards} shards need at least {num_shards} worker "
                f"endpoints; got {len(parsed)}"
            )
        self.num_shards = num_shards
        self._endpoints: List[WorkerEndpoint] = parsed
        self._dead: Set[WorkerEndpoint] = set()
        self._assignment: Dict[int, WorkerEndpoint] = {
            shard_id: parsed[shard_id] for shard_id in range(num_shards)
        }

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def endpoints(self) -> List[WorkerEndpoint]:
        """Every registered endpoint, in registration order."""
        return list(self._endpoints)

    def endpoint_for(self, shard_id: int) -> WorkerEndpoint:
        """The endpoint currently serving a shard."""
        return self._assignment[shard_id]

    def assignment(self) -> Dict[int, WorkerEndpoint]:
        """Snapshot of the shard -> endpoint map (observability/tests)."""
        return dict(self._assignment)

    def is_dead(self, endpoint: WorkerEndpoint) -> bool:
        """True once the endpoint was declared dead."""
        return endpoint in self._dead

    def standbys(self) -> List[WorkerEndpoint]:
        """Live endpoints currently hosting no shard (re-homing targets)."""
        hosting = set(self._assignment.values())
        return [
            endpoint
            for endpoint in self._endpoints
            if endpoint not in self._dead and endpoint not in hosting
        ]

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def mark_dead(self, endpoint: WorkerEndpoint) -> None:
        """Declare an endpoint dead; it is never picked for re-homing again."""
        self._dead.add(endpoint)

    def reassign(self, shard_id: int) -> WorkerEndpoint:
        """Re-home a shard: idle live standby first, else co-host on the
        live worker carrying the fewest shards.

        Raises:
            NoLiveWorkerError: when no live endpoint remains.
        """
        standbys = self.standbys()
        if standbys:
            target = standbys[0]
        else:
            load: Dict[WorkerEndpoint, int] = {}
            for owner in self._assignment.values():
                load[owner] = load.get(owner, 0) + 1
            candidates = [
                endpoint
                for endpoint in self._endpoints
                if endpoint not in self._dead and endpoint in load
            ]
            if not candidates:
                raise NoLiveWorkerError(
                    f"no live worker left to re-home shard {shard_id} onto "
                    f"({len(self._dead)} of {len(self._endpoints)} endpoints dead)"
                )
            target = min(candidates, key=lambda endpoint: load[endpoint])
        self._assignment[shard_id] = target
        return target

    def add(self, endpoint: WorkerEndpoint) -> None:
        """Register a late-spawned endpoint (becomes a standby)."""
        endpoint = WorkerEndpoint.parse(endpoint)
        if endpoint in self._endpoints:
            raise ValueError(f"endpoint {endpoint} is already registered")
        self._endpoints.append(endpoint)
