"""Length-prefixed pickle framing over TCP sockets.

The socket backend and its shard workers exchange the same pickle-safe
``(verb, payload)`` command tuples the process backend sends over
``multiprocessing.Pipe`` -- this module is the pipe's stand-in for real
sockets: every message travels as a 4-byte big-endian length prefix followed
by the pickled body, so a reader always knows exactly where one message ends
and the next begins, and a connection that dies mid-frame is detected as a
*torn* message rather than silently blocking forever.

Failure taxonomy (the failover logic keys off it):

* :class:`TransportClosed` -- the peer closed the connection cleanly at a
  frame boundary.  Expected at worker shutdown.
* :class:`TransportError` -- everything else: torn frames, resets, timeouts,
  oversized length prefixes.  The socket backend treats any of these on a
  shard connection as "the worker is gone" and starts recovery.

Both derive from :class:`ConnectionError`, so callers that do not care about
the distinction can catch one type.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Optional, Tuple

__all__ = ["Transport", "TransportClosed", "TransportError", "MAX_FRAME_BYTES"]

_HEADER = struct.Struct("!I")

#: Upper bound on one frame's body.  A garbage length prefix (connecting to
#: the wrong port, a corrupted stream) must fail fast instead of making the
#: reader wait for gigabytes that will never arrive.
MAX_FRAME_BYTES = 1 << 30


class TransportError(ConnectionError):
    """The connection failed mid-conversation (torn frame, reset, timeout)."""


class TransportClosed(TransportError):
    """The peer closed the connection cleanly at a frame boundary."""


class Transport:
    """One framed, bidirectional message stream over a connected socket."""

    def __init__(self, sock: socket.socket, timeout_s: Optional[float] = None) -> None:
        self._sock = sock
        self._closed = False
        sock.settimeout(timeout_s)

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        connect_timeout_s: float = 5.0,
        timeout_s: Optional[float] = None,
    ) -> "Transport":
        """Open a framed stream to a listening worker."""
        try:
            sock = socket.create_connection((host, port), timeout=connect_timeout_s)
        except OSError as error:
            raise TransportError(
                f"cannot connect to worker {host}:{port}: {error}"
            ) from error
        # Command/ack round-trips are latency-bound, not throughput-bound.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return cls(sock, timeout_s=timeout_s)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran (or the socket was torn down)."""
        return self._closed

    def peername(self) -> Tuple[str, int]:
        """The remote ``(host, port)`` of the connection."""
        return self._sock.getpeername()

    def settimeout(self, timeout_s: Optional[float]) -> None:
        """Blocking-I/O deadline for subsequent sends and receives."""
        self._sock.settimeout(timeout_s)

    def send(self, message: object) -> None:
        """Frame and send one message."""
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        if len(payload) > MAX_FRAME_BYTES:
            raise ValueError(
                f"message of {len(payload)} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte frame limit"
            )
        try:
            self._sock.sendall(_HEADER.pack(len(payload)) + payload)
        except OSError as error:
            raise TransportError(f"send failed: {error}") from error

    def recv(self) -> object:
        """Receive one whole message (blocking, honours the timeout)."""
        header = self._recv_exact(_HEADER.size, at_boundary=True)
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise TransportError(
                f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte "
                "limit (corrupted stream?)"
            )
        return pickle.loads(self._recv_exact(length, at_boundary=False))

    def request(self, verb: str, payload: object = None) -> object:
        """One blocking command round-trip: send ``(verb, payload)``, recv."""
        self.send((verb, payload))
        return self.recv()

    def _recv_exact(self, count: int, at_boundary: bool) -> bytes:
        chunks = bytearray()
        while len(chunks) < count:
            try:
                chunk = self._sock.recv(count - len(chunks))
            except socket.timeout as error:
                raise TransportError(
                    f"receive timed out after {self._sock.gettimeout()}s"
                ) from error
            except OSError as error:
                raise TransportError(f"receive failed: {error}") from error
            if not chunk:
                if at_boundary and not chunks:
                    raise TransportClosed("peer closed the connection")
                raise TransportError(
                    "connection closed mid-message "
                    f"({len(chunks)} of {count} bytes received)"
                )
            chunks.extend(chunk)
        return bytes(chunks)

    def close(self) -> None:
        """Close the underlying socket.  Idempotent."""
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close races are benign
                pass
