"""The shard worker server: one TCP endpoint hosting map shard workers.

A worker is a small threaded TCP server around a dict of
:class:`~repro.serving.sharding.MapShardWorker` instances.  It boots empty --
the owning :class:`~repro.serving.remote.backend.SocketBackend` pushes each
shard's configuration over the wire (``attach`` for a fresh shard,
``restore`` to rehydrate a snapshot), so the worker CLI needs no session
knowledge at all.  One endpoint normally hosts one shard, but nothing below
assumes that: after a failover a surviving worker co-hosts the dead worker's
re-homed shard next to its own.

Protocol: framed ``(verb, payload)`` commands over
:class:`~repro.serving.remote.transport.Transport`, one reply per command --
``("ok", payload)`` or ``("error", {"message", "traceback"})``.  Worker-side
exceptions are reported, not fatal (same policy as the process backend's
worker loop); only transport loss or an explicit ``stop`` ends a connection.

The module doubles as the ``repro-serve-worker`` console entry point, and
:func:`spawn_local_worker` / :func:`spawn_worker_process` give tests and
demos zero-orchestration workers (in-process threads, or a real child
process for cross-process realism).
"""

from __future__ import annotations

import argparse
import signal
import socket
import subprocess
import sys
import threading
import traceback
from typing import Dict, List, Optional

from repro.serving.remote.transport import Transport, TransportError
from repro.serving.sharding import MapShardWorker

__all__ = [
    "ShardWorkerServer",
    "LocalWorkerHandle",
    "spawn_local_worker",
    "spawn_worker_process",
    "main",
]


class ShardWorkerServer:
    """Threaded TCP server hosting any number of map shard workers."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen()
        self.host, self.port = self._listener.getsockname()[:2]
        #: stable identity reported in errors and stats tables.
        self.worker_id = f"{self.host}:{self.port}"
        self._workers: Dict[int, MapShardWorker] = {}
        self._lock = threading.Lock()
        self._connections: List[socket.socket] = []
        self._stopping = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def start(self) -> "ShardWorkerServer":
        """Serve on a background (daemon) thread; returns immediately."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"worker-{self.port}", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (CLI path)."""
        self._accept_loop()

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                connection, _ = self._listener.accept()
            except OSError:  # listener closed: shutdown or kill
                break
            with self._lock:
                self._connections.append(connection)
            threading.Thread(
                target=self._serve_connection,
                args=(Transport(connection),),
                name=f"worker-{self.port}-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, transport: Transport) -> None:
        while not self._stopping.is_set():
            try:
                verb, payload = transport.recv()
            except (TransportError, ValueError, EOFError):
                break  # peer gone (or unframed garbage): nothing left to serve
            if verb == "stop":
                try:
                    transport.send(("ok", None))
                except TransportError:
                    pass
                self.shutdown()
                break
            try:
                reply = ("ok", self._handle(verb, payload))
            except Exception as error:  # noqa: BLE001 - report, don't die
                reply = (
                    "error",
                    {
                        "message": f"{type(error).__name__}: {error}",
                        "traceback": traceback.format_exc(),
                    },
                )
            try:
                transport.send(reply)
            except TransportError:
                break
        transport.close()

    def _handle(self, verb: str, payload):
        if verb == "ping":
            return "pong"
        if verb == "hello":
            with self._lock:
                return {"worker_id": self.worker_id, "shards": sorted(self._workers)}
        if verb == "attach":
            shard_id, config = payload
            with self._lock:
                self._workers[shard_id] = MapShardWorker(shard_id, config)
            return shard_id
        if verb == "restore":
            snapshot, config = payload
            worker = MapShardWorker.from_snapshot(snapshot, config)
            with self._lock:
                self._workers[worker.shard_id] = worker
            return worker.shard_id
        if verb == "detach":
            with self._lock:
                self._workers.pop(payload, None)
            return payload
        if verb == "apply":
            return self._worker(payload.shard_id).apply_message(payload)
        if verb == "query":
            return self._worker(payload.shard_id).query_message(payload)
        if verb == "export":
            return self._worker(payload).export_message()
        if verb == "snapshot":
            return self._worker(payload).snapshot_message()
        raise ValueError(f"unknown worker command {verb!r}")

    def _worker(self, shard_id: int) -> MapShardWorker:
        with self._lock:
            worker = self._workers.get(shard_id)
        if worker is None:
            raise KeyError(
                f"shard {shard_id} is not hosted on worker {self.worker_id}"
            )
        return worker

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop accepting, close every connection, release the port.  Idempotent."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        # shutdown() before close(): a thread blocked in accept() holds a
        # kernel reference that outlives close(), leaving the port accepting
        # (and immediately dropping) connections; shutdown() unblocks it.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        with self._lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            try:
                connection.close()
            except OSError:  # pragma: no cover
                pass

    def kill(self) -> None:
        """Die abruptly: drop the port and every connection mid-whatever.

        The fault-injection stand-in for ``kill -9`` on a worker process:
        no drain, no goodbye frame, shard state simply gone.  Clients see
        resets / torn frames on their next interaction.
        """
        self.shutdown()
        with self._lock:
            self._workers.clear()

    @property
    def alive(self) -> bool:
        """True while the server is accepting connections."""
        return not self._stopping.is_set()


class LocalWorkerHandle:
    """Grip on a worker spawned by this process: endpoint plus kill switch."""

    def __init__(
        self,
        server: Optional[ShardWorkerServer] = None,
        process: Optional[subprocess.Popen] = None,
        endpoint: str = "",
    ) -> None:
        self.server = server
        self.process = process
        self.endpoint = endpoint or (server.worker_id if server else "")

    @property
    def alive(self) -> bool:
        """True while the worker can still serve its endpoint."""
        if self.server is not None:
            return self.server.alive
        return self.process is not None and self.process.poll() is None

    def kill(self) -> None:
        """Abrupt death (fault injection): no drain, state lost."""
        if self.server is not None:
            self.server.kill()
        elif self.process is not None:
            self.process.kill()
            self.process.wait(timeout=10.0)

    def stop(self) -> None:
        """Graceful shutdown.  Idempotent."""
        if self.server is not None:
            self.server.shutdown()
        elif self.process is not None:
            if self.process.poll() is None:
                self.process.terminate()
            self.process.wait(timeout=10.0)


def spawn_local_worker() -> LocalWorkerHandle:
    """Start one in-process worker (daemon threads) on an ephemeral port."""
    return LocalWorkerHandle(server=ShardWorkerServer().start())


def spawn_worker_process(host: str = "127.0.0.1") -> LocalWorkerHandle:
    """Start one ``repro-serve-worker`` child process on an ephemeral port.

    Blocks until the child announces its endpoint on stdout, so the caller
    can connect immediately.  Used where process isolation matters (CLI
    smoke, cross-process tests); the in-process spawn is faster everywhere
    else.
    """
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serving.remote", "--host", host, "--port", "0"],
        stdout=subprocess.PIPE,
        text=True,
    )
    line = process.stdout.readline().strip()
    marker = "listening on "
    if marker not in line:
        process.kill()
        raise RuntimeError(f"worker process failed to start (said {line!r})")
    return LocalWorkerHandle(process=process, endpoint=line.split(marker, 1)[1])


def main(argv: Optional[List[str]] = None) -> int:
    """``repro-serve-worker``: serve shards on one TCP endpoint until stopped."""
    parser = argparse.ArgumentParser(
        prog="repro-serve-worker",
        description=(
            "Occupancy-map shard worker: hosts map shards for a socket-backend "
            "session. Shard configuration arrives over the wire (attach/restore), "
            "so the worker only needs an address to listen on."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: %(default)s)")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port; 0 picks an ephemeral port (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    server = ShardWorkerServer(host=args.host, port=args.port)
    print(f"repro-serve-worker listening on {server.worker_id}", flush=True)

    def _terminate(signum, frame) -> None:
        server.shutdown()

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)
    server.serve_forever()
    return 0


if __name__ == "__main__":
    sys.exit(main())
