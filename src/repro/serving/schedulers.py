"""Pluggable ingestion schedulers: FIFO, priority and deadline ordering.

The ingestion pipeline decouples request admission from dispatch; the
scheduler decides which admitted :class:`~repro.serving.types.ScanRequest` is
integrated next.  All three policies are stable -- ties fall back to the
service-assigned ``request_id``, i.e. arrival order -- so a workload with
uniform priorities/deadlines behaves identically under every policy.  That
stability is also what keeps the serving layer's map equivalent to sequential
insertion for such workloads (reordering *is* allowed to change the map once
log-odds values saturate; see the equivalence tests).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List

from repro.serving.types import ScanRequest

__all__ = [
    "IngestScheduler",
    "FifoScheduler",
    "PriorityScheduler",
    "DeadlineScheduler",
    "SCHEDULER_POLICIES",
    "make_scheduler",
]


class IngestScheduler:
    """Interface of an ingestion scheduler (a mutable request queue)."""

    policy = "abstract"

    def push(self, request: ScanRequest) -> None:
        """Admit one request."""
        raise NotImplementedError

    def pop(self) -> ScanRequest:
        """Remove and return the next request to serve."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0


class FifoScheduler(IngestScheduler):
    """Serve requests strictly in arrival order."""

    policy = "fifo"

    def __init__(self) -> None:
        self._queue: List[ScanRequest] = []
        self._head = 0

    def push(self, request: ScanRequest) -> None:
        self._queue.append(request)

    def pop(self) -> ScanRequest:
        if self._head >= len(self._queue):
            raise IndexError("pop from an empty FIFO scheduler")
        request = self._queue[self._head]
        self._head += 1
        # Compact lazily so pop stays O(1) amortised without unbounded growth.
        if self._head > 64 and self._head * 2 >= len(self._queue):
            del self._queue[: self._head]
            self._head = 0
        return request

    def __len__(self) -> int:
        return len(self._queue) - self._head


class _HeapScheduler(IngestScheduler):
    """Shared heap machinery for the priority and deadline policies."""

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._sequence = 0

    def _sort_key(self, request: ScanRequest) -> tuple:
        raise NotImplementedError

    def push(self, request: ScanRequest) -> None:
        # The push sequence breaks any remaining tie (requests themselves are
        # not orderable) and preserves arrival order among exact equals even
        # when request ids were never assigned.
        heapq.heappush(self._heap, (self._sort_key(request), self._sequence, request))
        self._sequence += 1

    def pop(self) -> ScanRequest:
        if not self._heap:
            raise IndexError(f"pop from an empty {self.policy} scheduler")
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class PriorityScheduler(_HeapScheduler):
    """Serve the highest-priority request first (FIFO among equals)."""

    policy = "priority"

    def _sort_key(self, request: ScanRequest) -> tuple:
        return (-request.priority, request.request_id)


class DeadlineScheduler(_HeapScheduler):
    """Earliest-deadline-first (FIFO among equal deadlines)."""

    policy = "deadline"

    def _sort_key(self, request: ScanRequest) -> tuple:
        return (request.deadline_s, request.request_id)


SCHEDULER_POLICIES: Dict[str, Callable[[], IngestScheduler]] = {
    "fifo": FifoScheduler,
    "priority": PriorityScheduler,
    "deadline": DeadlineScheduler,
}
"""Registry of the built-in scheduling policies."""


def make_scheduler(policy: str = "fifo") -> IngestScheduler:
    """Instantiate a scheduler by policy name."""
    try:
        factory = SCHEDULER_POLICIES[policy]
    except KeyError:
        raise KeyError(
            f"unknown scheduler policy {policy!r}; valid policies: "
            f"{sorted(SCHEDULER_POLICIES)}"
        ) from None
    return factory()
