"""Map sessions: one tenant's map, sharded over an execution backend.

A :class:`MapSession` is the unit of multi-tenancy: it owns a pool of shard
workers behind a pluggable :class:`~repro.serving.backends.ShardBackend`
(inline, thread pool, one process per shard, or one TCP worker per shard
with live failover), partitioned by octree-key
prefix, an ingestion pipeline feeding them, a cached query engine reading
them, and a stats block recording everything.  Sessions are fully isolated --
nothing but the Python process is shared between two sessions of one
:class:`~repro.serving.manager.MapSessionManager` (and with the process
backend, not even that: each shard's accelerator lives in its own worker
process).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.core.config import DEFAULT_CONFIG, OMUConfig
from repro.octomap.merge import merge_trees
from repro.octomap.octree import OccupancyOcTree
from repro.serving.backends import BACKEND_NAMES, ShardBackend, make_backend
from repro.serving.batching import IngestionPipeline
from repro.serving.cache import GenerationLRUCache
from repro.serving.query_engine import QueryEngine
from repro.serving.schedulers import make_scheduler
from repro.serving.sharding import MapShardWorker, ShardRouter
from repro.serving.stats import SessionStats
from repro.serving.types import BatchReport, IngestReceipt, ScanRequest

__all__ = ["SessionConfig", "MapSession"]


@dataclass(frozen=True)
class SessionConfig:
    """Parameters of one map session.

    Attributes:
        num_shards: map shard workers in the session's pool.
        shard_prefix_levels: octree-key prefix depth used for routing; must
            satisfy ``num_shards <= 8**shard_prefix_levels``.  The default of
            12 shards at *block* granularity (16x16x16-voxel subtrees, 3.2 m
            cubes at 0.2 m resolution).  Shallow prefixes (1-2 levels) are
            degenerate for maps built near the origin: the top key bits of
            every axis are anti-correlated there (positive coordinates start
            ``10...``, negative ``01...``), so octant-level sharding cannot
            split any one octant's work and buys almost no parallelism.
        backend: shard execution backend -- ``"inline"`` (serial reference),
            ``"thread"`` (concurrent fan-out, GIL-bound), ``"process"``
            (one worker process per shard, true CPU parallelism) or
            ``"socket"`` (one TCP worker per shard with snapshots and live
            failover).  See :mod:`repro.serving.backends` for when to pick
            each.
        pipelined: double-buffered ingestion -- the pipeline ray-casts batch
            N+1 while the backend applies batch N, with at most one batch in
            flight.  Leaf-for-leaf equivalent to blocking ingestion on every
            backend (queries barrier on in-flight work); only the wall-clock
            overlap changes.  On the inline backend it degenerates to the
            serial reference; it pays off on the process backend once the
            host has cores to run front end and apply concurrently.
        mp_start_method: ``multiprocessing`` start method for the process
            backend (``None`` picks ``fork`` where available).
        scheduler_policy: ``"fifo"``, ``"priority"`` or ``"deadline"``.
        batch_size: scans coalesced per ingestion batch.
        cache_capacity: entries of the query LRU cache.
        negative_ttl_s: wall-clock lifetime of cached *unknown* answers.
            ``0`` (the default) keeps strict generation-stamped semantics;
            a positive TTL lets unknown-space answers survive shard writes
            for this many seconds (bounded staleness traded for hit rate on
            planner probes into unmapped space).
        bbox_cache_capacity: whole box-sweep summaries cached per session,
            validated against the full shard generation vector (always
            exact).  ``0`` disables bbox result caching.
        accelerator: configuration of every shard's accelerator (resolution,
            PE count, fixed point, ...).
        default_max_range: beam truncation applied when a request does not
            set its own.
        admission_queue_limit: depth of the bounded per-session admission
            queue of the asyncio front end (:mod:`repro.serving.aio`).  A
            submit against a full queue either waits (backpressure) or is
            rejected, never grows the queue without bound; the synchronous
            path ignores this knob.
        tenant: accounting principal this session bills to.  Sessions
            sharing a tenant share one quota bucket and roll up together in
            the metrics pipeline; empty (the default) means "the session is
            its own tenant" -- per-session isolation.
        quota_points_per_s: sustained per-tenant ingest budget in scan
            points per second, enforced at async admission
            (:class:`repro.serving.metrics.qos.TenantQuotaRegistry`).
            ``0`` (the default) disables the quota.
        quota_burst_s: quota bucket capacity as seconds of budget -- after
            idling, a tenant may burst ``quota_points_per_s * quota_burst_s``
            points at once.
        scalar_frontend: route ingestion through the per-ray scalar front
            end (the verification reference) instead of the batched numpy
            pipeline of :mod:`repro.octomap.raycast_vec`.  Both produce
            byte-identical per-shard update streams; the scalar path is an
            order of magnitude slower and exists for A/B verification and
            benchmarking (``repro-serve --scalar-frontend``).
        workers: ``host:port`` endpoints of ``repro-serve-worker`` processes
            for the ``"socket"`` backend, in shard order; endpoints beyond
            ``num_shards`` are standbys for failover.  Empty (the default)
            spawns local in-process workers automatically.  Ignored by the
            other backends.
        standby_workers: extra local workers to spawn as failover targets
            when ``workers`` is empty (socket backend only).
        snapshot_every_batches: shard snapshot cadence of the socket
            backend -- after this many acknowledged update batches a shard's
            subtree is snapshotted and its replay tail truncated, bounding
            the replay work (and stall) of a failover.
        heartbeat_interval_s: minimum quiet time on a shard connection
            before the socket backend probes it with a liveness ping.
        heartbeat_timeout_s: reply deadline of a liveness ping; a missed
            deadline triggers shard recovery.
        fleet_workers: size of the *shared* backend fleet.  ``0`` (the
            default) keeps the classic ownership model -- every session
            constructs and owns its backend, N sessions cost N x num_shards
            workers.  A positive value makes the owning
            :class:`~repro.serving.manager.MapSessionManager` run one
            :class:`~repro.serving.fleet.BackendPool` of this many execution
            slots per backend kind and hand each session a lease
            (:class:`~repro.serving.fleet.SessionBackendView`) instead, so
            any number of sessions share O(fleet_workers) OS resources.
        flusher_concurrency: asyncio flusher tasks the async front end runs
            per session (:mod:`repro.serving.aio`).  The default of 1 keeps
            strictly serial flush cycles; K > 1 lets one session overlap up
            to K cycles (pop/coalesce of cycle N+1 runs while cycle N's
            ingest executes), bounded so a heavy session cannot monopolise
            the shared executor.  With K > 1 batches may interleave, so
            cross-batch dispatch order is no longer the per-session submit
            order (per-batch order still is).
    """

    num_shards: int = 2
    shard_prefix_levels: int = 12
    backend: str = "inline"
    pipelined: bool = False
    mp_start_method: Optional[str] = None
    scheduler_policy: str = "fifo"
    batch_size: int = 8
    cache_capacity: int = 4096
    negative_ttl_s: float = 0.0
    bbox_cache_capacity: int = 64
    accelerator: OMUConfig = field(default_factory=lambda: DEFAULT_CONFIG)
    default_max_range: float = -1.0
    admission_queue_limit: int = 64
    tenant: str = ""
    quota_points_per_s: float = 0.0
    quota_burst_s: float = 1.0
    scalar_frontend: bool = False
    workers: Tuple[str, ...] = ()
    standby_workers: int = 1
    snapshot_every_batches: int = 8
    heartbeat_interval_s: float = 1.0
    heartbeat_timeout_s: float = 5.0
    fleet_workers: int = 0
    flusher_concurrency: int = 1

    def __post_init__(self) -> None:
        if self.fleet_workers < 0:
            raise ValueError("fleet_workers must be non-negative (0 = owned backend)")
        if self.flusher_concurrency < 1:
            raise ValueError("flusher_concurrency must be at least 1")
        if self.negative_ttl_s < 0.0:
            raise ValueError("negative_ttl_s must be non-negative (0 disables)")
        if self.bbox_cache_capacity < 0:
            raise ValueError("bbox_cache_capacity must be non-negative (0 disables)")
        if self.admission_queue_limit < 1:
            raise ValueError("admission_queue_limit must be at least 1")
        if self.quota_points_per_s < 0.0:
            raise ValueError("quota_points_per_s must be non-negative (0 disables)")
        if self.quota_burst_s <= 0.0:
            raise ValueError("quota_burst_s must be positive")
        if self.num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be at least 1")
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from {', '.join(BACKEND_NAMES)}"
            )
        if self.standby_workers < 0:
            raise ValueError("standby_workers must be non-negative")
        if self.snapshot_every_batches < 1:
            raise ValueError("snapshot_every_batches must be at least 1")
        if self.heartbeat_interval_s <= 0.0 or self.heartbeat_timeout_s <= 0.0:
            raise ValueError("heartbeat interval and timeout must be positive")
        if self.workers and self.backend != "socket":
            raise ValueError("workers endpoints are only meaningful with backend='socket'")

    def with_resolution(self, resolution_m: float) -> "SessionConfig":
        """Copy with a different map resolution on every shard."""
        return replace(self, accelerator=self.accelerator.with_resolution(resolution_m))

    def with_backend(self, backend: str) -> "SessionConfig":
        """Copy served by a different shard execution backend."""
        return replace(self, backend=backend)

    def with_pipelined(self, pipelined: bool = True) -> "SessionConfig":
        """Copy with double-buffered (pipelined) ingestion toggled."""
        return replace(self, pipelined=pipelined)

    def with_scalar_frontend(self, scalar_frontend: bool = True) -> "SessionConfig":
        """Copy with the scalar reference front end toggled."""
        return replace(self, scalar_frontend=scalar_frontend)

    def with_workers(self, workers: Sequence[str]) -> "SessionConfig":
        """Copy served by the socket backend over the given worker endpoints."""
        return replace(self, backend="socket", workers=tuple(workers))

    def with_fleet(self, fleet_workers: int) -> "SessionConfig":
        """Copy leasing execution from a shared fleet of this many slots."""
        return replace(self, fleet_workers=fleet_workers)

    def resolved_tenant(self, session_id: str) -> str:
        """The accounting principal: ``tenant``, or the session id when unset."""
        return self.tenant or session_id


class MapSession:
    """One named occupancy map served by a sharded worker pool."""

    def __init__(
        self,
        session_id: str,
        config: Optional[SessionConfig] = None,
        metrics=None,
        backend_pool=None,
    ) -> None:
        if not session_id:
            raise ValueError("session_id must be a non-empty string")
        self.session_id = session_id
        self.config = config if config is not None else SessionConfig()
        #: accounting principal (``config.tenant`` or the session id).
        self.tenant = self.config.resolved_tenant(session_id)
        #: optional :class:`~repro.serving.metrics.MetricsStore` shared with
        #: the owning manager; ``None`` runs without instrumentation.
        self.metrics = metrics
        self.stats = SessionStats(
            session_id=session_id,
            backend_name=self.config.backend,
            num_shards=self.config.num_shards,
            pipelined=self.config.pipelined,
        )
        self.router = ShardRouter(
            self.config.accelerator,
            self.config.num_shards,
            prefix_levels=self.config.shard_prefix_levels,
        )
        # With a shared fleet the session holds a lease (SessionBackendView),
        # not a backend it owns: close() releases this session's hosted
        # shards and leaves the fleet serving everyone else.
        self.backend: ShardBackend = make_backend(
            self.config.backend,
            self.config.accelerator,
            self.config.num_shards,
            start_method=self.config.mp_start_method,
            workers=self.config.workers,
            standby_workers=self.config.standby_workers,
            snapshot_every_batches=self.config.snapshot_every_batches,
            heartbeat_interval_s=self.config.heartbeat_interval_s,
            heartbeat_timeout_s=self.config.heartbeat_timeout_s,
            fleet=backend_pool,
            session_id=session_id,
        )
        self.pipeline = IngestionPipeline(
            session_id,
            self.router,
            self.backend,
            make_scheduler(self.config.scheduler_policy),
            self.stats,
            batch_size=self.config.batch_size,
            pipelined=self.config.pipelined,
            metrics=metrics,
            tenant=self.tenant,
            scalar_frontend=self.config.scalar_frontend,
        )
        self.cache = GenerationLRUCache(
            self.config.cache_capacity, negative_ttl_s=self.config.negative_ttl_s
        )
        self.query_engine = QueryEngine(
            self.router,
            self.backend,
            self.cache,
            self.stats,
            bbox_cache_capacity=self.config.bbox_cache_capacity,
        )
        self.stats.cache = self.cache.stats

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the execution backend (worker processes/threads).  Idempotent.

        When the session leases from a shared fleet, this releases only its
        lease -- the fleet (and every other session on it) keeps running.
        """
        self.backend.close()

    @property
    def closed(self) -> bool:
        """True once the session's backend has been released."""
        return self.backend.closed

    def __enter__(self) -> "MapSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def workers(self) -> List[MapShardWorker]:
        """The in-process shard workers (inline / thread backends only).

        The process backend keeps its workers in child processes; inspect
        those through the backend's message API instead.
        """
        return self.backend.workers

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def submit(self, request: ScanRequest) -> IngestReceipt:
        """Admit a scan request (dispatch happens on the next flush)."""
        if request.session_id != self.session_id:
            raise ValueError(
                f"request for session {request.session_id!r} submitted to "
                f"session {self.session_id!r}"
            )
        if request.max_range < 0.0 and self.config.default_max_range > 0.0:
            request = replace(request, max_range=self.config.default_max_range)
        return self.pipeline.submit(request)

    def flush(self) -> Optional[BatchReport]:
        """Dispatch one batch of admitted requests; None when idle.

        With ``pipelined=True`` the returned report is the previously
        in-flight batch's (the new batch stays in flight); see
        :meth:`IngestionPipeline.flush`.
        """
        return self.pipeline.flush()

    def flush_all(self) -> List[BatchReport]:
        """Dispatch until the admission queue (and any in-flight batch) is empty."""
        return self.pipeline.flush_all()

    def ingest(self, request: ScanRequest) -> BatchReport:
        """Submit one request and dispatch immediately (synchronous path)."""
        self.submit(request)
        reports = self.flush_all()
        return reports[-1]

    def pending_requests(self) -> int:
        """Admitted requests not yet integrated into the map."""
        return self.pipeline.pending()

    # ------------------------------------------------------------------
    # Read path (delegates to the query engine)
    # ------------------------------------------------------------------
    def query(self, x: float, y: float, z: float):
        """Point occupancy query; see :meth:`QueryEngine.query`."""
        return self.query_engine.query(x, y, z)

    def query_batch(self, points: Sequence[Sequence[float]]):
        """Batch point query; see :meth:`QueryEngine.query_batch`."""
        return self.query_engine.query_batch(points)

    def query_bbox(self, minimum: Sequence[float], maximum: Sequence[float]):
        """Bounding-box sweep; see :meth:`QueryEngine.query_bbox`."""
        return self.query_engine.query_bbox(minimum, maximum)

    def raycast(self, origin: Sequence[float], direction: Sequence[float], max_range: float):
        """Collision raycast; see :meth:`QueryEngine.raycast`."""
        return self.query_engine.raycast(origin, direction, max_range)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_octree(self) -> OccupancyOcTree:
        """Stitch every shard's exported subtree into one software octree.

        Shard exports are gathered through the backend -- concurrently for
        the process backend, where every worker serialises its subtree in
        parallel -- and stitched with one shared propagate/prune pass by
        :func:`repro.octomap.merge.merge_trees`.
        """
        accelerator = self.config.accelerator
        return merge_trees(
            self.backend.export_all(),
            resolution=accelerator.resolution_m,
            tree_depth=accelerator.tree_depth,
            params=accelerator.quantized_params().as_float_params(),
        )

    def shard_load(self) -> Tuple[int, ...]:
        """Updates applied per shard (load-balance view)."""
        return self.backend.shard_load()
