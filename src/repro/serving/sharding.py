"""Spatial sharding: octree-key-prefix routing and map shard workers.

A map session spreads its octree over a pool of shard workers, each a full
:class:`~repro.core.accelerator.OMUAccelerator` instance that owns a disjoint
region of the key space.  Routing reuses the accelerator's own
address-generation view of the key bits: the first ``prefix_levels`` child
indices of the root-to-leaf path select the subtree, and the subtree number
modulo the shard count selects the worker (see
:meth:`repro.core.address_gen.AddressGenerator.shard_index`).

This is the same first-level-branch partitioning the paper uses *inside* one
accelerator, lifted one level up: PEs parallelise within a chip, shards
parallelise across chips (or across processes, once the serving layer grows a
distributed backend).

Prefix depth picks the granularity.  ``prefix_levels=1`` shards by octant;
deeper prefixes shard by progressively smaller blocks (the session default of
12 gives 16x16x16-voxel blocks).  Because a shard can only prune a subtree
whose eight children it fully owns, and modulo routing never hands all eight
children of an above-prefix node to one shard (for ``num_shards >= 2``),
every exported leaf -- pruned or not -- stays inside its shard's own key
region, which is what makes the export stitch conflict-free.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.accelerator import OMUAccelerator
from repro.core.address_gen import AddressGenerator
from repro.core.config import OMUConfig
from repro.core.query_unit import QueryResult
from repro.core.scheduler import VoxelUpdateRequest
from repro.core.timing import ScanTiming
from repro.octomap.keys import KeyConverter, OcTreeKey
from repro.octomap.octree import OccupancyOcTree
from repro.serving.types import (
    ShardApplyResult,
    ShardExportResult,
    ShardQueryRequest,
    ShardQueryResult,
    ShardSnapshot,
    ShardUpdateBatch,
)

__all__ = ["ShardRouter", "MapShardWorker"]


class ShardRouter:
    """Maps voxel keys (and metric points) to shard ids."""

    def __init__(self, config: OMUConfig, num_shards: int, prefix_levels: int = 1) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if not 1 <= prefix_levels <= config.tree_depth:
            raise ValueError(
                f"prefix_levels must be in [1, {config.tree_depth}], got {prefix_levels}"
            )
        # With P prefix levels there are 8**P distinct subtrees; more shards
        # than subtrees would leave workers permanently idle.
        if num_shards > 8 ** prefix_levels:
            raise ValueError(
                f"{num_shards} shards but only 8**{prefix_levels} = "
                f"{8 ** prefix_levels} key-prefix subtrees; raise prefix_levels"
            )
        self.num_shards = num_shards
        self.prefix_levels = prefix_levels
        self._address_generator = AddressGenerator(
            config.resolution_m, config.tree_depth, config.num_pes
        )

    @property
    def converter(self) -> KeyConverter:
        """The coordinate <-> key converter shared by every shard."""
        return self._address_generator.converter

    def shard_for_key(self, key: OcTreeKey) -> int:
        """Shard id owning a voxel key."""
        return self._address_generator.shard_index(key, self.num_shards, self.prefix_levels)

    def shard_for_point(self, x: float, y: float, z: float) -> int:
        """Shard id owning the voxel containing a metric point."""
        return self.shard_for_key(self.converter.coord_to_key(x, y, z))

    def partition(
        self, requests: Sequence[VoxelUpdateRequest]
    ) -> List[List[VoxelUpdateRequest]]:
        """Split an ordered update stream into per-shard streams.

        Stream order is preserved inside each shard, and every update for a
        given voxel lands on the same shard -- together these guarantee that
        per-voxel update order matches the global stream, which is what makes
        sharded ingestion equivalent to sequential insertion.
        """
        per_shard: List[List[VoxelUpdateRequest]] = [[] for _ in range(self.num_shards)]
        for request in requests:
            per_shard[self.shard_for_key(request.key)].append(request)
        return per_shard

    def shard_indices_for_keys(self, keys: np.ndarray) -> np.ndarray:
        """Shard ids for an ``(N, 3)`` key-component array (vectorized)."""
        return self._address_generator.shard_indices(
            keys, self.num_shards, self.prefix_levels
        )

    def partition_key_arrays(
        self, keys: np.ndarray, occupied: np.ndarray
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Array counterpart of :meth:`partition` for the vectorized front end.

        Args:
            keys: ``(N, 3)`` key components of the ordered update stream.
            occupied: ``(N,)`` bool flags aligned with ``keys``.

        Returns:
            One ``(keys, occupied)`` pair per shard.  Boolean masking keeps
            stream order inside each shard, so the slices are element-for-
            element identical to what :meth:`partition` produces from the
            same stream.
        """
        shard_ids = self.shard_indices_for_keys(keys)
        per_shard: List[Tuple[np.ndarray, np.ndarray]] = []
        for shard in range(self.num_shards):
            mask = shard_ids == shard
            per_shard.append((keys[mask], occupied[mask]))
        return per_shard


class MapShardWorker:
    """One shard of a session's map: an accelerator plus a write generation.

    The worker is the unit of parallelism and of cache invalidation: every
    applied batch bumps :attr:`generation`, which the query cache uses to
    lazily drop stale entries for this shard only.
    """

    def __init__(self, shard_id: int, config: OMUConfig) -> None:
        self.shard_id = shard_id
        self.config = config
        self.accelerator = OMUAccelerator(config)
        self.generation = 0
        self.batches_applied = 0
        self.updates_applied = 0

    def apply_updates(self, requests: Sequence[VoxelUpdateRequest]) -> ScanTiming:
        """Apply an ordered update stream and invalidate this shard's cache."""
        timing = self.accelerator.apply_update_batch(requests)
        if requests:
            self.generation += 1
            self.batches_applied += 1
            self.updates_applied += len(requests)
        return timing

    def query(self, x: float, y: float, z: float) -> QueryResult:
        """Occupancy query served by this shard's accelerator."""
        return self.accelerator.query(x, y, z)

    def query_key(self, key: OcTreeKey) -> QueryResult:
        """Occupancy query by voxel key (centre-of-voxel metric lookup)."""
        return self.accelerator.query(*self.accelerator.address_generator.converter.key_to_coord(key))

    def export_octree(self) -> OccupancyOcTree:
        """This shard's region of the map as a software octree."""
        return self.accelerator.export_octree()

    def busy_cycles(self) -> int:
        """Total modelled busy cycles of this shard's accelerator."""
        return self.accelerator.map_critical_path_cycles()

    # ------------------------------------------------------------------
    # Message-level API (shared by every execution backend)
    # ------------------------------------------------------------------
    # The pool backends in :mod:`repro.serving.backends` talk to workers only
    # through the pickle-safe ``Shard*`` messages of
    # :mod:`repro.serving.types`; routing them through these handlers keeps
    # the inline, thread and process execution paths byte-identical.

    def apply_message(self, batch: ShardUpdateBatch) -> ShardApplyResult:
        """Apply one wire-format update batch and acknowledge it."""
        if batch.shard_id != self.shard_id:
            raise ValueError(
                f"batch for shard {batch.shard_id} delivered to shard {self.shard_id}"
            )
        updates = batch.to_updates()
        timing = self.apply_updates(updates)
        return ShardApplyResult(
            shard_id=self.shard_id,
            updates_applied=len(updates),
            critical_path_cycles=timing.critical_path_cycles() if updates else 0,
            generation=self.generation,
        )

    def query_message(self, request: ShardQueryRequest) -> ShardQueryResult:
        """Answer one wire-format voxel-key lookup."""
        if request.shard_id != self.shard_id:
            raise ValueError(
                f"query for shard {request.shard_id} delivered to shard {self.shard_id}"
            )
        result = self.query_key(OcTreeKey(*request.key))
        return ShardQueryResult(
            shard_id=self.shard_id,
            status=result.status,
            probability=result.probability,
            cycles=result.cycles,
            generation=self.generation,
        )

    def export_message(self) -> ShardExportResult:
        """Export this shard's subtree, stamped with its write generation."""
        return ShardExportResult(
            shard_id=self.shard_id,
            tree=self.export_octree(),
            generation=self.generation,
        )

    # ------------------------------------------------------------------
    # Snapshot / restore (live failover and durable checkpoints)
    # ------------------------------------------------------------------
    def snapshot_message(self) -> ShardSnapshot:
        """Point-in-time image of this shard: serialized subtree + counters."""
        from repro.octomap.serialization import serialize_tree

        return ShardSnapshot(
            shard_id=self.shard_id,
            generation=self.generation,
            batches_applied=self.batches_applied,
            updates_applied=self.updates_applied,
            payload=serialize_tree(self.export_octree()),
        )

    @classmethod
    def from_snapshot(cls, snapshot: ShardSnapshot, config: OMUConfig) -> "MapShardWorker":
        """Rehydrate a shard worker from a snapshot (on any host).

        The new worker's accelerator is rebuilt leaf-for-leaf from the
        snapshot payload and the externally visible counters (generation
        first among them) resume from the snapshotted values, so replaying
        the un-snapshotted flush tail lands the shard exactly where the
        dead worker's acknowledged state was.
        """
        from repro.octomap.serialization import deserialize_tree

        worker = cls(snapshot.shard_id, config)
        worker.accelerator.load_octree(deserialize_tree(snapshot.payload))
        worker.generation = snapshot.generation
        worker.batches_applied = snapshot.batches_applied
        worker.updates_applied = snapshot.updates_applied
        return worker
