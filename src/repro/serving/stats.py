"""Service statistics: per-session latency / throughput / cache counters.

Every map session owns a :class:`SessionStats` block that the ingestion
pipeline and query engine update in place; :class:`ServiceStats` aggregates
the blocks of all live sessions and renders them through the same
:mod:`repro.analysis.tables` helpers the paper-reproduction experiment
drivers use, so service dashboards and paper tables share one look.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.tables import render_table
from repro.serving.cache import CacheStats

__all__ = ["SessionStats", "ServiceStats"]


@dataclass
class SessionStats:
    """Counters of one map session.

    Ingestion counters are updated per dispatched batch; query counters per
    served query.  ``modelled_*`` figures come from the accelerator cycle
    model (what the hardware would take), ``wall_seconds`` measures the
    Python host process.
    """

    session_id: str = ""
    backend_name: str = "inline"
    num_shards: int = 0
    pipelined: bool = False
    # --- ingestion ---
    scans_ingested: int = 0
    points_ingested: int = 0
    rays_cast: int = 0
    ray_voxels_visited: int = 0
    voxel_updates: int = 0
    duplicates_removed: int = 0
    batches_dispatched: int = 0
    modelled_ingest_cycles: int = 0
    ingest_wall_seconds: float = 0.0
    fanout_wall_seconds: float = 0.0
    frontend_wall_seconds: float = 0.0
    drain_wait_seconds: float = 0.0
    #: front-end wall time spent while a previous batch was in flight on the
    #: workers (the hidden-by-overlap share of the front end).
    overlapped_frontend_seconds: float = 0.0
    pipelined_batches: int = 0
    shard_updates: List[int] = field(default_factory=list)
    #: key-converter derivations by the ingestion front end; exactly 1 per
    #: session (the pipeline hoists the converter out of the batch loop), so
    #: any larger value flags a regression back to per-flush derivation.
    frontend_converter_builds: int = 0
    queue_high_water: int = 0
    #: requests whose ``deadline_s`` (``time.monotonic`` clock) had already
    #: passed when the scheduler popped them for a flush -- the QoS figure
    #: the deadline scheduler is meant to minimise.
    deadline_misses: int = 0
    # --- async admission (filled by repro.serving.aio) ---
    #: requests accepted through the asyncio front end.
    async_submits: int = 0
    #: submits that found their admission queue full and had to wait.
    admission_waits: int = 0
    #: total time submitters spent blocked on a full admission queue.
    admission_wait_seconds: float = 0.0
    #: submits rejected outright (``wait=False`` against a full queue).
    queue_rejects: int = 0
    #: submits refused because the session's tenant was over its ingest
    #: budget (:class:`repro.serving.metrics.qos.TenantQuotaExceeded`).
    quota_rejects: int = 0
    #: submits dropped by deadline-miss shedding before any backend work
    #: (:class:`repro.serving.metrics.qos.DeadlineShed`).
    shed_requests: int = 0
    #: deepest the bounded asyncio admission queue ever got.
    admission_queue_high_water: int = 0
    #: flush cycles completed by the session's background flusher tasks.
    flusher_cycles: int = 0
    #: most flusher tasks ever simultaneously inside a flush cycle for this
    #: session (bounded by ``SessionConfig.flusher_concurrency``).
    flusher_overlap_high_water: int = 0
    # --- failover (socket backend; copied from ShardBackend.failover_stats) ---
    #: shard snapshots taken at the snapshot cadence.
    snapshots_taken: int = 0
    #: completed shard recoveries (dead worker re-homed, map replayed).
    failovers: int = 0
    #: un-snapshotted batches replayed onto replacement workers.
    replayed_batches: int = 0
    #: voxel updates inside those replayed batches.
    replayed_updates: int = 0
    #: total kill-detection to recovered wall-clock time.
    recovery_wall_seconds: float = 0.0
    #: liveness pings sent to quiet shard connections.
    heartbeat_probes: int = 0
    #: pings that missed their deadline and triggered recovery.
    heartbeat_failures: int = 0
    # --- queries ---
    point_queries: int = 0
    batch_queries: int = 0
    bbox_queries: int = 0
    raycast_queries: int = 0
    modelled_query_cycles: int = 0
    cache: CacheStats = field(default_factory=CacheStats)

    @property
    def dedup_fraction(self) -> float:
        """Share of ray-voxel visits removed by de-duplication."""
        if self.ray_voxels_visited == 0:
            return 0.0
        return self.duplicates_removed / self.ray_voxels_visited

    @property
    def updates_per_scan(self) -> float:
        """Mean voxel updates dispatched per ingested scan."""
        if self.scans_ingested == 0:
            return 0.0
        return self.voxel_updates / self.scans_ingested

    def modelled_ingest_seconds(self, clock_hz: float) -> float:
        """Modelled hardware ingestion time at a given clock."""
        return self.modelled_ingest_cycles / clock_hz

    def modelled_updates_per_second(self, clock_hz: float) -> float:
        """Modelled sustained voxel-update throughput."""
        seconds = self.modelled_ingest_seconds(clock_hz)
        if seconds <= 0.0:
            return 0.0
        return self.voxel_updates / seconds

    @property
    def fanout_fraction(self) -> float:
        """Share of ingest wall time spent inside the execution backend."""
        if self.ingest_wall_seconds <= 0.0:
            return 0.0
        return self.fanout_wall_seconds / self.ingest_wall_seconds

    @property
    def frontend_fraction(self) -> float:
        """Share of ingest wall time spent in the ray-casting front end."""
        if self.ingest_wall_seconds <= 0.0:
            return 0.0
        return self.frontend_wall_seconds / self.ingest_wall_seconds

    @property
    def overlap_ratio(self) -> float:
        """Share of front-end wall time hidden behind in-flight applies.

        0.0 for blocking ingestion (nothing ever overlaps); approaches
        ``(batches - 1) / batches`` for a saturated pipelined stream, where
        every front end but the first runs while the workers apply the
        previous batch.
        """
        if self.frontend_wall_seconds <= 0.0:
            return 0.0
        return self.overlapped_frontend_seconds / self.frontend_wall_seconds

    @property
    def ingest_mode(self) -> str:
        """``"pipelined"`` or ``"blocking"`` (the stats-table label)."""
        return "pipelined" if self.pipelined else "blocking"

    @property
    def shard_utilization(self) -> float:
        """Worker utilization: mean shard load over the busiest shard's load.

        1.0 means perfectly balanced shards (every worker as busy as the
        critical one); ``1/num_shards`` means one shard did all the work.
        0.0 when nothing was ingested yet.
        """
        if not self.shard_updates:
            return 0.0
        busiest = max(self.shard_updates)
        if busiest == 0:
            return 0.0
        mean = sum(self.shard_updates) / len(self.shard_updates)
        return mean / busiest

    @property
    def wall_updates_per_second(self) -> float:
        """Host-side sustained voxel-update throughput (wall clock)."""
        if self.ingest_wall_seconds <= 0.0:
            return 0.0
        return self.voxel_updates / self.ingest_wall_seconds

    @property
    def mean_admission_wait_seconds(self) -> float:
        """Mean time a backpressured async submit waited for queue space."""
        if self.admission_waits == 0:
            return 0.0
        return self.admission_wait_seconds / self.admission_waits

    def to_dict(self) -> dict:
        """This session's counters as machine-readable JSON.

        The single source of truth shared by the rendered ASCII tables, the
        HTTP stats routes (``/v1/stats``, ``/v1/sessions/{sid}``) and the
        ``--metrics-json`` dump -- same counters, three surfaces.
        """
        return {
            "session_id": self.session_id,
            "backend": self.backend_name,
            "num_shards": self.num_shards,
            "pipelined": self.pipelined,
            "ingest": {
                "scans": self.scans_ingested,
                "points": self.points_ingested,
                "rays_cast": self.rays_cast,
                "voxel_updates": self.voxel_updates,
                "duplicates_removed": self.duplicates_removed,
                "batches": self.batches_dispatched,
                "deadline_misses": self.deadline_misses,
                "modelled_cycles": self.modelled_ingest_cycles,
                "wall_seconds": self.ingest_wall_seconds,
                "updates_per_second_wall": self.wall_updates_per_second,
                "shard_updates": list(self.shard_updates),
            },
            "admission": {
                "async_submits": self.async_submits,
                "waits": self.admission_waits,
                "wait_seconds": self.admission_wait_seconds,
                "rejects": self.queue_rejects,
                "quota_rejects": self.quota_rejects,
                "shed_requests": self.shed_requests,
                "queue_high_water": self.admission_queue_high_water,
                "flusher_cycles": self.flusher_cycles,
                "flusher_overlap_high_water": self.flusher_overlap_high_water,
            },
            "failover": {
                "snapshots_taken": self.snapshots_taken,
                "failovers": self.failovers,
                "replayed_batches": self.replayed_batches,
                "replayed_updates": self.replayed_updates,
                "recovery_wall_seconds": self.recovery_wall_seconds,
                "heartbeat_probes": self.heartbeat_probes,
                "heartbeat_failures": self.heartbeat_failures,
            },
            "queries": {
                "point": self.point_queries,
                "batch": self.batch_queries,
                "bbox": self.bbox_queries,
                "raycast": self.raycast_queries,
                "cache_hits": self.cache.hits,
                "cache_misses": self.cache.misses,
                "cache_hit_rate": self.cache.hit_rate,
                "negative_hits": self.cache.negative_hits,
                "negative_expired": self.cache.negative_expired,
                "bbox_cache_hits": self.cache.bbox_hits,
                "bbox_cache_misses": self.cache.bbox_misses,
                "bbox_cache_hit_rate": self.cache.bbox_hit_rate,
            },
        }


class ServiceStats:
    """Aggregated view over every session's counter block."""

    INGEST_HEADERS: Tuple[str, ...] = (
        "Session",
        "Scans",
        "Points",
        "Updates",
        "Dedup (%)",
        "Batches",
        "Deadline misses",
        "Modelled cycles",
        "Wall (s)",
    )
    QUERY_HEADERS: Tuple[str, ...] = (
        "Session",
        "Point queries",
        "Raycasts",
        "Bbox",
        "Cache hits",
        "Cache misses",
        "Hit rate (%)",
        "Stale drops",
        "Neg hits",
        "Bbox hits",
    )
    ADMISSION_HEADERS: Tuple[str, ...] = (
        "Session",
        "Async submits",
        "Waits",
        "Wait (s)",
        "Mean wait (ms)",
        "Rejects",
        "Quota rejects",
        "Shed",
        "Queue high-water",
    )
    FAILOVER_HEADERS: Tuple[str, ...] = (
        "Session",
        "Snapshots",
        "Failovers",
        "Replayed batches",
        "Replayed updates",
        "Recovery wall (ms)",
        "Heartbeats",
        "Missed",
    )
    BACKEND_HEADERS: Tuple[str, ...] = (
        "Session",
        "Backend",
        "Mode",
        "Shards",
        "Fan-out (s)",
        "Fan-out (% wall)",
        "Front end (% wall)",
        "Overlap (%)",
        "Utilization (%)",
        "Updates/s (wall)",
    )

    def __init__(self) -> None:
        self._sessions: Dict[str, SessionStats] = {}

    def register(self, stats: SessionStats) -> SessionStats:
        """Track one session's counter block (idempotent by session id)."""
        self._sessions[stats.session_id] = stats
        return stats

    def forget(self, session_id: str) -> None:
        """Stop tracking a closed session."""
        self._sessions.pop(session_id, None)

    def __iter__(self):
        return iter(self._sessions.values())

    def __len__(self) -> int:
        return len(self._sessions)

    def session(self, session_id: str) -> SessionStats:
        """Counter block of one session."""
        return self._sessions[session_id]

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_voxel_updates(self) -> int:
        """Voxel updates dispatched across all sessions."""
        return sum(stats.voxel_updates for stats in self)

    def total_queries(self) -> int:
        """Point queries served across all sessions."""
        return sum(stats.point_queries for stats in self)

    def overall_hit_rate(self) -> float:
        """Cache hit rate pooled over all sessions."""
        hits = sum(stats.cache.hits for stats in self)
        lookups = sum(stats.cache.lookups for stats in self)
        if lookups == 0:
            return 0.0
        return hits / lookups

    def to_dict(self) -> dict:
        """Every session's counters plus service totals, JSON-ready.

        The same numbers :meth:`render` draws as ASCII tables -- the stats
        half of the ``--metrics-json`` dump and the ``/v1/stats`` body, so
        tables, HTTP, and dashboards read one source of truth.
        """
        sessions = [
            stats.to_dict() for stats in sorted(self, key=lambda s: s.session_id)
        ]
        return {
            "sessions": sessions,
            "totals": {
                "num_sessions": len(self),
                "voxel_updates": self.total_voxel_updates(),
                "point_queries": self.total_queries(),
                "cache_hit_rate": self.overall_hit_rate(),
                "deadline_misses": sum(stats.deadline_misses for stats in self),
                "queue_rejects": sum(stats.queue_rejects for stats in self),
                "quota_rejects": sum(stats.quota_rejects for stats in self),
                "shed_requests": sum(stats.shed_requests for stats in self),
                "snapshots_taken": sum(stats.snapshots_taken for stats in self),
                "failovers": sum(stats.failovers for stats in self),
            },
        }

    # ------------------------------------------------------------------
    # Rendering (plugs into the repro.analysis table style)
    # ------------------------------------------------------------------
    @staticmethod
    def _ingest_row(stats: SessionStats) -> Tuple[object, ...]:
        return (
            stats.session_id,
            stats.scans_ingested,
            stats.points_ingested,
            stats.voxel_updates,
            100.0 * stats.dedup_fraction,
            stats.batches_dispatched,
            stats.deadline_misses,
            stats.modelled_ingest_cycles,
            stats.ingest_wall_seconds,
        )

    @staticmethod
    def _query_row(stats: SessionStats) -> Tuple[object, ...]:
        return (
            stats.session_id,
            stats.point_queries,
            stats.raycast_queries,
            stats.bbox_queries,
            stats.cache.hits,
            stats.cache.misses,
            100.0 * stats.cache.hit_rate,
            stats.cache.stale_hits,
            stats.cache.negative_hits,
            stats.cache.bbox_hits,
        )

    @staticmethod
    def _admission_row(stats: SessionStats) -> Tuple[object, ...]:
        return (
            stats.session_id,
            stats.async_submits,
            stats.admission_waits,
            stats.admission_wait_seconds,
            1e3 * stats.mean_admission_wait_seconds,
            stats.queue_rejects,
            stats.quota_rejects,
            stats.shed_requests,
            stats.admission_queue_high_water,
        )

    @staticmethod
    def _failover_row(stats: SessionStats) -> Tuple[object, ...]:
        return (
            stats.session_id,
            stats.snapshots_taken,
            stats.failovers,
            stats.replayed_batches,
            stats.replayed_updates,
            1e3 * stats.recovery_wall_seconds,
            stats.heartbeat_probes,
            stats.heartbeat_failures,
        )

    @staticmethod
    def _backend_row(stats: SessionStats) -> Tuple[object, ...]:
        return (
            stats.session_id,
            stats.backend_name,
            stats.ingest_mode,
            stats.num_shards,
            stats.fanout_wall_seconds,
            100.0 * stats.fanout_fraction,
            100.0 * stats.frontend_fraction,
            100.0 * stats.overlap_ratio,
            100.0 * stats.shard_utilization,
            stats.wall_updates_per_second,
        )

    @staticmethod
    def _has_admission_traffic(stats: SessionStats) -> bool:
        return bool(
            stats.async_submits
            or stats.queue_rejects
            or stats.quota_rejects
            or stats.shed_requests
        )

    @staticmethod
    def _has_failover_traffic(stats: SessionStats) -> bool:
        return bool(stats.snapshots_taken or stats.failovers or stats.heartbeat_probes)

    def ingest_rows(self) -> List[Tuple[object, ...]]:
        """Table rows of the ingestion-side counters (all sessions)."""
        return [self._ingest_row(s) for s in sorted(self, key=lambda s: s.session_id)]

    def query_rows(self) -> List[Tuple[object, ...]]:
        """Table rows of the query-side counters (all sessions)."""
        return [self._query_row(s) for s in sorted(self, key=lambda s: s.session_id)]

    def admission_rows(self) -> List[Tuple[object, ...]]:
        """Table rows of the asyncio admission counters (async sessions only)."""
        return [
            self._admission_row(s)
            for s in sorted(self, key=lambda s: s.session_id)
            if self._has_admission_traffic(s)
        ]

    def failover_rows(self) -> List[Tuple[object, ...]]:
        """Table rows of snapshot/failover counters (sessions that used them)."""
        return [
            self._failover_row(s)
            for s in sorted(self, key=lambda s: s.session_id)
            if self._has_failover_traffic(s)
        ]

    def backend_rows(self) -> List[Tuple[object, ...]]:
        """Table rows of the execution-backend counters (all sessions)."""
        return [self._backend_row(s) for s in sorted(self, key=lambda s: s.session_id)]

    # ------------------------------------------------------------------
    # Top-K selection (render() stays readable at hundreds of sessions)
    # ------------------------------------------------------------------
    @staticmethod
    def _select(
        stats_list: List[SessionStats], traffic, top_sessions: int
    ) -> Tuple[List[SessionStats], List[SessionStats]]:
        """Split into (shown, folded): top-K by traffic, id-sorted for display."""
        if top_sessions <= 0 or len(stats_list) <= top_sessions:
            return stats_list, []
        ranked = sorted(stats_list, key=traffic, reverse=True)
        top = {id(s) for s in ranked[:top_sessions]}
        shown = [s for s in stats_list if id(s) in top]
        folded = [s for s in stats_list if id(s) not in top]
        return shown, folded

    @staticmethod
    def _ratio(numerator: float, denominator: float) -> float:
        return numerator / denominator if denominator > 0 else 0.0

    def _ingest_aggregate(self, folded: List[SessionStats]) -> Tuple[object, ...]:
        visited = sum(s.ray_voxels_visited for s in folded)
        removed = sum(s.duplicates_removed for s in folded)
        return (
            f"(+{len(folded)} more)",
            sum(s.scans_ingested for s in folded),
            sum(s.points_ingested for s in folded),
            sum(s.voxel_updates for s in folded),
            100.0 * self._ratio(removed, visited),
            sum(s.batches_dispatched for s in folded),
            sum(s.deadline_misses for s in folded),
            sum(s.modelled_ingest_cycles for s in folded),
            sum(s.ingest_wall_seconds for s in folded),
        )

    def _query_aggregate(self, folded: List[SessionStats]) -> Tuple[object, ...]:
        hits = sum(s.cache.hits for s in folded)
        lookups = sum(s.cache.lookups for s in folded)
        return (
            f"(+{len(folded)} more)",
            sum(s.point_queries for s in folded),
            sum(s.raycast_queries for s in folded),
            sum(s.bbox_queries for s in folded),
            hits,
            sum(s.cache.misses for s in folded),
            100.0 * self._ratio(hits, lookups),
            sum(s.cache.stale_hits for s in folded),
            sum(s.cache.negative_hits for s in folded),
            sum(s.cache.bbox_hits for s in folded),
        )

    def _admission_aggregate(self, folded: List[SessionStats]) -> Tuple[object, ...]:
        waits = sum(s.admission_waits for s in folded)
        wait_seconds = sum(s.admission_wait_seconds for s in folded)
        return (
            f"(+{len(folded)} more)",
            sum(s.async_submits for s in folded),
            waits,
            wait_seconds,
            1e3 * self._ratio(wait_seconds, waits),
            sum(s.queue_rejects for s in folded),
            sum(s.quota_rejects for s in folded),
            sum(s.shed_requests for s in folded),
            max(s.admission_queue_high_water for s in folded),
        )

    def _failover_aggregate(self, folded: List[SessionStats]) -> Tuple[object, ...]:
        return (
            f"(+{len(folded)} more)",
            sum(s.snapshots_taken for s in folded),
            sum(s.failovers for s in folded),
            sum(s.replayed_batches for s in folded),
            sum(s.replayed_updates for s in folded),
            1e3 * sum(s.recovery_wall_seconds for s in folded),
            sum(s.heartbeat_probes for s in folded),
            sum(s.heartbeat_failures for s in folded),
        )

    def _backend_aggregate(self, folded: List[SessionStats]) -> Tuple[object, ...]:
        wall = sum(s.ingest_wall_seconds for s in folded)
        fanout = sum(s.fanout_wall_seconds for s in folded)
        frontend = sum(s.frontend_wall_seconds for s in folded)
        overlapped = sum(s.overlapped_frontend_seconds for s in folded)
        return (
            f"(+{len(folded)} more)",
            "-",
            "-",
            sum(s.num_shards for s in folded),
            fanout,
            100.0 * self._ratio(fanout, wall),
            100.0 * self._ratio(frontend, wall),
            100.0 * self._ratio(overlapped, frontend),
            100.0 * self._ratio(
                sum(s.shard_utilization for s in folded), len(folded)
            ),
            self._ratio(sum(s.voxel_updates for s in folded), wall),
        )

    def _table(
        self,
        title: str,
        headers: Tuple[str, ...],
        stats_list: List[SessionStats],
        row,
        aggregate,
        traffic,
        top_sessions: int,
    ) -> str:
        shown, folded = self._select(stats_list, traffic, top_sessions)
        rows = [row(s) for s in shown]
        if folded:
            rows.append(aggregate(folded))
            title = f"{title} (top {len(shown)} of {len(stats_list)} by traffic)"
        return render_table(title, headers, rows)

    def render(self, top_sessions: int = 10) -> str:
        """All counter tables as one printable block.

        At high session counts a flat dump is unreadable, so each table
        shows at most ``top_sessions`` rows -- the busiest sessions by that
        table's traffic metric -- plus one aggregate row folding the rest
        (sums, with rates pooled over the folded sessions).
        :meth:`to_dict` is unaffected and always carries every session.
        ``top_sessions <= 0`` disables the folding.
        """
        sessions = sorted(self, key=lambda s: s.session_id)
        block = self._table(
            "Serving: ingestion per session",
            self.INGEST_HEADERS,
            sessions,
            self._ingest_row,
            self._ingest_aggregate,
            lambda s: s.scans_ingested,
            top_sessions,
        )
        block += "\n\n" + self._table(
            "Serving: queries per session",
            self.QUERY_HEADERS,
            sessions,
            self._query_row,
            self._query_aggregate,
            lambda s: s.point_queries + s.raycast_queries + s.bbox_queries,
            top_sessions,
        )
        block += "\n\n" + self._table(
            "Serving: execution backend per session",
            self.BACKEND_HEADERS,
            sessions,
            self._backend_row,
            self._backend_aggregate,
            lambda s: s.voxel_updates,
            top_sessions,
        )
        admission_sessions = [s for s in sessions if self._has_admission_traffic(s)]
        if admission_sessions:
            block += "\n\n" + self._table(
                "Serving: async admission per session",
                self.ADMISSION_HEADERS,
                admission_sessions,
                self._admission_row,
                self._admission_aggregate,
                lambda s: s.async_submits,
                top_sessions,
            )
        failover_sessions = [s for s in sessions if self._has_failover_traffic(s)]
        if failover_sessions:
            block += "\n\n" + self._table(
                "Serving: snapshots and failover per session",
                self.FAILOVER_HEADERS,
                failover_sessions,
                self._failover_row,
                self._failover_aggregate,
                lambda s: s.failovers + s.snapshots_taken + s.heartbeat_probes,
                top_sessions,
            )
        return block
