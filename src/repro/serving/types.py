"""Request and response types of the occupancy-mapping service.

Everything a client exchanges with :class:`~repro.serving.manager.
MapSessionManager` is a small immutable dataclass defined here, so the
session, pipeline, query-engine and stats layers share one vocabulary and the
wire format of a future RPC front end is already pinned down.

The ``Shard*`` messages at the bottom are the *internal* wire format between
a session and its shard execution backend
(:mod:`repro.serving.backends`).  They are deliberately flat -- ints, floats,
strings and tuples of them -- so every message pickles cheaply across a
process boundary; voxel updates travel as packed ``(x, y, z, occupied)``
tuples and are rebuilt into :class:`~repro.core.scheduler.VoxelUpdateRequest`
objects on the worker side, keeping object construction inside the parallel
section.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

from repro.core.scheduler import VoxelUpdateRequest
from repro.octomap.keys import OcTreeKey
from repro.octomap.pointcloud import PointCloud, ScanNode

__all__ = [
    "ScanRequest",
    "IngestReceipt",
    "ApplyTicket",
    "BatchReport",
    "QueryResponse",
    "BoxOccupancySummary",
    "BboxChunk",
    "RaycastResponse",
    "ShardUpdateBatch",
    "ShardApplyResult",
    "ShardQueryRequest",
    "ShardQueryResult",
    "ShardExportResult",
    "ShardSnapshot",
]


@dataclass(frozen=True)
class ScanRequest:
    """One client scan awaiting ingestion into a map session.

    Attributes:
        session_id: name of the map session the scan belongs to.
        cloud: scan points already expressed in the world frame.
        origin: sensor origin in the world frame.
        max_range: beam truncation range (``-1`` disables truncation).
        priority: larger values are served first by the priority scheduler.
        deadline_s: absolute service deadline on the ``time.monotonic`` clock
            (earliest-deadline-first scheduling; a request popped for a flush
            after its deadline is counted as a deadline miss); ``inf`` means
            "no deadline".
        client_id: opaque client tag carried through to the stats layer.
        request_id: service-assigned monotonically increasing id; also the
            FIFO tiebreaker of every scheduler, so equal-priority /
            equal-deadline requests keep arrival order.
    """

    session_id: str
    cloud: PointCloud
    origin: Tuple[float, float, float]
    max_range: float = -1.0
    priority: int = 0
    deadline_s: float = math.inf
    client_id: str = ""
    request_id: int = -1

    @classmethod
    def from_scan_node(
        cls,
        session_id: str,
        scan: ScanNode,
        max_range: float = -1.0,
        priority: int = 0,
        deadline_s: float = math.inf,
        client_id: str = "",
    ) -> "ScanRequest":
        """Build a request from a dataset scan node (world-frame conversion included)."""
        origin = scan.origin()
        return cls(
            session_id=session_id,
            cloud=scan.world_cloud(),
            origin=(float(origin[0]), float(origin[1]), float(origin[2])),
            max_range=max_range,
            priority=priority,
            deadline_s=deadline_s,
            client_id=client_id,
        )

    def with_request_id(self, request_id: int) -> "ScanRequest":
        """Copy of this request carrying the service-assigned id."""
        return replace(self, request_id=request_id)


@dataclass(frozen=True)
class IngestReceipt:
    """Acknowledgement returned when a scan request is accepted."""

    request_id: int
    session_id: str
    num_points: int
    queue_depth: int


@dataclass(frozen=True)
class BatchReport:
    """Summary of one dispatched ingestion batch.

    Attributes:
        session_id: session the batch belonged to.
        batch_id: per-session batch sequence number.
        request_ids: requests in dispatch order (the scheduler's order).
        scans: number of scans coalesced into the batch.
        rays_cast: beams ray-cast by the shared front end.
        ray_voxels_visited: voxel visits before de-duplication.
        voxel_updates: updates actually dispatched after de-duplication.
        duplicates_removed: visits removed by the overlapping-ray de-dup.
        shard_updates: updates dispatched to each shard (index = shard id).
        modelled_cycles: critical-path cycles of the batch (slowest shard;
            the shard workers run in parallel).
        wall_seconds: host-side wall-clock time spent processing the batch
            (front end + dispatch + drain wait; for a pipelined batch the
            drain wait is whatever remained of the apply after the next
            batch's front end ran alongside it).
        fanout_seconds: portion of ``wall_seconds`` spent inside the shard
            execution backend (dispatch + drain wait); the rest is the
            shared ray-casting front end.
        frontend_seconds: portion of ``wall_seconds`` spent in the shared
            ray-casting front end (pop + DDA + de-dup + partition).
        drain_wait_seconds: time the parent spent blocked waiting for the
            shard acknowledgements of *this* batch.  In pipelined mode this
            shrinks towards zero as the overlap hides the apply.
        pipelined: True when the batch went through the double-buffered
            (``apply_async``/``drain``) path.
        overlapped: True when this batch's front end ran while a previous
            batch was still in flight on the workers (the overlap window the
            pipelined mode exists to open).
        backend: name of the shard execution backend that applied the batch.
        deadline_misses: requests in the batch whose ``deadline_s`` had
            already passed (on the ``time.monotonic`` clock) when the
            scheduler popped them for this flush.
    """

    session_id: str
    batch_id: int
    request_ids: Tuple[int, ...]
    scans: int
    rays_cast: int
    ray_voxels_visited: int
    voxel_updates: int
    duplicates_removed: int
    shard_updates: Tuple[int, ...]
    modelled_cycles: int
    wall_seconds: float
    fanout_seconds: float = 0.0
    frontend_seconds: float = 0.0
    drain_wait_seconds: float = 0.0
    pipelined: bool = False
    overlapped: bool = False
    backend: str = "inline"
    deadline_misses: int = 0


@dataclass(frozen=True)
class QueryResponse:
    """Answer to one point occupancy query.

    Attributes:
        status: ``"occupied"``, ``"free"`` or ``"unknown"``.
        probability: occupancy probability, or ``None`` when unknown.
        shard_id: shard that owns (or would own) the voxel.
        cached: True when the answer came from the query cache.
        cycles: modelled service cycles (0 for a cache hit).
    """

    status: str
    probability: Optional[float]
    shard_id: int
    cached: bool = False
    cycles: int = 0

    @property
    def occupied(self) -> bool:
        """Shorthand collision predicate."""
        return self.status == "occupied"


@dataclass(frozen=True)
class BoxOccupancySummary:
    """Aggregate of a bounding-box occupancy sweep."""

    occupied: int
    free: int
    unknown: int
    voxels_scanned: int
    cache_hits: int

    @property
    def any_occupied(self) -> bool:
        """True when at least one voxel inside the box is occupied."""
        return self.occupied > 0


@dataclass(frozen=True)
class BboxChunk:
    """One bounded slice of a streamed bounding-box sweep.

    :meth:`~repro.serving.query_engine.QueryEngine.iter_bbox` yields these
    instead of materialising a whole-box result, so a network front end can
    relay each slice as one chunked-transfer frame while the sweep is still
    running.

    Attributes:
        index: zero-based position of the chunk within its sweep.
        voxels: classified voxel centres ``(x, y, z, status)`` in sweep
            order, at most the sweep's ``chunk_voxels`` of them.
        occupied / free / unknown: per-status counts within this chunk.
        cache_hits: chunk lookups served from the query cache.
        voxels_total: size of the *whole* sweep in voxels (every chunk
            carries it, so a consumer can report progress from any frame).
    """

    index: int
    voxels: Tuple[Tuple[float, float, float, str], ...]
    occupied: int
    free: int
    unknown: int
    cache_hits: int
    voxels_total: int


@dataclass(frozen=True)
class RaycastResponse:
    """Result of a collision ray query.

    Attributes:
        hit: whether the ray struck an occupied voxel.
        hit_point: metric centre of the struck voxel (``None`` when no hit).
        distance: metric distance from the origin to the hit point.
        voxels_traversed: voxels inspected along the ray.
        cache_hits: inspections served from the query cache.
    """

    hit: bool
    hit_point: Optional[Tuple[float, float, float]]
    distance: float
    voxels_traversed: int
    cache_hits: int


# ---------------------------------------------------------------------------
# Shard backend wire messages (session <-> shard execution backend)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShardUpdateBatch:
    """One shard's slice of a flushed ingestion batch.

    Attributes:
        shard_id: shard the slice is addressed to.
        entries: packed updates ``(key_x, key_y, key_z, occupied)`` in
            dispatch order.  The packed form pickles an order of magnitude
            cheaper than the :class:`~repro.core.scheduler.VoxelUpdateRequest`
            objects it encodes, and rebuilding those objects happens on the
            worker -- inside the parallel section for pool backends.
    """

    shard_id: int
    entries: Tuple[Tuple[int, int, int, bool], ...]

    @classmethod
    def from_updates(
        cls, shard_id: int, updates: Sequence[VoxelUpdateRequest]
    ) -> "ShardUpdateBatch":
        """Pack an ordered update stream for the wire."""
        return cls(
            shard_id=shard_id,
            entries=tuple(
                (update.key.x, update.key.y, update.key.z, update.occupied)
                for update in updates
            ),
        )

    @classmethod
    def from_key_arrays(cls, shard_id: int, keys, occupied) -> "ShardUpdateBatch":
        """Pack an ``(N, 3)`` key array plus ``(N,)`` occupied flags for the wire.

        ``tolist()`` converts the numpy scalars to plain ints/bools, so the
        resulting entries are byte-identical (and pickle-identical) to what
        :meth:`from_updates` builds from the equivalent request stream.
        """
        return cls(
            shard_id=shard_id,
            entries=tuple(
                (key[0], key[1], key[2], flag)
                for key, flag in zip(keys.tolist(), occupied.tolist())
            ),
        )

    def to_updates(self) -> Tuple[VoxelUpdateRequest, ...]:
        """Rebuild the ordered update stream on the worker side."""
        return tuple(
            VoxelUpdateRequest(OcTreeKey(x, y, z), occupied)
            for x, y, z, occupied in self.entries
        )

    def __len__(self) -> int:
        return len(self.entries)


@dataclass(frozen=True)
class ApplyTicket:
    """Receipt for one asynchronously dispatched flush (double buffering).

    :meth:`~repro.serving.backends.ShardBackend.apply_async` returns a ticket
    instead of results; :meth:`~repro.serving.backends.ShardBackend.drain`
    redeems it for the per-shard acknowledgements once the workers finish.
    The backend keeps *at most one* ticket in flight, which is exactly the
    double-buffering depth: workers apply batch N while the parent ray-casts
    batch N+1.

    Attributes:
        ticket_id: backend-assigned monotonically increasing id.
        shard_ids: shards that received a non-empty slice of the batch;
            reads of these shards must barrier on the ticket before trusting
            parent-side generation stamps.
    """

    ticket_id: int
    shard_ids: Tuple[int, ...]


@dataclass(frozen=True)
class ShardApplyResult:
    """A shard worker's acknowledgement of one applied update batch.

    Attributes:
        shard_id: shard that applied the batch.
        updates_applied: updates in the batch (echoed back for accounting).
        critical_path_cycles: modelled cycles of this batch on this shard's
            accelerator (0 for an empty batch).
        generation: the shard's write generation *after* the apply; the
            parent-side cache bookkeeping adopts this value, which keeps
            generation-stamped invalidation correct across process
            boundaries.
    """

    shard_id: int
    updates_applied: int
    critical_path_cycles: int
    generation: int


@dataclass(frozen=True)
class ShardQueryRequest:
    """One voxel-key occupancy lookup addressed to a shard."""

    shard_id: int
    key: Tuple[int, int, int]


@dataclass(frozen=True)
class ShardQueryResult:
    """A shard worker's answer to one voxel-key lookup."""

    shard_id: int
    status: str
    probability: Optional[float]
    cycles: int
    generation: int


@dataclass(frozen=True)
class ShardExportResult:
    """A shard worker's exported subtree, stamped with its write generation."""

    shard_id: int
    tree: object  # OccupancyOcTree; typed loosely to keep this module light
    generation: int


@dataclass(frozen=True)
class ShardSnapshot:
    """A durable point-in-time image of one shard's map state.

    The payload is the shard's exported subtree in the
    :mod:`repro.octomap.serialization` byte format, so a snapshot taken by
    one worker can rehydrate the shard on any other worker (live failover)
    or survive on disk between runs.  The accounting fields restore the
    shard's externally visible counters -- in particular ``generation``,
    which the query cache's invalidation stamps build on: a restored shard
    replays its un-snapshotted flushes on top of this image, each non-empty
    replayed batch bumps the generation by one, and the shard ends up at
    exactly the generation the parent last adopted.

    Attributes:
        shard_id: shard the image belongs to.
        generation: the shard's write generation when the image was taken.
        batches_applied: batches applied up to the image.
        updates_applied: voxel updates applied up to the image.
        payload: serialized subtree bytes (``serialize_tree`` format).
    """

    shard_id: int
    generation: int
    batches_applied: int
    updates_applied: int
    payload: bytes
