"""Integration tests for the experiment drivers (smoke-scale workloads).

These tests check that every table / figure driver runs end to end and that
the *shape* of the paper's results holds: OMU is faster than the i9, which is
faster than the A57; OMU clears the 30 FPS real-time bar; the CPU breakdown is
dominated by prune/expand while the accelerator's is not; and the power / area
models land on the paper's headline numbers.
"""

import pytest

from repro.analysis.experiments import (
    evaluate_dataset,
    figure3_cpu_breakdown,
    figure8_area,
    figure9_fr079,
    figure10_accelerator_breakdown,
    power_budget,
    table1_related_work,
    table2_dataset_details,
    table3_latency,
    table4_throughput,
    table5_energy,
)
from repro.octomap.counters import OperationKind

SCALE = "smoke"


@pytest.fixture(scope="module")
def corridor_evaluation():
    return evaluate_dataset("FR-079 corridor", scale=SCALE)


class TestEvaluateDataset:
    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError):
            evaluate_dataset("FR-079 corridor", scale="galactic")

    def test_evaluation_is_cached(self, corridor_evaluation):
        again = evaluate_dataset("FR-079 corridor", scale=SCALE)
        assert again is corridor_evaluation

    def test_scaled_run_produced_updates(self, corridor_evaluation):
        assert corridor_evaluation.scaled_voxel_updates > 500

    def test_omu_is_faster_than_both_cpus(self, corridor_evaluation):
        assert corridor_evaluation.omu_latency_s < corridor_evaluation.i9_latency_s
        assert corridor_evaluation.i9_latency_s < corridor_evaluation.a57_latency_s

    def test_omu_speedup_magnitudes_match_paper_shape(self, corridor_evaluation):
        speedup_i9 = corridor_evaluation.i9_latency_s / corridor_evaluation.omu_latency_s
        speedup_a57 = corridor_evaluation.a57_latency_s / corridor_evaluation.omu_latency_s
        assert 5.0 < speedup_i9 < 30.0
        assert 25.0 < speedup_a57 < 130.0

    def test_omu_meets_real_time_on_corridor(self, corridor_evaluation):
        assert corridor_evaluation.omu_fps > 30.0

    def test_cpu_breakdown_is_prune_dominated(self, corridor_evaluation):
        breakdown = corridor_evaluation.cpu_breakdown
        assert max(breakdown, key=breakdown.get) == OperationKind.PRUNE_EXPAND
        assert breakdown[OperationKind.PRUNE_EXPAND] > 0.4

    def test_omu_breakdown_prune_share_is_small(self, corridor_evaluation):
        assert corridor_evaluation.omu_breakdown[OperationKind.PRUNE_EXPAND] < 0.25

    def test_energy_benefit_is_hundreds_of_times(self, corridor_evaluation):
        benefit = corridor_evaluation.a57_energy_j / corridor_evaluation.omu_energy_j
        assert 200.0 < benefit < 2000.0

    def test_parallel_speedup_uses_several_pes(self, corridor_evaluation):
        assert corridor_evaluation.omu_parallel_speedup > 2.0


class TestStaticExperiments:
    def test_table1_contains_omu_as_the_only_full_solution(self):
        result = table1_related_work()
        assert result.experiment_id == "table1"
        omu_row = [row for row in result.rows if "OMU" in str(row[0])][0]
        assert omu_row[1:] == (True, True, True)
        assert "OMU" in result.rendered

    def test_figure8_area_totals(self):
        result = figure8_area()
        rows = {str(row[0]): row[1] for row in result.rows}
        assert rows["Total"] == pytest.approx(2.5, rel=0.05)

    def test_power_budget_rows(self):
        result = power_budget()
        rows = {str(row[0]): row[1] for row in result.rows}
        assert rows["Total power (mW)"] == pytest.approx(250.8, rel=0.05)
        assert rows["SRAM share (%)"] == pytest.approx(91.0, abs=3.0)


class TestDatasetExperiments:
    def test_table2_has_one_row_per_dataset(self):
        result = table2_dataset_details(scale=SCALE)
        assert len(result.rows) == 3
        assert "Table II" in result.rendered

    def test_table3_speedups_exceed_one(self):
        result = table3_latency(scale=SCALE)
        for row in result.rows:
            assert row[5] > 1.0  # speedup over i9
            assert row[7] > 1.0  # speedup over A57

    def test_table4_omu_beats_both_cpus_everywhere(self):
        result = table4_throughput(scale=SCALE)
        for row in result.rows:
            i9_fps, a57_fps, omu_fps = row[1], row[2], row[3]
            assert omu_fps > i9_fps > a57_fps

    def test_table5_energy_benefit_is_large(self):
        result = table5_energy(scale=SCALE)
        for row in result.rows:
            assert row[5] > 100.0

    def test_figure3_prune_expand_is_the_largest_stage(self):
        result = figure3_cpu_breakdown(scale=SCALE)
        for row in result.rows:
            stages = row[1:5]
            assert max(stages) == stages[3]

    def test_figure9_orders_the_three_platforms(self):
        result = figure9_fr079(scale=SCALE)
        latencies = {str(row[0]): row[1] for row in result.rows}
        assert latencies["OMU accelerator"] < latencies["Intel i9 CPU"] < latencies["Arm A57 CPU"]
        assert "Fig. 9(a)" in result.rendered and "Fig. 9(b)" in result.rendered

    def test_figure10_has_cpu_and_accelerator_rows_per_dataset(self):
        result = figure10_accelerator_breakdown(scale=SCALE)
        assert len(result.rows) == 6
        backends = {str(row[1]) for row in result.rows}
        assert backends == {"i9 CPU", "OMU"}
