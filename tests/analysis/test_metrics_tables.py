"""Unit tests for the analysis metrics and ASCII rendering helpers."""

import pytest

from repro.analysis.metrics import (
    breakdown_as_percentages,
    energy_benefit,
    normalise_breakdown,
    relative_error,
    speedup,
)
from repro.analysis.tables import format_quantity, render_bar_chart, render_table
from repro.octomap.counters import OperationKind


class TestMetrics:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)

    def test_speedup_rejects_non_positive(self):
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)
        with pytest.raises(ValueError):
            speedup(1.0, -1.0)

    def test_energy_benefit(self):
        assert energy_benefit(200.0, 0.5) == pytest.approx(400.0)
        with pytest.raises(ValueError):
            energy_benefit(0.0, 1.0)

    def test_normalise_breakdown(self):
        breakdown = {OperationKind.UPDATE_LEAF: 2.0, OperationKind.PRUNE_EXPAND: 6.0}
        normalised = normalise_breakdown(breakdown)
        assert sum(normalised.values()) == pytest.approx(1.0)
        assert normalised[OperationKind.PRUNE_EXPAND] == pytest.approx(0.75)
        assert normalised[OperationKind.RAY_CASTING] == 0.0

    def test_normalise_all_zero_breakdown(self):
        assert all(value == 0.0 for value in normalise_breakdown({}).values())

    def test_breakdown_as_percentages(self):
        breakdown = {OperationKind.UPDATE_LEAF: 1.0, OperationKind.PRUNE_EXPAND: 3.0}
        percentages = breakdown_as_percentages(breakdown)
        assert percentages[OperationKind.PRUNE_EXPAND] == pytest.approx(75.0)

    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert relative_error(9.0, 10.0) == pytest.approx(-0.1)
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)


class TestFormatting:
    def test_format_quantity_none(self):
        assert format_quantity(None) == "-"

    def test_format_quantity_bool(self):
        assert format_quantity(True) == "yes"
        assert format_quantity(False) == "no"

    def test_format_quantity_int_uses_thousands_separator(self):
        assert format_quantity(1234567) == "1,234,567"

    def test_format_quantity_float_ranges(self):
        assert format_quantity(0.0) == "0"
        assert format_quantity(12.3456) == "12.35"
        assert format_quantity(0.0123) == "0.012"
        assert format_quantity(1.2e-6) == "1.200e-06"
        assert format_quantity(12345.6) == "12,346"

    def test_format_quantity_string_passthrough(self):
        assert format_quantity("OMU") == "OMU"


class TestRenderTable:
    def test_render_contains_title_headers_and_rows(self):
        text = render_table("My table", ("A", "B"), [(1, 2.5), ("x", None)])
        assert "My table" in text
        assert "A" in text and "B" in text
        assert "2.50" in text
        assert "-" in text

    def test_columns_are_aligned(self):
        text = render_table("T", ("left", "right"), [("a", "b")])
        lines = text.splitlines()
        assert len(set(len(line) for line in lines[1:])) <= 2

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table("T", ("A", "B"), [(1,)])


class TestRenderBarChart:
    def test_bars_scale_with_values(self):
        text = render_bar_chart("Chart", {"small": 1.0, "big": 10.0}, width=20)
        lines = {line.split("|")[0].strip(): line for line in text.splitlines()[1:]}
        assert lines["big"].count("#") == 20
        assert 1 <= lines["small"].count("#") <= 3

    def test_empty_chart(self):
        assert "(no data)" in render_bar_chart("Chart", {})

    def test_zero_values_produce_no_bars(self):
        text = render_bar_chart("Chart", {"a": 0.0, "b": 0.0})
        assert "#" not in text

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_bar_chart("Chart", {"a": 1.0}, width=0)

    def test_unit_suffix(self):
        assert "FPS" in render_bar_chart("Chart", {"a": 1.0}, unit=" FPS")
