"""The service-level experiment driver."""

from __future__ import annotations

from repro.analysis import run_service_workload, service_scaling_experiment
from repro.datasets.streams import ClientSpec

TINY_CLIENTS = (
    ClientSpec(client_id="a", session_id="s1", scene="corridor", num_scans=1, priority=1),
    ClientSpec(client_id="b", session_id="s2", scene="campus", num_scans=1),
)


def test_run_service_workload_returns_populated_manager():
    manager = run_service_workload(TINY_CLIENTS, num_shards=2, query_rounds=2)
    assert manager.session_ids() == ("s1", "s2")
    assert manager.service_stats.total_voxel_updates() > 0
    assert manager.service_stats.total_queries() > 0
    assert manager.service_stats.overall_hit_rate() > 0.0


def test_service_scaling_experiment_table_shape():
    result = service_scaling_experiment(
        TINY_CLIENTS,
        scheduler_policies=("fifo", "priority"),
        shard_counts=(1, 2),
    )
    assert result.experiment_id == "service_scaling"
    assert len(result.rows) == 4
    assert all(len(row) == len(result.headers) for row in result.rows)
    assert "Serving layer" in result.rendered
    # Every configuration dispatched the same updates (equivalence!) ...
    updates = {row[4] for row in result.rows}
    assert len(updates) == 1
    # ... and sharding never slows the modelled ingest down.
    by_policy = {}
    for row in result.rows:
        by_policy.setdefault(row[0], {})[row[1]] = row[6]
    for policy, latencies in by_policy.items():
        assert latencies[2] <= latencies[1] * 1.001, (policy, latencies)
