"""The service-level experiment driver."""

from __future__ import annotations

import json

from repro.analysis import run_service_workload, service_scaling_experiment
from repro.analysis.service import (
    backend_scaling_experiment,
    frontend_scaling_experiment,
    frontend_vectorized_experiment,
    http_frontend_experiment,
    main,
    run_async_service_workload,
    write_benchmark_json,
)
from repro.datasets.streams import ClientSpec

TINY_CLIENTS = (
    ClientSpec(client_id="a", session_id="s1", scene="corridor", num_scans=1, priority=1),
    ClientSpec(client_id="b", session_id="s2", scene="campus", num_scans=1),
)


def test_run_service_workload_returns_populated_manager():
    manager = run_service_workload(TINY_CLIENTS, num_shards=2, query_rounds=2)
    assert manager.session_ids() == ("s1", "s2")
    assert manager.service_stats.total_voxel_updates() > 0
    assert manager.service_stats.total_queries() > 0
    assert manager.service_stats.overall_hit_rate() > 0.0


def test_service_scaling_experiment_table_shape():
    result = service_scaling_experiment(
        TINY_CLIENTS,
        scheduler_policies=("fifo", "priority"),
        shard_counts=(1, 2),
    )
    assert result.experiment_id == "service_scaling"
    assert len(result.rows) == 4
    assert all(len(row) == len(result.headers) for row in result.rows)
    assert "Serving layer" in result.rendered
    # Every configuration dispatched the same updates (equivalence!) ...
    updates = {row[4] for row in result.rows}
    assert len(updates) == 1
    # ... and sharding never slows the modelled ingest down.
    by_policy = {}
    for row in result.rows:
        by_policy.setdefault(row[0], {})[row[1]] = row[6]
    for policy, latencies in by_policy.items():
        assert latencies[2] <= latencies[1] * 1.001, (policy, latencies)


def test_backend_scaling_experiment_covers_backend_x_shards_x_mode():
    result = backend_scaling_experiment(
        TINY_CLIENTS,
        backends=("inline", "thread", "process"),
        shard_counts=(1, 2),
    )
    assert result.experiment_id == "backend_scaling"
    # backends x shard counts x {blocking, pipelined}
    assert len(result.rows) == 12
    assert all(len(row) == len(result.headers) for row in result.rows)
    records = result.records()
    assert {r["Backend"] for r in records} == {"inline", "thread", "process"}
    assert {r["Mode"] for r in records} == {"blocking", "pipelined"}
    # Every backend and mode dispatched the same updates (equivalence).
    assert len({r["Updates"] for r in records}) == 1
    # Wall-clock columns are populated and positive.
    assert all(r["Ingest wall (s)"] > 0 and r["Updates/s (wall)"] > 0 for r in records)
    # Blocking rows are their own pipeline baseline; inline blocking is the
    # cross-backend baseline.
    assert all(r["Pipeline gain"] == 1.0 for r in records if r["Mode"] == "blocking")
    assert all(
        r["Speedup vs inline"] == 1.0
        for r in records
        if r["Backend"] == "inline" and r["Mode"] == "blocking"
    )


def test_backend_scaling_experiment_can_pin_one_mode():
    result = backend_scaling_experiment(
        TINY_CLIENTS, backends=("inline",), shard_counts=(1,), modes=(True,)
    )
    records = result.records()
    assert len(records) == 1
    assert records[0]["Mode"] == "pipelined"
    # No blocking baseline in the sweep -> the gain column degrades politely.
    assert records[0]["Pipeline gain"] == "n/a"


def test_run_async_service_workload_matches_sync_updates():
    sync_manager = run_service_workload(TINY_CLIENTS, num_shards=2, query_rounds=0)
    async_manager, latencies = run_async_service_workload(TINY_CLIENTS, num_shards=2)
    assert (
        async_manager.service_stats.total_voxel_updates()
        == sync_manager.service_stats.total_voxel_updates()
    )
    assert len(latencies) == sum(spec.num_scans for spec in TINY_CLIENTS)
    assert all(latency >= 0.0 for latency in latencies)
    stats = list(async_manager.service_stats)
    assert sum(block.async_submits for block in stats) == len(latencies)


def test_frontend_scaling_experiment_covers_sync_vs_async():
    result = frontend_scaling_experiment(
        client_counts=(1, 2), scans_per_client=1, num_shards=1, batch_size=1
    )
    assert result.experiment_id == "frontend_scaling"
    # {sync, async} x client counts
    assert len(result.rows) == 4
    assert all(len(row) == len(result.headers) for row in result.rows)
    records = result.records()
    assert {r["Front end"] for r in records} == {"sync", "async"}
    assert {r["Clients"] for r in records} == {1, 2}
    # Same stream -> same maps -> same dispatched updates per client count.
    by_count = {}
    for r in records:
        by_count.setdefault(r["Clients"], set()).add(r["Updates"])
    assert all(len(updates) == 1 for updates in by_count.values())
    # The headline claim: async admission does not hold the client for the
    # whole ingest path.  Sync "admit" latency *is* ingestion; async stays
    # orders of magnitude below it even with concurrent clients.
    for count in (1, 2):
        sync_row = next(r for r in records if r["Front end"] == "sync" and r["Clients"] == count)
        async_row = next(r for r in records if r["Front end"] == "async" and r["Clients"] == count)
        assert async_row["Mean admit (ms)"] < sync_row["Mean admit (ms)"]
    assert "sync vs async" in result.title


def test_write_benchmark_json_round_trips(tmp_path):
    result = backend_scaling_experiment(TINY_CLIENTS, backends=("inline",), shard_counts=(1,))
    path = write_benchmark_json(result, tmp_path / "BENCH_serving.json")
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["experiment_id"] == "backend_scaling"
    assert payload["headers"] == list(result.headers)
    assert payload["rows"] == [list(row) for row in result.rows]
    assert payload["environment"]["cpu_count"] >= 1
    # Each row also travels as a self-describing record carrying the
    # backend + pipeline flags by name.
    assert payload["records"] == result.records()
    for record in payload["records"]:
        assert record["Backend"] == "inline"
        assert record["Mode"] in ("blocking", "pipelined")


def test_write_benchmark_json_carries_extra_experiments(tmp_path):
    primary = backend_scaling_experiment(TINY_CLIENTS, backends=("inline",), shard_counts=(1,))
    extra = frontend_scaling_experiment(client_counts=(1,), scans_per_client=1, num_shards=1)
    path = write_benchmark_json(primary, tmp_path / "BENCH_serving.json", extra_results=(extra,))
    payload = json.loads(path.read_text(encoding="utf-8"))
    # The established top-level schema still describes the primary result...
    assert payload["experiment_id"] == "backend_scaling"
    assert payload["rows"] == [list(row) for row in primary.rows]
    # ... and the experiments list carries primary + extras by id.
    ids = [entry["experiment_id"] for entry in payload["experiments"]]
    assert ids == ["backend_scaling", "frontend_scaling"]
    frontend = payload["experiments"][1]
    assert frontend["records"] == extra.records()
    assert {r["Front end"] for r in frontend["records"]} == {"sync", "async"}


def test_service_main_writes_json(tmp_path, capsys):
    out = tmp_path / "BENCH_serving.json"
    exit_code = main(
        [
            "--out", str(out),
            "--backends", "inline",
            "--shards", "1",
            "--scans", "1",
            "--clients", "1",
            "--skip-scheduler-sweep",
            "--skip-session-sweep",
        ]
    )
    assert exit_code == 0
    assert out.exists()
    captured = capsys.readouterr().out
    assert "backend x shard-count x ingestion-mode" in captured
    assert "admission front end (sync vs async)" in captured
    assert str(out) in captured
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert [entry["experiment_id"] for entry in payload["experiments"]] == [
        "backend_scaling",
        "frontend_scaling",
        "http_frontend",
        "kill_recovery",
        "metrics_overhead",
        "frontend_vectorized",
    ]
    failover = payload["experiments"][3]
    # Every cadence row recovered and re-verified leaf-for-leaf equivalence.
    assert failover["records"], "kill_recovery sweep produced no rows"
    assert all(r["Map equivalent"] == "yes" for r in failover["records"])
    overhead = payload["experiments"][4]
    # One row per instrumentation mode; both ingest the identical workload.
    assert {r["Metrics"] for r in overhead["records"]} == {"on", "off"}
    assert len({r["Updates"] for r in overhead["records"]}) == 1
    http = payload["experiments"][2]
    # {in-process, http} per client count, identical ingestion per pair.
    assert {r["Transport"] for r in http["records"]} == {"in-process", "http"}
    by_count = {}
    for record in http["records"]:
        by_count.setdefault(record["Clients"], set()).add(record["Updates"])
    assert all(len(updates) == 1 for updates in by_count.values())


def test_service_main_can_skip_the_http_sweep(tmp_path, capsys):
    out = tmp_path / "BENCH_serving.json"
    exit_code = main(
        [
            "--out", str(out),
            "--backends", "inline",
            "--shards", "1",
            "--scans", "1",
            "--clients", "1",
            "--skip-scheduler-sweep",
            "--skip-http-sweep",
            "--skip-metrics-sweep",
            "--skip-failover-sweep",
            "--skip-session-sweep",
        ]
    )
    assert exit_code == 0
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert [entry["experiment_id"] for entry in payload["experiments"]] == [
        "backend_scaling",
        "frontend_scaling",
        "frontend_vectorized",
    ]


def test_frontend_vectorized_experiment_table_shape():
    result = frontend_vectorized_experiment(TINY_CLIENTS, repeats=1)
    assert result.experiment_id == "frontend_vectorized"
    records = result.records()
    assert [r["Front end"] for r in records] == ["scalar", "vectorized"]
    scalar, vectorized = records
    # Identical update streams is the whole point of the experiment.
    assert scalar["Updates"] == vectorized["Updates"] > 0
    assert scalar["Scans"] == vectorized["Scans"] == 2
    assert scalar["Speedup vs scalar"] == 1.0
    # The gated cell is the front-end wall ratio.
    speedup = vectorized["Speedup vs scalar"]
    assert isinstance(speedup, float)
    assert speedup == scalar["Frontend wall (s)"] / vectorized["Frontend wall (s)"]
    for record in records:
        assert 0.0 <= record["Frontend share (%)"] <= 100.0
        assert record["Updates/s (wall)"] > 0.0


def test_service_main_frontend_gate_fails_when_unmet(tmp_path, capsys):
    out = tmp_path / "BENCH_gate.json"
    argv = [
        "--out", str(out),
        "--backends", "inline",
        "--shards", "1",
        "--scans", "1",
        "--clients", "1",
        "--skip-scheduler-sweep",
        "--skip-http-sweep",
        "--skip-metrics-sweep",
        "--skip-frontend-sweep",
    ]
    # An absurdly high floor must fail the run...
    assert main(argv + ["--frontend-gate", "1e9"]) == 1
    assert "below the" in capsys.readouterr().err
    # ... and a trivially low one must pass and print the verdict.
    assert main(argv + ["--frontend-gate", "0.0001"]) == 0
    assert "Frontend gate OK" in capsys.readouterr().out


def test_http_frontend_experiment_prices_the_network_hop():
    result = http_frontend_experiment(
        client_counts=(1,), scans_per_client=1, num_shards=1, batch_size=1
    )
    assert result.experiment_id == "http_frontend"
    records = result.records()
    assert {r["Transport"] for r in records} == {"in-process", "http"}
    in_process = next(r for r in records if r["Transport"] == "in-process")
    http = next(r for r in records if r["Transport"] == "http")
    # Same stream underneath: the two transports ingest identical updates.
    assert in_process["Updates"] == http["Updates"]
    assert in_process["Scans"] == http["Scans"] == 1
    for record in records:
        assert record["Mean admit (ms)"] >= 0.0
        assert record["Max admit (ms)"] >= record["Mean admit (ms)"]


def test_session_scaling_experiment_table_shape():
    from repro.analysis.service import session_scaling_experiment

    result = session_scaling_experiment(
        session_counts=(3, 6),
        fleet_workers=2,
        scans_per_session=1,
        arrival_rate_per_s=500.0,
    )
    assert result.experiment_id == "session_scaling"
    records = result.records()
    assert [r["Sessions"] for r in records] == [3, 6]
    for record in records:
        assert record["Fleet workers"] == 2
        # O(W): the fleet multiplexes; threads never scale with sessions.
        assert record["Peak threads"] < 3 + 20
        assert record["Scans"] == record["Sessions"]  # one scan per tenant
        assert record["Sustained (scans/s)"] > 0.0
        assert record["Admit p99 (ms)"] >= record["Admit p50 (ms)"]
        assert record["Ingest p99 (ms)"] >= record["Ingest p50 (ms)"]
    assert "coordinated omission" in result.notes
