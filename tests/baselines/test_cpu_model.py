"""Unit tests for the calibrated CPU cost models and platform descriptors."""

import pytest

from repro.baselines.cpu_model import A57_COST_MODEL, CpuCostModel, I9_COST_MODEL
from repro.baselines.platforms import ARM_CORTEX_A57, INTEL_I9_9940X, OMU_PLATFORM
from repro.datasets.catalog import ALL_DATASETS, FR079_CORRIDOR
from repro.octomap.counters import OperationCounters, OperationKind


class TestPlatforms:
    def test_i9_has_no_mapping_power(self):
        assert INTEL_I9_9940X.mapping_power_w is None
        with pytest.raises(ValueError):
            INTEL_I9_9940X.energy_joules(1.0)

    def test_a57_energy_is_power_times_latency(self):
        assert ARM_CORTEX_A57.energy_joules(10.0) == pytest.approx(27.8)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            ARM_CORTEX_A57.energy_joules(-1.0)

    def test_edge_platform_flags(self):
        assert not INTEL_I9_9940X.is_edge_platform
        assert ARM_CORTEX_A57.is_edge_platform
        assert OMU_PLATFORM.is_edge_platform

    def test_omu_platform_power_matches_paper(self):
        assert OMU_PLATFORM.mapping_power_w == pytest.approx(0.2508)


class TestCostModelCalibration:
    def test_i9_latency_within_5_percent_of_paper(self):
        for descriptor in ALL_DATASETS:
            latency = I9_COST_MODEL.latency_seconds(descriptor)
            assert latency == pytest.approx(descriptor.paper.i9_latency_s, rel=0.05)

    def test_a57_latency_within_10_percent_of_paper(self):
        for descriptor in ALL_DATASETS:
            latency = A57_COST_MODEL.latency_seconds(descriptor)
            assert latency == pytest.approx(descriptor.paper.a57_latency_s, rel=0.10)

    def test_i9_throughput_is_about_5_fps(self):
        for descriptor in ALL_DATASETS:
            assert I9_COST_MODEL.throughput_fps(descriptor) == pytest.approx(5.0, abs=0.5)

    def test_a57_throughput_is_about_1_fps(self):
        for descriptor in ALL_DATASETS:
            assert A57_COST_MODEL.throughput_fps(descriptor) == pytest.approx(1.0, abs=0.2)

    def test_a57_energy_within_12_percent_of_paper(self):
        for descriptor in ALL_DATASETS:
            energy = A57_COST_MODEL.energy_joules(descriptor)
            assert energy == pytest.approx(descriptor.paper.a57_energy_j, rel=0.12)

    def test_i9_energy_is_none(self):
        assert I9_COST_MODEL.energy_joules(FR079_CORRIDOR) is None

    def test_invalid_cost_rejected(self):
        with pytest.raises(ValueError):
            CpuCostModel(platform=INTEL_I9_9940X, ns_per_voxel_update=0.0)


class TestEstimates:
    def test_estimate_defaults_to_paper_breakdown(self):
        estimate = I9_COST_MODEL.estimate(FR079_CORRIDOR)
        assert estimate.platform_name == INTEL_I9_9940X.name
        assert estimate.dataset_name == FR079_CORRIDOR.name
        assert estimate.breakdown[OperationKind.PRUNE_EXPAND] == pytest.approx(0.61)

    def test_estimate_accepts_measured_breakdown(self):
        breakdown = {
            OperationKind.RAY_CASTING: 0.05,
            OperationKind.UPDATE_LEAF: 0.25,
            OperationKind.UPDATE_PARENTS: 0.15,
            OperationKind.PRUNE_EXPAND: 0.55,
        }
        estimate = A57_COST_MODEL.estimate(FR079_CORRIDOR, breakdown=breakdown)
        assert estimate.breakdown == breakdown
        assert estimate.energy_j is not None


class TestCounterDrivenBreakdown:
    def _typical_counters(self, updates: int = 1000, prune_rate: float = 0.05) -> OperationCounters:
        """Operation counts with the shape a real insertion produces."""
        counters = OperationCounters()
        counters.leaf_updates = updates
        counters.ray_steps = updates
        counters.parent_updates = updates * 14
        counters.child_reads = updates * 15 * 8
        counters.prune_checks = updates * 15
        counters.prunes = int(updates * prune_rate)
        counters.expansions = int(updates * prune_rate * 0.5)
        return counters

    def test_fractions_sum_to_one(self):
        breakdown = I9_COST_MODEL.breakdown_from_counters(self._typical_counters())
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_prune_expand_dominates_as_in_fig3(self):
        breakdown = I9_COST_MODEL.breakdown_from_counters(self._typical_counters())
        stages = sorted(breakdown, key=breakdown.get, reverse=True)
        assert stages[0] == OperationKind.PRUNE_EXPAND
        assert breakdown[OperationKind.PRUNE_EXPAND] > 0.4
        assert stages[1] == OperationKind.UPDATE_LEAF

    def test_ray_casting_share_is_small(self):
        breakdown = I9_COST_MODEL.breakdown_from_counters(self._typical_counters())
        assert breakdown[OperationKind.RAY_CASTING] < 0.05

    def test_empty_counters_give_zero_breakdown(self):
        breakdown = I9_COST_MODEL.breakdown_from_counters(OperationCounters())
        assert all(value == 0.0 for value in breakdown.values())
