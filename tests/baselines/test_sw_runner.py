"""Tests for the instrumented software OctoMap runner."""

import pytest

from repro.baselines.sw_runner import run_software_octomap
from repro.octomap.counters import OperationKind
from repro.octomap.octree import OccupancyOcTree


class TestRunSoftwareOctomap:
    def test_produces_the_same_map_as_direct_insertion(self, two_scan_graph):
        result = run_software_octomap(two_scan_graph, resolution_m=0.2)
        direct = OccupancyOcTree(0.2)
        for scan in two_scan_graph:
            direct.insert_point_cloud(scan.world_cloud(), scan.origin())
        assert result.tree.occupancy_grid() == pytest.approx(direct.occupancy_grid())

    def test_counts_points_and_updates(self, two_scan_graph):
        result = run_software_octomap(two_scan_graph, resolution_m=0.2)
        assert result.total_points == two_scan_graph.total_points()
        assert result.voxel_updates == result.counters.leaf_updates
        assert result.voxel_updates > 0

    def test_stage_seconds_cover_all_stages(self, two_scan_graph):
        result = run_software_octomap(two_scan_graph, resolution_m=0.2)
        assert set(result.stage_seconds) == set(OperationKind.ordered())
        assert all(seconds >= 0.0 for seconds in result.stage_seconds.values())
        assert sum(result.stage_seconds.values()) > 0.0

    def test_stage_fractions_sum_to_one(self, two_scan_graph):
        result = run_software_octomap(two_scan_graph, resolution_m=0.2)
        fractions = result.stage_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_max_range_reduces_updates(self, two_scan_graph):
        full = run_software_octomap(two_scan_graph, resolution_m=0.2)
        truncated = run_software_octomap(two_scan_graph, resolution_m=0.2, max_range=1.0)
        assert truncated.voxel_updates < full.voxel_updates

    def test_custom_params_are_used(self, ring_graph):
        from repro.core.config import DEFAULT_CONFIG

        params = DEFAULT_CONFIG.quantized_params().as_float_params()
        result = run_software_octomap(ring_graph, resolution_m=0.2, params=params)
        assert result.tree.params.prob_hit == pytest.approx(params.prob_hit)

    def test_empty_graph(self):
        from repro.octomap.pointcloud import ScanGraph

        result = run_software_octomap(ScanGraph(name="empty"), resolution_m=0.2)
        assert result.voxel_updates == 0
        assert result.stage_fractions()[OperationKind.PRUNE_EXPAND] == 0.0
