"""Shared fixtures: small scenes, scan graphs and accelerators for tests.

The fixtures are deliberately tiny (hundreds to a few thousand voxel updates)
so the whole suite runs in minutes; the benchmark harness under
``benchmarks/`` exercises the larger "default"-scale workloads.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import OMUAccelerator, OMUConfig
from repro.octomap import OccupancyOcTree, PointCloud, Pose6D, ScanGraph, ScanNode


@pytest.fixture
def ring_cloud() -> PointCloud:
    """A horizontal ring of wall points at radius 3 m around the origin."""
    points = [
        (3.0 * math.cos(azimuth), 3.0 * math.sin(azimuth), 0.0)
        for azimuth in np.linspace(-math.pi, math.pi, 180, endpoint=False)
    ]
    return PointCloud(points)


@pytest.fixture
def ring_scan(ring_cloud: PointCloud) -> ScanNode:
    """The ring cloud observed from a sensor 0.4 m above the map origin."""
    return ScanNode(ring_cloud, Pose6D((0.0, 0.0, 0.4)), scan_id=0)


@pytest.fixture
def ring_graph(ring_scan: ScanNode) -> ScanGraph:
    """A single-scan graph built from :func:`ring_scan`."""
    return ScanGraph([ring_scan], name="ring")


@pytest.fixture
def two_scan_graph() -> ScanGraph:
    """Two scans of a small room observed from different positions.

    The second scan revisits most of the first scan's voxels, which exercises
    re-updates, pruning and expansion rather than only fresh allocation.
    """
    scans = []
    for index, origin_x in enumerate((-0.6, 0.6)):
        points = []
        for azimuth in np.linspace(-math.pi, math.pi, 150, endpoint=False):
            radius = 2.5 + 0.3 * math.sin(4.0 * azimuth)
            points.append(
                (
                    radius * math.cos(azimuth),
                    radius * math.sin(azimuth),
                    0.3 * math.sin(2.0 * azimuth),
                )
            )
        scans.append(ScanNode(PointCloud(points), Pose6D((origin_x, 0.0, 0.2)), scan_id=index))
    return ScanGraph(scans, name="two-scan-room")


@pytest.fixture
def small_tree(ring_graph: ScanGraph) -> OccupancyOcTree:
    """A software octree with one ring scan integrated at 0.2 m resolution."""
    tree = OccupancyOcTree(0.2)
    scan = ring_graph[0]
    tree.insert_point_cloud(scan.world_cloud(), scan.origin())
    return tree


@pytest.fixture
def default_config() -> OMUConfig:
    """The paper's accelerator configuration at 0.2 m resolution."""
    return OMUConfig(resolution_m=0.2)


@pytest.fixture
def accelerator(default_config: OMUConfig) -> OMUAccelerator:
    """A fresh, empty accelerator instance."""
    return OMUAccelerator(default_config)


@pytest.fixture
def loaded_accelerator(default_config: OMUConfig, ring_graph: ScanGraph) -> OMUAccelerator:
    """An accelerator that has already integrated the ring scan."""
    instance = OMUAccelerator(default_config)
    instance.process_scan_graph(ring_graph)
    return instance
