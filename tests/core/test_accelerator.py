"""Integration-level tests of the OMU accelerator top level."""

import pytest

from repro.core import OMUAccelerator, OMUConfig
from repro.octomap.counters import OperationKind


class TestConstruction:
    def test_default_construction(self, default_config):
        accelerator = OMUAccelerator(default_config)
        assert len(accelerator.pes) == 8
        assert accelerator.scans_processed == 0
        assert accelerator.elapsed_seconds() == 0.0

    def test_more_than_eight_pes_rejected(self):
        with pytest.raises(ValueError):
            OMUAccelerator(OMUConfig(num_pes=9))

    def test_reduced_pe_count(self):
        accelerator = OMUAccelerator(OMUConfig(num_pes=2, resolution_m=0.2))
        assert len(accelerator.pes) == 2


class TestScanProcessing:
    def test_process_scan_returns_timing(self, accelerator, ring_scan):
        timing = accelerator.process_scan(ring_scan.world_cloud(), ring_scan.origin())
        assert timing.voxel_updates > 0
        assert timing.critical_path_cycles() > 0
        assert timing.pe_cycles_total >= timing.pe_cycles_max
        assert accelerator.scans_processed == 1

    def test_host_interface_reports_completion(self, accelerator, ring_scan):
        accelerator.process_scan(ring_scan.world_cloud(), ring_scan.origin())
        assert accelerator.host.is_done()
        assert accelerator.host.dma.bytes_transferred > 0

    def test_process_scan_graph_accumulates(self, accelerator, two_scan_graph):
        total = accelerator.process_scan_graph(two_scan_graph)
        assert accelerator.scans_processed == 2
        assert total.voxel_updates == accelerator.map_timing.voxel_updates
        assert total.voxel_updates > 0

    def test_voxel_updates_split_across_multiple_pes(self, accelerator, ring_scan):
        accelerator.process_scan(ring_scan.world_cloud(), ring_scan.origin())
        busy = [pe for pe in accelerator.pes if pe.stats.voxel_updates > 0]
        assert len(busy) >= 4, "a ring around the origin must touch several octants"

    def test_breakdown_has_all_pipeline_stages(self, accelerator, ring_scan):
        timing = accelerator.process_scan(ring_scan.world_cloud(), ring_scan.origin())
        cycles = timing.breakdown.cycles
        assert cycles[OperationKind.UPDATE_LEAF] > 0
        assert cycles[OperationKind.UPDATE_PARENTS] > 0
        assert cycles[OperationKind.PRUNE_EXPAND] >= 0

    def test_prune_share_is_small_on_the_accelerator(self, accelerator, two_scan_graph):
        """The paper's Fig. 10 claim: prune/expand drops below ~20 % on OMU."""
        total = accelerator.process_scan_graph(two_scan_graph)
        fractions = total.breakdown.fractions()
        assert fractions[OperationKind.PRUNE_EXPAND] < 0.25

    def test_map_level_accounting(self, accelerator, two_scan_graph):
        accelerator.process_scan_graph(two_scan_graph)
        assert accelerator.map_critical_path_cycles() > 0
        assert accelerator.map_cycles_per_update() > 0
        assert 1.0 <= accelerator.map_parallel_speedup() <= accelerator.config.num_pes
        assert accelerator.elapsed_seconds() > 0

    def test_pipelined_latency_not_above_barrier_latency(self, accelerator, two_scan_graph):
        accelerator.process_scan_graph(two_scan_graph)
        assert accelerator.map_critical_path_cycles() <= accelerator.map_timing.critical_path_cycles()

    def test_max_range_limits_updates(self, default_config, ring_scan):
        unlimited = OMUAccelerator(default_config)
        limited = OMUAccelerator(default_config)
        full = unlimited.process_scan(ring_scan.world_cloud(), ring_scan.origin())
        truncated = limited.process_scan(ring_scan.world_cloud(), ring_scan.origin(), max_range=1.5)
        assert truncated.voxel_updates < full.voxel_updates


class TestQueriesAndExport:
    def test_classify_matches_scene(self, loaded_accelerator):
        assert loaded_accelerator.classify(3.0, 0.1, 0.4) == "occupied"
        assert loaded_accelerator.classify(1.0, 0.0, 0.4) == "free"
        assert loaded_accelerator.classify(30.0, 30.0, 30.0) == "unknown"

    def test_query_returns_probability(self, loaded_accelerator):
        result = loaded_accelerator.query(3.0, 0.1, 0.4)
        assert result.status == "occupied"
        assert 0.5 < result.probability <= 1.0

    def test_export_octree_roundtrip(self, loaded_accelerator):
        tree = loaded_accelerator.export_octree()
        assert tree.size() > 0
        assert tree.classify(3.0, 0.1, 0.4) == "occupied"
        assert tree.classify(1.0, 0.0, 0.4) == "free"

    def test_counters_merge_pes_and_raycaster(self, loaded_accelerator):
        counters = loaded_accelerator.counters()
        assert counters.leaf_updates == loaded_accelerator.map_timing.voxel_updates
        assert counters.ray_steps > 0

    def test_statistics_shape(self, loaded_accelerator):
        stats = loaded_accelerator.statistics()
        assert stats.voxel_updates > 0
        assert stats.sram_reads > 0
        assert stats.sram_writes > 0
        assert stats.nodes_stored > 0
        assert 0.0 < stats.memory_utilization < 1.0
        assert len(stats.per_pe_cycles) == 8

    def test_occupancy_probability_of_raw(self, loaded_accelerator):
        params = loaded_accelerator.config.quantized_params()
        assert loaded_accelerator.occupancy_probability_of(params.raw_hit) == pytest.approx(0.7, abs=0.01)


class TestPEScalingBehaviour:
    def test_fewer_pes_increase_effective_cycles_per_update(self, ring_graph):
        """Halving the PE count must not make the accelerator faster."""
        results = {}
        for num_pes in (1, 8):
            accelerator = OMUAccelerator(OMUConfig(resolution_m=0.2, num_pes=num_pes))
            accelerator.process_scan_graph(ring_graph)
            results[num_pes] = accelerator.map_cycles_per_update()
        assert results[1] > results[8]

    def test_single_pe_has_no_parallel_speedup(self, ring_graph):
        accelerator = OMUAccelerator(OMUConfig(resolution_m=0.2, num_pes=1))
        accelerator.process_scan_graph(ring_graph)
        assert accelerator.map_parallel_speedup() == pytest.approx(1.0)
