"""Unit tests for address generation (key -> PE routing, key -> path)."""

import pytest

from repro.core.address_gen import AddressGenerator


@pytest.fixture
def generator() -> AddressGenerator:
    return AddressGenerator(resolution_m=0.2, tree_depth=16, num_pes=8)


class TestRouting:
    def test_branch_id_matches_level0_child_index(self, generator):
        key = generator.key_for_point(1.0, -1.0, 2.0)
        assert generator.branch_id(key) == key.child_index(0, 16)

    def test_eight_octants_map_to_eight_pes(self, generator):
        pes = set()
        for x in (-1.0, 1.0):
            for y in (-1.0, 1.0):
                for z in (-1.0, 1.0):
                    pes.add(generator.pe_for_key(generator.key_for_point(x, y, z)))
        assert pes == set(range(8))

    def test_same_octant_maps_to_same_pe(self, generator):
        a = generator.pe_for_key(generator.key_for_point(1.0, 2.0, 3.0))
        b = generator.pe_for_key(generator.key_for_point(50.0, 60.0, 70.0))
        assert a == b

    def test_fewer_pes_fold_branches_with_modulo(self):
        generator = AddressGenerator(0.2, 16, num_pes=2)
        for x in (-1.0, 1.0):
            for y in (-1.0, 1.0):
                for z in (-1.0, 1.0):
                    pe = generator.pe_for_key(generator.key_for_point(x, y, z))
                    assert pe in (0, 1)

    def test_single_pe_receives_everything(self):
        generator = AddressGenerator(0.2, 16, num_pes=1)
        assert generator.pe_for_key(generator.key_for_point(5.0, -3.0, 1.0)) == 0

    def test_more_than_eight_pes_stays_in_range(self):
        """With >8 PEs the second tree level refines the mapping.

        For realistic map extents every point sits in the same second-level
        octant (that level splits at +/-3276.8 m), so only 8 distinct PEs can
        receive work -- which is why the accelerator caps the PE count at 8.
        The router must still produce valid indices.
        """
        generator = AddressGenerator(0.2, 16, num_pes=16)
        pes = set()
        for x in (-10.0, -1.0, 1.0, 10.0):
            for y in (-10.0, -1.0, 1.0, 10.0):
                for z in (-10.0, -1.0, 1.0, 10.0):
                    pes.add(generator.pe_for_key(generator.key_for_point(x, y, z)))
        assert all(0 <= pe < 16 for pe in pes)
        assert len(pes) == 8

    def test_invalid_pe_count(self):
        with pytest.raises(ValueError):
            AddressGenerator(0.2, 16, num_pes=0)


class TestPaths:
    def test_child_path_skips_the_root_level(self, generator):
        key = generator.key_for_point(1.0, 2.0, 3.0)
        assert generator.child_path(key) == key.path(16)[1:]
        assert len(generator.child_path(key)) == 15

    def test_full_path_has_tree_depth_entries(self, generator):
        key = generator.key_for_point(1.0, 2.0, 3.0)
        assert len(generator.full_path(key)) == 16

    def test_keys_for_points_batches(self, generator):
        points = [(0.1, 0.1, 0.1), (1.0, 1.0, 1.0)]
        keys = generator.keys_for_points(points)
        assert len(keys) == 2
        assert keys[0] == generator.key_for_point(0.1, 0.1, 0.1)

    def test_converter_round_trip(self, generator):
        key = generator.key_for_point(3.1, -2.7, 0.4)
        centre = generator.converter.key_to_coord(key)
        assert generator.key_for_point(*centre) == key
