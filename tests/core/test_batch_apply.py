"""The ordered batch-apply path and the shard-aware address generation."""

from __future__ import annotations

import pytest

from repro.core import OMUAccelerator, OMUConfig
from repro.core.address_gen import AddressGenerator
from repro.core.scheduler import VoxelUpdateRequest
from repro.core.verification import compare_trees
from repro.octomap.keys import OcTreeKey


@pytest.fixture
def config() -> OMUConfig:
    return OMUConfig(resolution_m=0.2)


def test_apply_update_batch_matches_process_scan(config, ring_graph):
    """Feeding the ray-cast key stream through apply_update_batch must build
    the same map as process_scan on the same cloud."""
    reference = OMUAccelerator(config)
    scan = ring_graph[0]
    reference.process_scan(scan.world_cloud(), scan.origin())

    batched = OMUAccelerator(config)
    cast = OMUAccelerator(config).raycaster.cast_scan(scan.world_cloud(), scan.origin())
    stream = [VoxelUpdateRequest(key, occupied=False) for key in cast.free_keys]
    stream += [VoxelUpdateRequest(key, occupied=True) for key in cast.occupied_keys]
    timing = batched.apply_update_batch(stream)

    assert timing.voxel_updates == len(stream)
    tolerance = config.fixed_point.scale / 2.0
    report = compare_trees(reference.export_octree(), batched.export_octree(), tolerance)
    assert report.equivalent, report.summary()


def test_apply_update_batch_accumulates_map_timing(config):
    accelerator = OMUAccelerator(config)
    key = accelerator.address_generator.key_for_point(1.0, 1.0, 1.0)
    timing = accelerator.apply_update_batch([VoxelUpdateRequest(key, occupied=True)])
    assert timing.voxel_updates == 1
    assert accelerator.map_timing.voxel_updates == 1
    assert accelerator.map_timing.scheduler_cycles == timing.scheduler_cycles
    # Empty batches are harmless no-ops.
    empty = accelerator.apply_update_batch([])
    assert empty.voxel_updates == 0


def test_schedule_requests_preserves_stream_order(config):
    accelerator = OMUAccelerator(config)
    key = accelerator.address_generator.key_for_point(0.5, 0.5, 0.5)
    stream = [
        VoxelUpdateRequest(key, occupied=True),
        VoxelUpdateRequest(key, occupied=False),
        VoxelUpdateRequest(key, occupied=True),
    ]
    batch = accelerator.scheduler.schedule_requests(stream)
    pe = accelerator.address_generator.pe_for_key(key)
    assert [request.occupied for request in batch.per_pe[pe]] == [True, False, True]
    assert batch.issue_cycles == 3 * config.timing.scheduler_issue_cycles


def test_shard_prefix_and_index(config):
    generator = AddressGenerator(config.resolution_m, config.tree_depth, config.num_pes)
    key = generator.key_for_point(1.0, -2.0, 0.4)
    prefix = generator.shard_prefix(key, 3)
    assert prefix == key.path(config.tree_depth)[:3]
    assert generator.shard_index(key, 1) == 0
    folded = 0
    for child_index in prefix:
        folded = folded * 8 + child_index
    assert generator.shard_index(key, 5, 3) == folded % 5


def test_shard_index_partitions_the_key_space(config):
    generator = AddressGenerator(config.resolution_m, config.tree_depth, config.num_pes)
    shards = set()
    for dx in range(-10, 10):
        for dy in range(-10, 10):
            key = OcTreeKey(32768 + dx, 32768 + dy, 32768)
            shard = generator.shard_index(key, 4, 12)
            assert 0 <= shard < 4
            shards.add(shard)
    assert shards == {0, 1, 2, 3}


def test_shard_parameter_validation(config):
    generator = AddressGenerator(config.resolution_m, config.tree_depth, config.num_pes)
    key = OcTreeKey(0, 0, 0)
    with pytest.raises(ValueError, match="prefix_levels"):
        generator.shard_prefix(key, 0)
    with pytest.raises(ValueError, match="prefix_levels"):
        generator.shard_prefix(key, 17)
    with pytest.raises(ValueError, match="num_shards"):
        generator.shard_index(key, 0)
