"""Unit tests for the accelerator configuration."""

import pytest

from repro.core.config import DEFAULT_CONFIG, OMUConfig, TimingParams


class TestDefaults:
    def test_paper_organisation(self):
        config = DEFAULT_CONFIG
        assert config.num_pes == 8
        assert config.banks_per_pe == 8
        assert config.bank_kilobytes == 32
        assert config.pe_memory_bytes == 256 * 1024
        assert config.total_memory_bytes == 2 * 1024 * 1024

    def test_paper_operating_point(self):
        config = DEFAULT_CONFIG
        assert config.clock_hz == pytest.approx(1.0e9)
        assert config.voltage_v == pytest.approx(0.8)
        assert config.technology_nm == 12

    def test_derived_sizes(self):
        config = DEFAULT_CONFIG
        assert config.entries_per_bank == 4096
        assert config.node_capacity == 8 * 8 * 4096
        assert config.clock_period_s == pytest.approx(1e-9)

    def test_cycles_to_seconds(self):
        assert DEFAULT_CONFIG.cycles_to_seconds(1_000_000) == pytest.approx(1e-3)

    def test_quantized_params_round_trip(self):
        quantized = DEFAULT_CONFIG.quantized_params()
        assert quantized.format is DEFAULT_CONFIG.fixed_point
        assert quantized.quantization_error() < DEFAULT_CONFIG.fixed_point.scale


class TestValidation:
    def test_bank_count_is_fixed_to_eight(self):
        with pytest.raises(ValueError):
            OMUConfig(banks_per_pe=4)

    def test_entry_size_is_fixed_to_eight_bytes(self):
        with pytest.raises(ValueError):
            OMUConfig(entry_bytes=4)

    def test_pe_count_must_be_positive(self):
        with pytest.raises(ValueError):
            OMUConfig(num_pes=0)

    def test_resolution_must_be_positive(self):
        with pytest.raises(ValueError):
            OMUConfig(resolution_m=0.0)

    def test_clock_must_be_positive(self):
        with pytest.raises(ValueError):
            OMUConfig(clock_hz=0.0)

    def test_tree_depth_bounds(self):
        with pytest.raises(ValueError):
            OMUConfig(tree_depth=17)

    def test_timing_params_must_be_positive_integers(self):
        with pytest.raises(ValueError):
            TimingParams(bank_read_cycles=0)
        with pytest.raises(ValueError):
            TimingParams(alu_cycles=-1)


class TestCopies:
    def test_with_pe_count(self):
        copy = DEFAULT_CONFIG.with_pe_count(4)
        assert copy.num_pes == 4
        assert DEFAULT_CONFIG.num_pes == 8

    def test_with_resolution(self):
        copy = DEFAULT_CONFIG.with_resolution(0.1)
        assert copy.resolution_m == pytest.approx(0.1)

    def test_with_bank_kilobytes(self):
        copy = DEFAULT_CONFIG.with_bank_kilobytes(64)
        assert copy.entries_per_bank == 8192

    def test_with_timing(self):
        slower = DEFAULT_CONFIG.with_timing(TimingParams(bank_read_cycles=2))
        assert slower.timing.bank_read_cycles == 2
        assert DEFAULT_CONFIG.timing.bank_read_cycles == 1

    def test_configs_are_immutable(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.num_pes = 4  # type: ignore[misc]
