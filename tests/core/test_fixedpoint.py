"""Unit tests for the fixed-point log-odds format and quantised parameters."""

import pytest

from repro.core.fixedpoint import DEFAULT_FORMAT, FixedPointFormat, QuantizedOccupancyParams
from repro.octomap.logodds import DEFAULT_PARAMS


class TestFixedPointFormat:
    def test_default_is_16_bit_q5_10(self):
        assert DEFAULT_FORMAT.total_bits == 16
        assert DEFAULT_FORMAT.fraction_bits == 10
        assert DEFAULT_FORMAT.scale == pytest.approx(2.0 ** -10)

    def test_range_covers_clamped_log_odds(self):
        assert DEFAULT_FORMAT.min_value < DEFAULT_PARAMS.clamp_min
        assert DEFAULT_FORMAT.max_value > DEFAULT_PARAMS.clamp_max

    def test_invalid_formats_rejected(self):
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=1)
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=16, fraction_bits=16)

    def test_to_raw_and_back(self):
        fmt = DEFAULT_FORMAT
        for value in (0.0, 0.4055, -0.4055, 2.0, -2.0, 3.5):
            raw = fmt.to_raw(value)
            assert abs(fmt.to_value(raw) - value) <= fmt.scale / 2.0

    def test_to_raw_saturates(self):
        fmt = DEFAULT_FORMAT
        assert fmt.to_raw(1e9) == fmt.max_raw
        assert fmt.to_raw(-1e9) == fmt.min_raw

    def test_quantize_is_idempotent(self):
        fmt = DEFAULT_FORMAT
        once = fmt.quantize(0.123456)
        assert fmt.quantize(once) == pytest.approx(once)

    def test_saturating_add(self):
        fmt = FixedPointFormat(total_bits=8, fraction_bits=4)
        assert fmt.saturating_add(100, 100) == fmt.max_raw
        assert fmt.saturating_add(-100, -100) == fmt.min_raw
        assert fmt.saturating_add(3, 4) == 7

    def test_saturating_add_validates_inputs(self):
        fmt = FixedPointFormat(total_bits=8, fraction_bits=4)
        with pytest.raises(ValueError):
            fmt.saturating_add(1000, 0)

    def test_unsigned_word_roundtrip(self):
        fmt = DEFAULT_FORMAT
        for raw in (0, 1, -1, fmt.max_raw, fmt.min_raw, 437, -2048):
            word = fmt.to_unsigned_word(raw)
            assert 0 <= word < (1 << fmt.total_bits)
            assert fmt.from_unsigned_word(word) == raw

    def test_from_unsigned_word_rejects_oversized(self):
        with pytest.raises(ValueError):
            DEFAULT_FORMAT.from_unsigned_word(1 << 16)

    def test_to_value_rejects_out_of_range_raw(self):
        with pytest.raises(ValueError):
            DEFAULT_FORMAT.to_value(1 << 20)


class TestQuantizedOccupancyParams:
    @pytest.fixture
    def quantized(self) -> QuantizedOccupancyParams:
        return QuantizedOccupancyParams(DEFAULT_PARAMS, DEFAULT_FORMAT)

    def test_quantization_error_below_one_lsb(self, quantized):
        assert quantized.quantization_error() <= DEFAULT_FORMAT.scale

    def test_update_raw_hit_adds_hit_increment(self, quantized):
        assert quantized.update_raw(0, hit=True) == quantized.raw_hit

    def test_update_raw_miss_adds_miss_increment(self, quantized):
        assert quantized.update_raw(0, hit=False) == quantized.raw_miss

    def test_update_raw_clamps_at_bounds(self, quantized):
        value = 0
        for _ in range(100):
            value = quantized.update_raw(value, hit=True)
        assert value == quantized.raw_clamp_max
        for _ in range(100):
            value = quantized.update_raw(value, hit=False)
        assert value == quantized.raw_clamp_min

    def test_is_occupied_raw_threshold(self, quantized):
        assert quantized.is_occupied_raw(quantized.raw_hit)
        assert not quantized.is_occupied_raw(0)
        assert not quantized.is_occupied_raw(quantized.raw_miss)

    def test_as_float_params_matches_grid(self, quantized):
        params = quantized.as_float_params()
        fmt = quantized.format
        assert params.log_odds_hit == pytest.approx(fmt.to_value(quantized.raw_hit), abs=1e-9)
        assert params.log_odds_miss == pytest.approx(fmt.to_value(quantized.raw_miss), abs=1e-9)
        assert params.clamp_max == pytest.approx(fmt.to_value(quantized.raw_clamp_max), abs=1e-9)

    def test_float_and_raw_updates_agree(self, quantized):
        """The software tree with quantised params matches the raw datapath."""
        params = quantized.as_float_params()
        fmt = quantized.format
        raw = 0
        value = 0.0
        sequence = [True, True, False, True, False, False, False, True] * 5
        for hit in sequence:
            raw = quantized.update_raw(raw, hit)
            value = params.update(value, hit)
            assert fmt.to_raw(value) == raw

    def test_coarser_format_increases_error(self):
        coarse = QuantizedOccupancyParams(DEFAULT_PARAMS, FixedPointFormat(total_bits=8, fraction_bits=3))
        fine = QuantizedOccupancyParams(DEFAULT_PARAMS, FixedPointFormat(total_bits=16, fraction_bits=10))
        assert coarse.quantization_error() > fine.quantization_error()
