"""Unit tests for the AXI register file, DMA model and host interface."""

import pytest

from repro.core import interconnect
from repro.core.interconnect import DMAEngine, HostInterface, RegisterFile


class TestRegisterFile:
    def test_reset_values(self):
        registers = RegisterFile()
        assert registers.read(interconnect.REG_CONTROL) == 0
        assert registers.read(interconnect.REG_STATUS) == interconnect.STATUS_IDLE

    def test_write_then_read(self):
        registers = RegisterFile()
        registers.write(interconnect.REG_NUM_POINTS, 1234)
        assert registers.read(interconnect.REG_NUM_POINTS) == 1234

    def test_unknown_offset_rejected(self):
        registers = RegisterFile()
        with pytest.raises(KeyError):
            registers.read(0x40)
        with pytest.raises(KeyError):
            registers.write(0x40, 0)

    def test_value_must_fit_32_bits(self):
        registers = RegisterFile()
        with pytest.raises(ValueError):
            registers.write(interconnect.REG_NUM_POINTS, 1 << 32)

    def test_access_counters(self):
        registers = RegisterFile()
        registers.write(interconnect.REG_CONTROL, 1)
        registers.read(interconnect.REG_CONTROL)
        assert registers.writes == 1
        assert registers.reads == 1

    def test_cycle_counter_spans_two_registers(self):
        registers = RegisterFile()
        registers.set_cycle_count((5 << 32) | 7)
        assert registers.read(interconnect.REG_CYCLES_LOW) == 7
        assert registers.read(interconnect.REG_CYCLES_HIGH) == 5


class TestDMAEngine:
    def test_transfer_accounts_bytes_and_cycles(self):
        dma = DMAEngine(bus_bytes_per_cycle=8)
        cycles = dma.transfer(64)
        assert cycles == 8
        assert dma.bytes_transferred == 64
        assert dma.transfers == 1

    def test_partial_beat_rounds_up(self):
        dma = DMAEngine(bus_bytes_per_cycle=8)
        assert dma.transfer(65) == 9

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DMAEngine().transfer(-1)


class TestHostInterface:
    def test_configure_programs_scan_registers(self):
        host = HostInterface()
        host.configure(0.2, 15.0, (1.0, -2.0, 0.5))
        assert host.registers.read(interconnect.REG_RESOLUTION) == 200
        assert host.registers.read(interconnect.REG_MAX_RANGE) == 15000
        assert host.registers.read(interconnect.REG_ORIGIN_X) == 1000

    def test_negative_origin_is_encoded_two_complement(self):
        host = HostInterface()
        host.configure(0.2, -1.0, (0.0, -2.0, 0.0))
        assert host.registers.read(interconnect.REG_ORIGIN_Y) == (-2000) & 0xFFFFFFFF

    def test_stream_points_counts_dma_bytes(self):
        host = HostInterface()
        cycles = host.stream_points(1000)
        assert host.registers.read(interconnect.REG_NUM_POINTS) == 1000
        assert host.dma.bytes_transferred == 1000 * HostInterface.POINT_BYTES
        assert cycles > 0

    def test_start_finish_status_protocol(self):
        host = HostInterface()
        host.start()
        assert not host.is_done()
        host.finish(cycles=123)
        assert host.is_done()
        assert host.registers.read(interconnect.REG_CYCLES_LOW) == 123
