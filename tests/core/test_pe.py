"""Unit tests for the processing element (leaf update, parents, prune/expand)."""

import pytest

from repro.core.config import OMUConfig
from repro.core.pe import ProcessingElement
from repro.core.treemem import MemoryCapacityError
from repro.octomap.keys import KeyConverter, OcTreeKey
from repro.octomap.counters import OperationKind


@pytest.fixture
def config() -> OMUConfig:
    return OMUConfig(resolution_m=0.2)


@pytest.fixture
def pe(config: OMUConfig) -> ProcessingElement:
    return ProcessingElement(pe_id=0, config=config)


@pytest.fixture
def converter(config: OMUConfig) -> KeyConverter:
    return KeyConverter(config.resolution_m, config.tree_depth)


def key_at(converter: KeyConverter, x: float, y: float, z: float) -> OcTreeKey:
    return converter.coord_to_key(x, y, z)


class TestVoxelUpdate:
    def test_first_update_builds_the_path(self, pe, converter):
        key = key_at(converter, 1.0, 1.0, 1.0)
        cycles = pe.update_voxel(key, occupied=True)
        assert cycles > 0
        assert pe.counters.leaf_updates == 1
        # A full path needs one node per level: local root + 15 below it.
        assert pe.counters.node_allocations == pe.config.tree_depth

    def test_update_then_query_occupied(self, pe, converter):
        key = key_at(converter, 1.0, 1.0, 1.0)
        pe.update_voxel(key, occupied=True)
        status, raw = pe.query_voxel(key)
        assert status == "occupied"
        assert raw == pe.probability_unit.params.raw_hit

    def test_update_then_query_free(self, pe, converter):
        key = key_at(converter, 0.5, 0.5, 0.5)
        pe.update_voxel(key, occupied=False)
        status, raw = pe.query_voxel(key)
        assert status == "free"
        assert raw == pe.probability_unit.params.raw_miss

    def test_unobserved_voxel_is_unknown(self, pe, converter):
        pe.update_voxel(key_at(converter, 1.0, 1.0, 1.0), occupied=True)
        status, raw = pe.query_voxel(key_at(converter, 5.0, 5.0, 5.0))
        assert status == "unknown"
        assert raw is None

    def test_query_on_empty_pe_is_unknown(self, pe, converter):
        status, raw = pe.query_voxel(key_at(converter, 1.0, 1.0, 1.0))
        assert status == "unknown"

    def test_repeated_updates_accumulate(self, pe, converter):
        key = key_at(converter, 1.0, 1.0, 1.0)
        for _ in range(3):
            pe.update_voxel(key, occupied=True)
        _, raw = pe.query_voxel(key)
        assert raw == 3 * pe.probability_unit.params.raw_hit

    def test_updates_saturate_at_clamp(self, pe, converter):
        key = key_at(converter, 1.0, 1.0, 1.0)
        for _ in range(40):
            pe.update_voxel(key, occupied=True)
        _, raw = pe.query_voxel(key)
        assert raw == pe.probability_unit.params.raw_clamp_max

    def test_cycles_are_charged_to_stages(self, pe, converter):
        pe.update_voxel(key_at(converter, 1.0, 1.0, 1.0), occupied=True)
        cycles = pe.stats.breakdown.cycles
        assert cycles[OperationKind.UPDATE_LEAF] > 0
        assert cycles[OperationKind.UPDATE_PARENTS] > 0

    def test_second_voxel_reuses_shared_path(self, pe, converter):
        pe.update_voxel(key_at(converter, 1.0, 1.0, 1.0), occupied=True)
        allocations_first = pe.counters.node_allocations
        # A neighbouring voxel shares almost the whole path.
        pe.update_voxel(key_at(converter, 1.2, 1.0, 1.0), occupied=True)
        assert pe.counters.node_allocations < 2 * allocations_first

    def test_stats_track_voxel_updates(self, pe, converter):
        pe.update_voxel(key_at(converter, 1.0, 1.0, 1.0), occupied=True)
        pe.update_voxel(key_at(converter, 2.0, 2.0, 2.0), occupied=False)
        assert pe.stats.voxel_updates == 2
        assert pe.stats.cycles_per_update() > 0


class TestPruneAndExpand:
    def _sibling_keys(self, converter):
        """The eight leaf voxels sharing one parent block around (1, 1, 1)."""
        base = key_at(converter, 1.0, 1.0, 1.0)
        kx, ky, kz = (component & ~1 for component in base.as_tuple())
        return [
            OcTreeKey(kx + dx, ky + dy, kz + dz)
            for dx in range(2)
            for dy in range(2)
            for dz in range(2)
        ]

    def _saturate_block(self, pe, converter, occupied=True, repeats=20):
        for key in self._sibling_keys(converter):
            for _ in range(repeats):
                pe.update_voxel(key, occupied=occupied)

    def test_identical_saturated_children_are_pruned(self, pe, converter):
        self._saturate_block(pe, converter)
        assert pe.counters.prunes >= 1

    def test_prune_returns_rows_to_the_allocator(self, pe, converter):
        self._saturate_block(pe, converter)
        assert pe.allocator.frees >= 1

    def test_pruned_region_still_answers_queries(self, pe, converter):
        self._saturate_block(pe, converter)
        for key in self._sibling_keys(converter):
            status, raw = pe.query_voxel(key)
            assert status == "occupied"
            assert raw == pe.probability_unit.params.raw_clamp_max

    def test_update_into_pruned_region_expands(self, pe, converter):
        self._saturate_block(pe, converter)
        expansions_before = pe.counters.expansions
        pe.update_voxel(self._sibling_keys(converter)[0], occupied=False)
        assert pe.counters.expansions > expansions_before

    def test_expansion_preserves_sibling_values(self, pe, converter):
        self._saturate_block(pe, converter)
        keys = self._sibling_keys(converter)
        pe.update_voxel(keys[0], occupied=False)
        # The other seven siblings must still report the saturated value.
        for key in keys[1:]:
            _, raw = pe.query_voxel(key)
            assert raw == pe.probability_unit.params.raw_clamp_max

    def test_prune_charges_the_prune_stage(self, pe, converter):
        self._saturate_block(pe, converter)
        assert pe.stats.breakdown.cycles[OperationKind.PRUNE_EXPAND] > 0

    def test_free_block_prunes_too(self, pe, converter):
        self._saturate_block(pe, converter, occupied=False)
        assert pe.counters.prunes >= 1
        status, raw = pe.query_voxel(self._sibling_keys(converter)[0])
        assert status == "free"
        assert raw == pe.probability_unit.params.raw_clamp_min


class TestExportAndCapacity:
    def test_export_contains_every_leaf(self, pe, converter):
        keys = [key_at(converter, x, 1.0, 1.0) for x in (0.5, 1.5, 2.5)]
        for key in keys:
            pe.update_voxel(key, occupied=True)
        exported = list(pe.export_nodes())
        leaves = [node for node in exported if node.is_leaf]
        assert len(leaves) == 3
        assert all(len(node.path) == pe.config.tree_depth for node in leaves)

    def test_exported_paths_match_key_paths(self, pe, converter):
        key = key_at(converter, 1.0, 1.0, 1.0)
        pe.update_voxel(key, occupied=True)
        leaves = [node for node in pe.export_nodes() if node.is_leaf]
        assert leaves[0].path == key.path(pe.config.tree_depth)

    def test_export_marks_pruned_regions_homogeneous(self, pe, converter):
        TestPruneAndExpand()._saturate_block(pe, converter)
        homogeneous = [node for node in pe.export_nodes() if node.homogeneous]
        assert homogeneous, "the pruned block must export as one homogeneous leaf"

    def test_memory_utilization_grows_with_updates(self, pe, converter):
        assert pe.memory_utilization() == 0.0
        pe.update_voxel(key_at(converter, 1.0, 1.0, 1.0), occupied=True)
        assert pe.memory_utilization() > 0.0

    def test_capacity_error_on_tiny_memory(self, converter):
        tiny = OMUConfig(resolution_m=0.2, bank_kilobytes=1)
        pe = ProcessingElement(0, tiny)
        with pytest.raises(MemoryCapacityError):
            for x in range(200):
                for y in range(10):
                    pe.update_voxel(key_at(converter, 0.2 * x, 0.2 * y, 1.0), occupied=True)

    def test_tag_memory_consistency_guard(self, pe, converter):
        """Tampering with the memory image behind the tags is detected."""
        key = key_at(converter, 1.0, 1.0, 1.0)
        pe.update_voxel(key, occupied=True)
        root_bank = key.child_index(0, pe.config.tree_depth)
        root = pe.memory.read_entry(0, root_bank)
        pe.memory.clear_row(root.pointer)
        with pytest.raises(RuntimeError):
            pe.update_voxel(key, occupied=True)
