"""Unit tests for the fixed-point probability update unit."""

import pytest

from repro.core.config import DEFAULT_CONFIG
from repro.core.probability_unit import ProbabilityUpdateUnit
from repro.core.treemem import ChildStatus


@pytest.fixture
def unit() -> ProbabilityUpdateUnit:
    return ProbabilityUpdateUnit(DEFAULT_CONFIG.quantized_params())


class TestLeafUpdate:
    def test_hit_increases_value(self, unit):
        assert unit.update_leaf(0, occupied=True) > 0

    def test_miss_decreases_value(self, unit):
        assert unit.update_leaf(0, occupied=False) < 0

    def test_updates_clamp(self, unit):
        params = unit.params
        value = 0
        for _ in range(200):
            value = unit.update_leaf(value, occupied=True)
        assert value == params.raw_clamp_max
        for _ in range(200):
            value = unit.update_leaf(value, occupied=False)
        assert value == params.raw_clamp_min

    def test_leaf_updates_are_counted(self, unit):
        unit.update_leaf(0, True)
        unit.update_leaf(0, False)
        assert unit.leaf_updates == 2


class TestParentValue:
    def test_parent_takes_the_maximum(self, unit):
        assert unit.parent_value([-100, 5, 30, -2]) == 30

    def test_single_child(self, unit):
        assert unit.parent_value([7]) == 7

    def test_no_children_raises(self, unit):
        with pytest.raises(ValueError):
            unit.parent_value([])

    def test_max_operations_counted(self, unit):
        unit.parent_value([1, 2])
        unit.parent_value([3])
        assert unit.max_operations == 2


class TestClassification:
    def test_positive_value_is_occupied(self, unit):
        assert unit.classify(unit.params.raw_hit) == ChildStatus.OCCUPIED
        assert unit.is_occupied(unit.params.raw_hit)

    def test_negative_value_is_free(self, unit):
        assert unit.classify(unit.params.raw_miss) == ChildStatus.FREE
        assert not unit.is_occupied(unit.params.raw_miss)

    def test_zero_is_free_by_threshold(self, unit):
        # log-odds 0 equals probability 0.5, which is not strictly above the
        # occupancy threshold, so it classifies as free (matches OctoMap).
        assert unit.classify(0) == ChildStatus.FREE

    def test_classifications_counted(self, unit):
        unit.classify(1)
        unit.classify(-1)
        assert unit.classifications == 2
