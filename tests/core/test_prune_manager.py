"""Unit tests for the dynamic pruning address manager (stack of freed rows)."""

import pytest

from repro.core.prune_manager import PruneAddressManager
from repro.core.treemem import MemoryCapacityError


class TestAllocation:
    def test_fresh_rows_are_handed_out_in_order(self):
        manager = PruneAddressManager(num_rows=8, reserved_rows=1)
        assert [manager.allocate_row() for _ in range(3)] == [1, 2, 3]

    def test_reserved_rows_are_never_allocated(self):
        manager = PruneAddressManager(num_rows=8, reserved_rows=2)
        assert manager.allocate_row() == 2

    def test_capacity_exhaustion_raises(self):
        manager = PruneAddressManager(num_rows=4, reserved_rows=1)
        for _ in range(3):
            manager.allocate_row()
        with pytest.raises(MemoryCapacityError):
            manager.allocate_row()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PruneAddressManager(num_rows=1, reserved_rows=1)


class TestReuse:
    def test_freed_row_is_reused_before_fresh_rows(self):
        manager = PruneAddressManager(num_rows=16)
        first = manager.allocate_row()
        manager.allocate_row()
        manager.free_row(first)
        assert manager.allocate_row() == first

    def test_stack_order_is_lifo(self):
        manager = PruneAddressManager(num_rows=16)
        rows = [manager.allocate_row() for _ in range(4)]
        for row in rows:
            manager.free_row(row)
        assert manager.allocate_row() == rows[-1]
        assert manager.allocate_row() == rows[-2]

    def test_reuse_extends_effective_capacity(self):
        """With reuse, far more allocations than rows can be served."""
        manager = PruneAddressManager(num_rows=4, reserved_rows=1)
        for _ in range(50):
            row = manager.allocate_row()
            manager.free_row(row)
        assert manager.allocations == 50
        assert manager.reuse_fraction() > 0.9

    def test_free_validation_rejects_unallocated_rows(self):
        manager = PruneAddressManager(num_rows=8)
        with pytest.raises(ValueError):
            manager.free_row(5)

    def test_free_validation_rejects_reserved_row(self):
        manager = PruneAddressManager(num_rows=8, reserved_rows=1)
        with pytest.raises(ValueError):
            manager.free_row(0)

    def test_double_free_rejected(self):
        manager = PruneAddressManager(num_rows=8)
        row = manager.allocate_row()
        manager.free_row(row)
        with pytest.raises(ValueError):
            manager.free_row(row)

    def test_free_out_of_range_rejected(self):
        manager = PruneAddressManager(num_rows=8)
        with pytest.raises(ValueError):
            manager.free_row(99)


class TestStatistics:
    def test_rows_in_use_tracks_allocations_and_frees(self):
        manager = PruneAddressManager(num_rows=16)
        rows = [manager.allocate_row() for _ in range(5)]
        assert manager.rows_in_use == 5
        manager.free_row(rows[0])
        manager.free_row(rows[1])
        assert manager.rows_in_use == 3
        assert manager.stack_depth == 2

    def test_utilization(self):
        manager = PruneAddressManager(num_rows=11, reserved_rows=1)
        for _ in range(5):
            manager.allocate_row()
        assert manager.utilization() == pytest.approx(0.5)

    def test_rows_touched_is_a_high_water_mark(self):
        manager = PruneAddressManager(num_rows=16)
        rows = [manager.allocate_row() for _ in range(4)]
        for row in rows:
            manager.free_row(row)
        for _ in range(4):
            manager.allocate_row()
        assert manager.rows_touched == 4, "reuse keeps the fresh-row high-water mark flat"

    def test_peak_stack_depth(self):
        manager = PruneAddressManager(num_rows=16)
        rows = [manager.allocate_row() for _ in range(6)]
        for row in rows:
            manager.free_row(row)
        assert manager.peak_stack_depth == 6

    def test_free_rows_counts_fresh_and_recycled(self):
        manager = PruneAddressManager(num_rows=10, reserved_rows=1)
        rows = [manager.allocate_row() for _ in range(4)]
        manager.free_row(rows[0])
        assert manager.free_rows == (9 - 4) + 1

    def test_reuse_fraction_zero_without_allocations(self):
        assert PruneAddressManager(num_rows=4).reuse_fraction() == 0.0
